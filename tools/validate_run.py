"""Run the model-validation sweep and enforce its tolerance contract.

The standing gate for the paper's accuracy claim (Fig. 4/5): sweeps a
``(λq, λu, x, y, z)`` grid on the discrete-event simulator and the live
process pool, compares measured mean ``Rq`` against Eq. 5 (and the
simulator's throughput search against Eq. 7) under the declared
tolerances, snapshots ``benchmarks/results/validation.{json,txt}``
plus a ``model_validation`` entry in ``BENCH_knn.json``, and exits
non-zero when any enforced cell misses.

    PYTHONPATH=src python tools/validate_run.py
    PYTHONPATH=src python tools/validate_run.py --no-live --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.validation import run_validation, write_report  # noqa: E402


def update_bench_entry(report, path: Path) -> None:
    """Record the headline validation numbers in BENCH_knn.json."""
    bench = json.loads(path.read_text()) if path.exists() else {}
    enforced = [c for c in report.cells if c.enforced]
    ratios = sorted(c.ratio for c in enforced)
    bench["model_validation"] = {
        "ok": report.ok,
        "cells": len(report.cells),
        "enforced_cells": len(enforced),
        "failed_cells": sum(1 for c in report.cells if not c.passed),
        "median_ratio": round(ratios[len(ratios) // 2], 3) if ratios else None,
        "worst_ratio": round(max(ratios), 3) if ratios else None,
        "throughput_checks": len(report.throughput),
        "worst_throughput_rel_error": (
            round(max(t.relative_error for t in report.throughput), 3)
            if report.throughput else None
        ),
    }
    path.write_text(json.dumps(bench, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="model-validation sweep: Eq. 5/7 vs simulator and pool"
    )
    parser.add_argument("--no-sim", action="store_true",
                        help="skip the simulator sweep")
    parser.add_argument("--no-live", action="store_true",
                        help="skip the live process-pool sweep")
    parser.add_argument("--json", help="write the report to this JSON file "
                        "(in addition to benchmarks/results/)")
    parser.add_argument("--no-artifacts", action="store_true",
                        help="do not touch benchmarks/results/ or BENCH_knn.json")
    args = parser.parse_args(argv)

    if args.no_sim and args.no_live:
        parser.error("nothing to run: both --no-sim and --no-live given")

    start = time.perf_counter()
    report = run_validation(
        include_sim=not args.no_sim, include_live=not args.no_live
    )
    elapsed = time.perf_counter() - start

    print(report.format_table())
    if not args.no_artifacts:
        json_path, txt_path = write_report(report, ROOT / "benchmarks" / "results")
        update_bench_entry(report, ROOT / "BENCH_knn.json")
        print(f"\nartifacts: {json_path}, {txt_path}, BENCH_knn.json")
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n"
        )
        print(f"report written to {args.json}")

    failed = [c for c in report.cells if not c.passed] + [
        t for t in report.throughput if not t.passed
    ]
    if failed:
        print(f"validation FAILED: {len(failed)} checks out of tolerance "
              f"({elapsed:.1f}s)")
        for item in failed:
            print(f"  - {item.detail or item}")
        return 1
    print(f"validation OK: {len(report.cells)} cells + "
          f"{len(report.throughput)} throughput checks ({elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Run the live-reconfiguration soak gate and enforce its invariants.

A standalone gate for CI and local runs: drives a short non-stationary
workload (query-heavy → update-heavy → query-heavy) through a real
process pool while a :class:`repro.mpr.reconfig.ReconfigManager`
triggers ``(x, y, z)`` transitions automatically, and exits non-zero
unless at least two automatic shape changes completed with zero dropped
queries, oracle-exact answers, and complete traces.

    PYTHONPATH=src python tools/reconfig_soak.py
    PYTHONPATH=src python tools/reconfig_soak.py --repeat 3 --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.validation import run_reconfig_soak


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="automatic live-reconfiguration soak for the pool"
    )
    parser.add_argument("--repeat", type=int, default=1,
                        help="run the soak this many times")
    parser.add_argument("--min-auto-changes", type=int, default=2)
    parser.add_argument("--json", help="write the last report here")
    args = parser.parse_args(argv)

    failures = 0
    report = None
    for attempt in range(args.repeat):
        report = run_reconfig_soak(min_auto_changes=args.min_auto_changes)
        status = "ok" if report.ok else "FAIL"
        print(
            f"soak[{attempt}]: {status} — "
            f"{report.auto_changes} auto changes, "
            f"{report.queries} queries, {report.dropped} dropped, "
            f"{report.mismatches} mismatches, "
            f"warm p50={report.transition_p50_ms or 0.0:.1f} ms "
            f"p95={report.transition_p95_ms or 0.0:.1f} ms, "
            f"inflight@cutover mean="
            f"{report.inflight_at_cutover_mean or 0.0:.1f}"
        )
        for violation in report.violations:
            print(f"  violation: {violation}")
        if not report.ok:
            failures += 1
    if args.json and report is not None:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"report written to {args.json}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

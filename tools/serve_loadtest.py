"""Serve-tier load test: thousands of concurrent clients on one server.

Drives an :class:`repro.serve.MPRServer` (thread-mode ``MPRSystem``
underneath) with non-stationary per-client arrival processes from the
workload tier — rush-hour sinusoids for the paying tenants and a
flash-crowd spike train for the bulk tier — and measures what the
serving layer promises:

* throughput (qps) and client-observed latency (p50/p99),
* shed rate: Overloaded verdicts arriving as *retryable* protocol
  errors with backoff hints rather than hangs or connection drops,
* per-tenant weighted fairness (completed work per unit weight),
* deadline propagation: a slice of queries carries a tight client
  deadline, and the executor's ``resilience.deadline_misses`` counter
  must move,
* zero hangs: every RPC settles within its watchdog.

Artifacts: ``benchmarks/results/serve.{json,txt}`` plus a ``serve``
row merged into ``BENCH_knn.json``.

    PYTHONPATH=src python tools/serve_loadtest.py             # 1000 clients
    PYTHONPATH=src python tools/serve_loadtest.py --smoke     # CI-sized
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import statistics
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.graph import grid_network                     # noqa: E402
from repro.knn import DijkstraKNN                        # noqa: E402
from repro.mpr import (                                  # noqa: E402
    MPRConfig,
    MPRSystem,
    ResilienceConfig,
    ResultStatus,
)
from repro.serve import MPRServer, ServeClient, ServeConfig  # noqa: E402
from repro.workload.processes import (                   # noqa: E402
    SinusoidRate,
    Spike,
    SpikeTrain,
)

#: (name, SFQ weight, share of the client population)
TENANTS = (("gold", 4.0), ("silver", 2.0), ("bronze", 1.0))

#: Every Nth query carries this (unmeetable-under-load) client deadline
#: so deadline propagation is observable in the miss counters.
DEADLINE_EVERY = 8
TIGHT_DEADLINE = 0.002

WATCHDOG = 60.0  # per-RPC settle bound; a breach counts as a hang


def raise_nofile_limit(target: int = 16384) -> int | None:
    """Best-effort bump of RLIMIT_NOFILE (two fds per loopback client)."""
    try:
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        wanted = min(target, hard) if hard > 0 else target
        if soft < wanted:
            resource.setrlimit(resource.RLIMIT_NOFILE, (wanted, hard))
        return resource.getrlimit(resource.RLIMIT_NOFILE)[0]
    except (ImportError, ValueError, OSError):
        return None


def tenant_plan(clients: int) -> list[tuple[str, float]]:
    """One (tenant, weight) entry per client, tenants evenly split."""
    per = clients // len(TENANTS)
    plan = []
    for name, weight in TENANTS:
        plan.extend([(name, weight)] * per)
    while len(plan) < clients:  # remainder lands in the bulk tier
        plan.append(TENANTS[-1][:2])
    return plan


def arrival_process(tenant: str, per_client_rate: float, duration: float):
    """Non-stationary arrivals: sinusoid rush hours for the paying
    tenants, a mid-run flash crowd for the bulk tier."""
    if tenant == "bronze":
        return SpikeTrain(
            base_rate=per_client_rate * 0.6,
            spikes=(Spike(duration * 0.45, duration * 0.2, 6.0),),
        )
    phase = 0.0 if tenant == "gold" else duration / 2
    return SinusoidRate(
        base_rate=per_client_rate, amplitude=0.8,
        period=duration, phase=phase,
    )


async def run_client(
    index: int,
    tenant: str,
    weight: float,
    host: str,
    port: int,
    duration: float,
    per_client_rate: float,
    num_nodes: int,
    k: int,
    seed: int,
    gate: asyncio.Event,
    epoch: dict,
    records: list,
    hangs: list,
):
    rng = random.Random(seed * 100_003 + index)
    times = arrival_process(tenant, per_client_rate, duration).sample(
        duration, rng
    )
    client = await ServeClient.connect(
        host, port, tenant=tenant, weight=weight, window=64
    )
    try:
        await gate.wait()
        for seq, planned in enumerate(times):
            now = time.monotonic() - epoch["t0"]
            if planned > now:
                await asyncio.sleep(planned - now)
            deadline = TIGHT_DEADLINE if seq % DEADLINE_EVERY == 0 else None
            started = time.monotonic()
            try:
                result = await asyncio.wait_for(
                    client.query(
                        rng.randrange(num_nodes), k, deadline=deadline
                    ),
                    timeout=WATCHDOG,
                )
            except asyncio.TimeoutError:
                hangs.append((tenant, index, seq))
                return
            records.append(
                (tenant, result.status, time.monotonic() - started,
                 result.retry_after)
            )
    finally:
        await client.aclose()


async def run_load(args) -> dict:
    network = grid_network(args.grid, args.grid, seed=args.seed)
    rng = random.Random(args.seed)
    objects = {
        i: rng.randrange(network.num_nodes) for i in range(args.objects)
    }
    system = MPRSystem(
        MPRConfig(args.x, args.y, args.z),
        DijkstraKNN(network),
        objects,
        resilience=ResilienceConfig(max_outstanding=args.max_outstanding),
    )
    server = MPRServer(
        system,
        ServeConfig(port=0, max_inflight=args.max_inflight, window=64),
    )
    await server.start()
    host, port = server.address

    plan = tenant_plan(args.clients)
    per_client_rate = args.qps / args.clients
    gate = asyncio.Event()
    epoch: dict = {}
    records: list = []
    hangs: list = []

    tasks = [
        asyncio.ensure_future(run_client(
            index, tenant, weight, host, port, args.duration,
            per_client_rate, network.num_nodes, args.k, args.seed,
            gate, epoch, records, hangs,
        ))
        for index, (tenant, weight) in enumerate(plan)
    ]
    # Stagger nothing: clients connect concurrently, then the clock
    # starts for everyone at once.
    while server.counters["connections"] < args.clients:
        await asyncio.sleep(0.05)
    connect_done = time.monotonic()
    epoch["t0"] = connect_done
    gate.set()

    await asyncio.wait_for(
        asyncio.gather(*tasks), timeout=args.duration + 4 * WATCHDOG
    )
    wall = time.monotonic() - connect_done
    stats = server.stats()
    await server.stop()
    misses = system.telemetry.counters.get("resilience.deadline_misses", 0)
    shed_counter = system.telemetry.counters.get("resilience.shed", 0)
    system.close()

    by_status: dict[str, int] = {}
    latencies_ok = []
    retry_hints = 0
    for _tenant, status, latency, retry_after in records:
        by_status[status.value] = by_status.get(status.value, 0) + 1
        if status in (ResultStatus.OK, ResultStatus.PARTIAL):
            latencies_ok.append(latency)
        elif retry_after is not None:
            retry_hints += 1
    completed = len(records)
    shed = by_status.get("overloaded", 0)

    def pct(values, q):
        if not values:
            return None
        ordered = sorted(values)
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    per_tenant: dict[str, dict] = {}
    tenant_counts: dict[str, int] = {}
    for tenant, _weight in plan:
        tenant_counts[tenant] = tenant_counts.get(tenant, 0) + 1
    for name, weight in TENANTS:
        done = stats["tenants"].get(name, 0)
        per_tenant[name] = {
            "clients": tenant_counts.get(name, 0),
            "weight": weight,
            "completed": done,
            "per_weight": round(done / weight, 1),
        }
    normalized = [
        row["per_weight"] for row in per_tenant.values()
        if row["per_weight"] > 0
    ]
    spread = (
        round(max(normalized) / min(normalized), 3) if normalized else None
    )

    return {
        "clients": args.clients,
        "duration_s": round(wall, 2),
        "grid": f"{args.grid}x{args.grid}",
        "config": [args.x, args.y, args.z],
        "max_outstanding": args.max_outstanding,
        "max_inflight": args.max_inflight,
        "offered_qps": args.qps,
        "completed": completed,
        "qps": round(completed / wall, 1) if wall > 0 else None,
        "p50_ms": round(1e3 * pct(latencies_ok, 0.50), 2)
        if latencies_ok else None,
        "p99_ms": round(1e3 * pct(latencies_ok, 0.99), 2)
        if latencies_ok else None,
        "by_status": by_status,
        "shed": shed,
        "shed_rate": round(shed / completed, 4) if completed else None,
        "shed_with_retry_hint": retry_hints,
        "executor_shed_counter": shed_counter,
        "deadline_misses": misses,
        "fairness": per_tenant,
        "fairness_spread": spread,
        "hangs": len(hangs),
        "server_counters": stats["counters"],
    }


def format_text(result: dict) -> str:
    lines = [
        "serve load test",
        "===============",
        f"clients            {result['clients']}",
        f"duration           {result['duration_s']} s",
        f"grid / config      {result['grid']} / "
        f"{tuple(result['config'])}",
        f"completed          {result['completed']} "
        f"({result['qps']} qps, offered {result['offered_qps']})",
        f"latency p50/p99    {result['p50_ms']} / {result['p99_ms']} ms",
        f"shed               {result['shed']} "
        f"(rate {result['shed_rate']}, "
        f"{result['shed_with_retry_hint']} with retry hints)",
        f"deadline misses    {result['deadline_misses']}",
        f"hangs              {result['hangs']}",
        "",
        "tenant     clients  weight  completed  per-weight",
    ]
    for name, row in result["fairness"].items():
        lines.append(
            f"{name:<10} {row['clients']:>7}  {row['weight']:>6}  "
            f"{row['completed']:>9}  {row['per_weight']:>10}"
        )
    lines.append(f"fairness spread    {result['fairness_spread']}")
    return "\n".join(lines) + "\n"


def update_bench_entry(result: dict, path: Path) -> None:
    """Merge (never clobber) the serve row into BENCH_knn.json."""
    bench = json.loads(path.read_text()) if path.exists() else {}
    bench["serve"] = {
        "clients": result["clients"],
        "duration_s": result["duration_s"],
        "qps": result["qps"],
        "p50_ms": result["p50_ms"],
        "p99_ms": result["p99_ms"],
        "shed_rate": result["shed_rate"],
        "fairness_spread": result["fairness_spread"],
        "deadline_misses": result["deadline_misses"],
        "hangs": result["hangs"],
    }
    path.write_text(json.dumps(bench, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="thousands-of-clients load test for repro.serve"
    )
    parser.add_argument("--clients", type=int, default=1000)
    parser.add_argument("--duration", type=float, default=10.0,
                        help="measured window in seconds")
    parser.add_argument("--qps", type=float, default=2000.0,
                        help="offered load across all clients")
    parser.add_argument("--grid", type=int, default=16)
    parser.add_argument("--objects", type=int, default=200)
    parser.add_argument("--x", type=int, default=2)
    parser.add_argument("--y", type=int, default=2)
    parser.add_argument("--z", type=int, default=1)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--max-outstanding", type=int, default=64,
                        help="admission bound (spikes beyond it shed)")
    parser.add_argument("--max-inflight", type=int, default=256)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: 90 clients, 2s")
    parser.add_argument("--no-artifacts", action="store_true",
                        help="do not touch benchmarks/results/ or "
                        "BENCH_knn.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.clients = min(args.clients, 90)
        args.duration = min(args.duration, 2.0)
        args.qps = min(args.qps, 400.0)

    limit = raise_nofile_limit()
    if limit is not None and limit < 2 * args.clients + 64:
        print(f"warning: RLIMIT_NOFILE={limit} may be too low for "
              f"{args.clients} loopback clients", file=sys.stderr)

    started = time.perf_counter()
    result = asyncio.run(run_load(args))
    elapsed = time.perf_counter() - started

    text = format_text(result)
    print(text)
    if not args.no_artifacts:
        out = ROOT / "benchmarks" / "results"
        out.mkdir(parents=True, exist_ok=True)
        (out / "serve.json").write_text(
            json.dumps(result, indent=2) + "\n"
        )
        (out / "serve.txt").write_text(text)
        update_bench_entry(result, ROOT / "BENCH_knn.json")
        print(f"artifacts: {out / 'serve.json'}, {out / 'serve.txt'}, "
              "BENCH_knn.json")

    problems = []
    if result["hangs"]:
        problems.append(f"{result['hangs']} RPCs hung past the watchdog")
    if not result["completed"]:
        problems.append("no queries completed")
    if result["shed"] and not result["shed_with_retry_hint"]:
        problems.append("shed queries arrived without retry hints")
    if result["deadline_misses"] == 0 and result["completed"] > 100:
        problems.append(
            "tight client deadlines never missed — deadline propagation "
            "looks broken"
        )
    if problems:
        print(f"load test FAILED ({elapsed:.1f}s): " + "; ".join(problems))
        return 1
    print(f"load test OK ({elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

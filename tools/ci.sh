#!/usr/bin/env bash
# The tier-1 CI gate, runnable locally or from .github/workflows/ci.yml:
#
#   bash tools/ci.sh          # fast lane (slow markers excluded)
#   CI_SLOW=1 bash tools/ci.sh  # include the slow lane (faults, pool)
#   CI_CHAOS=1 bash tools/ci.sh # also run the chaos scenario sweep
#   CI_VALIDATE=1 bash tools/ci.sh # also run the model-validation grid
#   CI_SCALE=1 bash tools/ci.sh # also run the ~1M-node cache/attach smoke
#                               # (incl. CH build+persist+attach at 262k/1M)
#   CI_SERVE=1 bash tools/ci.sh # also run the serving-tier load smoke
#   CI_RECONFIG=1 bash tools/ci.sh # also run the live-reconfiguration
#                               # soak (>=2 automatic shape changes)
#
# Ruff is optional — environments without the binary skip the lint step
# instead of failing, so the gate works in the minimal container too.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

if [ "${CI_SLOW:-0}" = "1" ]; then
    python -m pytest -x -q -m "slow or not slow"
else
    python -m pytest -x -q
fi

if [ "${CI_CHAOS:-0}" = "1" ]; then
    python tools/chaos_run.py
fi

if [ "${CI_VALIDATE:-0}" = "1" ]; then
    python tools/validate_run.py --no-artifacts
fi

if [ "${CI_SCALE:-0}" = "1" ]; then
    python tools/bench_graph_scale.py --smoke
fi

if [ "${CI_SERVE:-0}" = "1" ]; then
    python tools/serve_loadtest.py --smoke --no-artifacts
fi

if [ "${CI_RECONFIG:-0}" = "1" ]; then
    python -m pytest -q -m slow -k "reconfig"
    python tools/reconfig_soak.py
fi

if command -v ruff >/dev/null 2>&1; then
    ruff check src tests tools benchmarks
else
    echo "ruff not available; skipping lint"
fi

python tools/check_api_surface.py

echo "ci OK"

"""Fail if the public API surface drifted from the generated docs.

``tools/gen_api_docs.py`` snapshots every documented module's exported
names into ``docs/api_surface.json`` alongside ``docs/API.md``.  This
checker recomputes the live surface and diffs it against the snapshot,
so adding, removing, or renaming a public symbol without regenerating
the docs is a hard failure:

    python tools/check_api_surface.py     # exit 0 iff docs are current

Run ``python tools/gen_api_docs.py`` to bring the snapshot (and the
reference docs) up to date.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))
sys.path.insert(0, str(ROOT / "src"))

from gen_api_docs import collect_surface  # noqa: E402

SNAPSHOT = ROOT / "docs" / "api_surface.json"


def main() -> int:
    if not SNAPSHOT.exists():
        print(f"missing {SNAPSHOT}; run: python tools/gen_api_docs.py")
        return 1
    recorded: dict[str, list[str]] = json.loads(SNAPSHOT.read_text())
    live = collect_surface()

    problems: list[str] = []
    for module in sorted(set(recorded) | set(live)):
        if module not in live:
            problems.append(f"{module}: documented but no longer walked")
            continue
        if module not in recorded:
            problems.append(f"{module}: public but undocumented")
            continue
        added = sorted(set(live[module]) - set(recorded[module]))
        removed = sorted(set(recorded[module]) - set(live[module]))
        if added:
            problems.append(f"{module}: undocumented new symbols {added}")
        if removed:
            problems.append(f"{module}: documented symbols gone {removed}")

    if problems:
        print("public API surface drifted from docs/api_surface.json:")
        for problem in problems:
            print(f"  - {problem}")
        print("regenerate with: python tools/gen_api_docs.py")
        return 1
    count = sum(len(names) for names in live.values())
    print(f"API surface matches docs ({count} symbols, {len(live)} modules)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Run the fault-injection chaos scenarios and enforce their invariants.

A standalone gate for CI and local soak runs: executes every scenario
in :data:`repro.mpr.chaos.SCENARIOS` (or a named subset) against the
resilient process pool and exits non-zero if any invariant is
violated — a drain hang, a wrong answer, an incomplete trace, or a
deadline-miss rate past the scenario's bound.

    PYTHONPATH=src python tools/chaos_run.py
    PYTHONPATH=src python tools/chaos_run.py kill-column stall --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness import format_table
from repro.mpr.chaos import SCENARIOS, run_scenario


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fault-injection scenarios against the process pool"
    )
    parser.add_argument(
        "scenario", nargs="*",
        help=f"scenario names (default: all of {', '.join(SCENARIOS)})",
    )
    parser.add_argument("--queries", type=int, default=24)
    parser.add_argument("--deadline", type=float, default=0.25,
                        help="per-query SLO in seconds")
    parser.add_argument("--drain-timeout", type=float, default=60.0,
                        help="hard wall bound on the drain (hang detector)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="run each scenario this many times (soak)")
    parser.add_argument("--json", help="write the reports to this JSON file")
    args = parser.parse_args(argv)

    names = args.scenario if args.scenario else list(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        parser.error(f"unknown scenario(s): {', '.join(unknown)}")

    start = time.perf_counter()
    reports = []
    for round_index in range(args.repeat):
        for name in names:
            report = run_scenario(
                name, num_queries=args.queries, deadline=args.deadline,
                drain_timeout=args.drain_timeout,
            )
            reports.append(report)
            verdict = "ok" if report.ok else "FAIL"
            print(f"[{round_index + 1}/{args.repeat}] {name:<12} {verdict}",
                  flush=True)

    rows = [
        [
            report.scenario,
            "ok" if report.ok else "FAIL",
            str(report.plain), str(report.degraded), str(report.shed),
            f"{report.miss_rate:.2f}",
            f"{report.drain_seconds*1e3:,.0f} ms",
            "; ".join(report.violations) or "-",
        ]
        for report in reports
    ]
    print()
    print(
        format_table(
            ["scenario", "verdict", "plain", "degraded", "shed",
             "misses/query", "drain", "violations"],
            rows,
            title="Chaos scenarios against the resilient process pool",
        )
    )
    if args.json:
        payload = [report.to_dict() for report in reports]
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"reports written to {args.json}")

    failed = [report for report in reports if not report.ok]
    elapsed = time.perf_counter() - start
    if failed:
        print(f"chaos FAILED: {len(failed)}/{len(reports)} scenario runs "
              f"violated invariants ({elapsed:.1f}s)")
        return 1
    print(f"chaos OK: {len(reports)} scenario runs clean ({elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

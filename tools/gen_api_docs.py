"""Generate docs/API.md from the package's public surface.

Walks every ``repro`` subpackage, collects the names exported via
``__all__``, and emits one markdown section per module with each
public item's signature and docstring summary, plus a machine-readable
snapshot of the surface in ``docs/api_surface.json`` (checked by
``tools/check_api_surface.py``).  Re-run after changing the public API:

    python tools/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

PACKAGES = [
    "repro",
    "repro.graph",
    "repro.graph.kernels",
    "repro.graph.shared",
    "repro.graph.cache",
    "repro.graph.ch",
    "repro.objects",
    "repro.knn",
    "repro.obs",
    "repro.mpr",
    "repro.mpr.api",
    "repro.mpr.resilience",
    "repro.mpr.results",
    "repro.mpr.chaos",
    "repro.mpr.reconfig",
    "repro.serve",
    "repro.sim",
    "repro.workload",
    "repro.validation",
    "repro.harness",
    "repro.cli",
]

#: Hand-authored guide sections emitted before the generated reference.
GUIDES = [
    (
        "The array graph layer",
        """\
`RoadNetwork` keeps its adjacency in two synchronized forms: contiguous
numpy CSR arrays (`csr_arrays` → `indptr`/`indices`/`weights`, plus
`coord_arrays`) built once at construction, and the classic per-node
Python lists, materialized lazily for the `heapq` reference engines.
The arrays are the source of truth — they are what the vectorized
kernels traverse, what shared memory publishes, and what
`from_csr_arrays` adopts zero-copy.

`repro.graph.kernels` holds the bucketed (delta-stepping) Dijkstra
kernels over those arrays: single-source (`sssp`), bounded, multi-source
with owner tie-breaking (`sssp_multi`), early-terminating top-k
(`topk_objects`), and the resumable `IncrementalSSSP` expander IER uses.
Results are **bit-for-bit identical** to the `heapq` engines
(`tests/test_kernels.py` pins this property); large-graph speedups are
recorded in `benchmarks/results/knn_kernels.txt`.  The free functions
`dijkstra`/`multi_source_dijkstra` delegate to the kernels automatically
at `KERNEL_MIN_NODES` and above; `DijkstraKNN` and `IERKNN` always use
them.  `KERNEL_CALLS` counts kernel entries so tests and
`tools/bench_smoke.py` can assert the fast path is actually taken.

**Buffer-reuse contract**: a `CSRKernels` instance preallocates its
distance/owner buffers once and reuses them across calls, so an
instance is *not thread-safe*.  Use `RoadNetwork.kernels`, which caches
one instance per thread over the same shared arrays; returned arrays
are always fresh copies, never views into the buffers.
""",
    ),
    (
        "Shared-memory graph lifecycle",
        """\
`publish_shared_graph(network)` copies the CSR arrays once into a
`multiprocessing.shared_memory` segment and stamps the network with a
small attach token; from then on pickling the network (or any solution
holding it) ships the ~100-byte token instead of the arrays.
`attach_shared_graph(meta)` — run implicitly during unpickling in
worker processes — maps the segment read-only and wraps it via
`RoadNetwork.from_csr_arrays` with zero copies.

`ProcessPoolService` owns the lifecycle by default (`share_graph=True`):
`start()` publishes, every worker (initial, `fork`, `spawn`, and
SIGKILL-respawned alike) attaches, and `close()` unlinks only after all
workers are down.  A network already published by an outer owner is
borrowed, not re-published, and its segment is left alone.  The owning
`SharedGraph` handle unlinks exactly once; a `weakref.finalize` guard
prevents leaked `/dev/shm` segments if the owner crashes.
""",
    ),
    (
        "Large graphs: cache, memmap attach, and the CH engine",
        """\
The continental-scale tier is build-once/attach-forever.
`network.save_cache(directory)` writes the four canonical arrays as raw
`.npy` files plus a JSON manifest carrying sizes and a SHA-256 content
hash; `RoadNetwork.open_cache(directory)` (or `repro.graph.open_cache`)
attaches them via `np.memmap` in O(1) regardless of graph size — only
the manifest is read eagerly, array pages fault in on demand, and the
OS page cache shares them across every process on the host.  Pass
`verify=True` to re-hash the files (O(bytes)) when you suspect
corruption; the default attach does structural checks only.  The recipe:

```python
net = load_dimacs("USA-road-d.E.gr", "USA-road-d.E.co")   # once, streamed
net.save_cache("cache/usa-e")                              # once
...
net = RoadNetwork.open_cache("cache/usa-e")                # every run, O(1)
```

A cache-attached network pickles to a tiny directory token
(`GraphCacheMeta`), so handing a solution to
`build_executor(mode="process")` makes every worker — initial, `fork`,
`spawn`, and SIGKILL-respawned alike — re-memmap the same files; the
pool skips shared-memory publication entirely (`tests/
test_pool_cache_attach.py` pins this).  Attached networks are
**mirror-guarded**: accessors that would materialize O(n) Python
containers (`csr`, `coordinates`, `edges()`) raise
`MirrorMaterializationError` until you opt in with
`network.allow_mirrors()`; the kernels and everything built on them
never need the mirrors.

`repro.graph.ch` is the long-range query engine for that tier: an
array-based contraction hierarchy (`ContractionHierarchy`) whose
upward/downward CSR halves are swept by the same `CSRKernels`
delta-stepping machinery, with per-node hub labels cached and kNN
answered by a vectorized label/object-bucket join (`CHKernels.
topk_objects` / `knn_batch` / `point_to_point`).  On integral-weight
networks (`ch.exact`) every path sum is exact in float64 and CH answers
are **bit-identical** to the plain kernels (`tests/test_ch.py` pins
this); pass `ch=` to `DijkstraKNN`/`IERKNN` and queries whose plain
expansion would settle ≳ `ch_cutoff` nodes (expected `k·n/|objects|`)
are routed to the CH path automatically.  With the default
`ch_cutoff=None` the solution measures the real crossover on its own
graph (`calibrate_ch_cutoff`, a cheap sampled probe) at the first
routing decision and caches it; pass an explicit number to skip the
probe.  On float-weight networks `ch.exact` is False and auto-routing
stays off (last-ulp sums differ).

**Construction** is the batched vectorized pipeline (the default
`builder="batched"`): independent-set batches scored by edge
difference, witness searches run as bounded multi-source array sweeps
(merged per source, shrinking per-search bounds), and a tiny scalar
endgame for the last dense core.  It is ~14x faster than the
lazy-heap builder it replaced at 262k nodes (`ch_build` row in
`benchmarks/results/graph_scale.json`) with the same bit-exactness
story — contraction *order* is a free variable, so the two builders'
shortcut sets may differ while every answer stays identical.  Pass
`workers=N` to fan witness sweeps out across forked processes sharing
the CSR via the cache/shm tokens (useful on multi-core hosts;
deterministic run-to-run).

**Persistence**: `save_ch_cache(ch, directory)` writes the rank
vector, both CSR halves, and the shortcut triples as `ch_*.npy` files
into the graph's cache directory — hash-guarded by a manifest section
recording the graph content hash they belong to — and
`load_cached_ch(network)` re-attaches them as an O(1) memmap
(`cache_has_ch` probes, `verify=True` re-hashes).  A rewritten graph
drops the hierarchy; a stale or tampered artifact refuses to load
(`tests/test_ch_cache.py`).  With `label_core=N` the top-`N`-ranked
hub labels are prebuilt and persisted too, shared read-only by every
attaching process.  A cache-attached hierarchy pickles to a tiny
`CHCacheMeta` token — pool workers and `repro.serve` restarts attach
a ready CH in milliseconds instead of rebuilding
(`tests/test_pool_cache_attach.py`).  The serving recipe:

```python
net = RoadNetwork.open_cache("cache/usa-e")
ch = ContractionHierarchy(net, workers=8)     # once, offline
save_ch_cache(ch, "cache/usa-e", label_core=4096)
...
net = RoadNetwork.open_cache("cache/usa-e")   # every run, O(1)
ch = load_cached_ch(net)                      # every run, O(1)
solution = DijkstraKNN(net, objects, ch=ch)   # cutoff auto-calibrates
```

Or from the shell: `repro.cli graph-cache build DIR --grid 512 --ch
--ch-label-core 4096`, inspected by `repro.cli graph-cache inspect
DIR` (per-artifact sizes, staleness).  The hub-label runtime cache is
LRU-bounded by bytes (`CHKernels(ch, label_budget_bytes=...)`,
default 128 MiB) with `ch.label_bytes` / `ch.label_evictions`
counters, so adversarial never-repeating query locations cannot grow
memory without bound.  `tools/bench_graph_scale.py` records the
scaling curve — build/save/attach times for graph and hierarchy,
batched-vs-lazy build, and kNN latency, CH vs plain kernels vs the
`heapq` baseline — into `benchmarks/results/graph_scale.{json,txt}`.
""",
    ),
    (
        "Telemetry and the unified executor API",
        """\
`repro.obs` is the per-query observability layer.  A `Telemetry` handle
collects three things: a fixed-bucket log-scale `LogHistogram` per
pipeline stage (p50/p95/p99 export), named counters, and up to
`max_traces` per-query `QueryTrace` span trees.  The canonical stages
(`TRACE_STAGES`) follow one query through the system: `dispatch`
(parent-side routing), `queue_wait` (sitting in a w-queue), `execute`
(the solution's `A.Q` on a worker), `merge` (the a-core's aggregation),
and `ack` (the result's trip back to the parent).  In the process pool
the workers stamp `time.monotonic()` timings into their result pipes
and the parent stitches them — `CLOCK_MONOTONIC` is system-wide, so the
clocks are directly comparable.  Histogram-only stages (`update`,
`response`) and counters (`router.*`, `batcher.*`, `pool.respawns`)
ride along.  Disabled telemetry (the default `NULL_TELEMETRY`) costs
one branch per call site; `tests/test_telemetry_overhead.py` pins the
executor's disabled-path overhead against a frozen copy of the
pre-telemetry hot path.

Executors are constructed through **one entry point**,
`repro.mpr.api.build_executor(config, solution, objects, ...)` — the
arrangement first, the substrate chosen by `mode`, telemetry threaded
through every layer.  All executors share one lifecycle (`start()` /
`submit()` / `flush()` / `drain()` / `run()` / `close()`, plus the
context-manager form) and serial-equivalent answers.  `MPRSystem`
wraps an executor with a default-*enabled* telemetry handle and
`stats()`/`report()` accessors; `repro.cli stats` is the command-line
face of the same loop, and `machine_spec_from_telemetry` /
`profile_from_telemetry` feed measured `(tq, tu, τ)` back into the
optimizer.

The transitional `DeprecationWarning` shims are **gone**: direct
construction (`ThreadedMPRExecutor(solution, config, objects)` /
`ProcessPoolService(solution, config, objects)`) is warning-free and
builds exactly what the facade builds, and the one-shot
`ProcessMPRExecutor` wrapper has been removed outright.

| Removed form | Use instead |
| --- | --- |
| legacy keyword shims on the direct constructors | the canonical signatures (solution, config, objects) — now warning-free |
| `ProcessMPRExecutor(solution, config, objects, start_method="fork")` | `build_executor(config, solution, objects, mode="process", batch_size=1, start_method="fork")` |

Note the argument-order flip: the direct constructors take the solution
first; `build_executor` takes the `MPRConfig` first.
""",
    ),
    (
        "Batched multi-query execution",
        """\
`KNNSolution.query_batch(locations, ks)` answers many queries at once.
Its semantics are exactly `[query(l, k) for l, k in zip(locations, ks)]`
— one consistent object snapshot (queries never mutate state), canonical
`(distance, object_id)` answers, and result `i` always belonging to
`locations[i]` no matter how the implementation reorders work
internally.  The base class provides that loop as the default, so every
solution is batchable; `DijkstraKNN` and `IERKNN` override it to answer
the whole batch through `CSRKernels.knn_batch`, which deduplicates
sources, sorts them for locality, and runs each group of up to
`group_size` sources as a *single* delta-stepping sweep over the
flattened `(row, node)` product space.  Per-query results are
bit-identical to `topk_objects` (`tests/test_knn_batch.py` pins ≥200
randomized cases); duplicate sources may share result arrays, so treat
them as read-only.  `benchmarks/results/batch_knn.txt` records the
speedup (≥2x at batch ≥32 on the 102k-node grid), and
`tools/bench_repo.py` snapshots per-op latency into `BENCH_knn.json`.

The executors feed this path end to end.  `RouteBatcher` (with
`locality_group=True`, the default) sorts each maximal run of
consecutive queries in a released batch by `(location, query_id)` —
updates are reorder barriers, so per-worker serial equivalence is
untouched.  Pool workers and threaded workers execute each consecutive
query run with one `query_batch` call; with telemetry enabled the run
records an `execute_batch` histogram span plus `exec.batches` /
`exec.batch_queries` counters, and each query in the run gets an equal
share of the run time as its `execute` span so `QueryTrace`s stay
complete.  Worker processes also ship their `KERNEL_CALLS` delta back
in each stamped ack, keeping the parent's counters truthful across
`fork`.

`repro.mpr.batching` closes the loop adaptively: `modeled_batch_rq`
scores a batch size as fill-wait `(b-1)/(2λ)` + τ' + amortized
dispatch + execute + fanout·merge, with stage costs calibrated from
live telemetry via `machine_spec_from_telemetry`;
`recommend_batch_size` minimizes it over a candidate grid, and
`BatchSizeController` adds improvement-threshold hysteresis.
`ProcessPoolService.set_batch_size` / `retune_batch_size` (and
`MPRSystem.retune_batch_size`) apply the choice to a running pool,
flushing buffered ops first so the switch is FCFS-transparent.
""",
    ),
    (
        "Resilience & failure semantics",
        """\
`repro.mpr.resilience` turns the executors from fail-stop into
fail-soft.  Pass a `ResilienceConfig` to `build_executor(...,
resilience=...)` to enable it; the default is `NULL_RESILIENCE` and the
hot path then pays one attribute load + one branch per touch point
(`tests/test_resilience_overhead.py` pins the enabled no-fault pool
within 5% of disabled).  Four mechanisms compose:

**Deadlines and hedged replica reads.**  Every query carries an SLO —
`QueryTask.deadline` if set, else `ResilienceConfig.default_deadline`.
When a pooled query is still unresolved at its deadline, the supervisor
*hedges*: the single-query batch is re-dispatched to the least-loaded
replica row of the same partition column that has not yet been tried
(the y-replication of the MPR matrix is the hedging substrate).  First
answer per column wins; the loser's ack is dropped as a duplicate and
its telemetry stamps are skipped, so each `QueryTrace` keeps exactly
one `execute` span per column.  Deadlines are advisory on the threaded
substrate (misses are counted, answers still complete).

**Admission control.**  `AdmissionController` tracks outstanding ops
per worker; when the max backlog reaches
`ResilienceConfig.max_outstanding`, new *queries* are shed at submit
with a typed, falsy `Overloaded` verdict (updates are never shed — they
would diverge the replicas).  The threaded executor sheds on live
worker queue depth instead.

**Crash handling: breakers, quarantine, degraded answers.**  Worker
death normally respawns-and-replays (see the pool section).  A
`CircuitBreaker` per worker (threshold `breaker_failures`, exponential
backoff `backoff_base`·2ⁿ capped at `backoff_max`) detects crash loops:
once open, the cell's unacknowledged batches are *quarantined* instead
of replayed, and dispatch avoids the cell until a half-open respawn
trial readmits it (successfully replayed quarantined batches re-enter).
A batch that crashes the worker twice is poisoned and surfaced, never
replayed again.  When *every* cell of a partition column is
unavailable, the merge stops waiting: affected queries resolve as
`PartialResult` — a tuple of the surviving columns' kNN answers whose
`missing_columns` names the dead ones and whose `complete` is False —
instead of blocking the drain.  A stall watchdog
(`ResilienceConfig.stall_timeout`) converts a live-but-silent worker
(e.g. SIGSTOP) into the crash path.

Observability: eight counters (`RESILIENCE_COUNTERS`:
`resilience.hedges`, `.shed`, `.degraded`, `.breaker_open`,
`.deadline_misses`, `.duplicate_acks`, `.quarantined`, `.stall_kills`)
plus matching `pool.metrics` fields.  `drain(timeout=...)` raises a
`TimeoutError` listing every outstanding `(worker, seq)` batch, and
`close(timeout=...)` escalates join → SIGTERM → SIGKILL while always
unlinking the shared-memory graph segment.

`repro.mpr.chaos` is the fault-injection harness that proves all of
this: `run_scenario(name)` builds a pool, injects a scripted fault
(SIGKILL one worker or a full column, a crash loop, SIGSTOP stalls,
universal slowness, a poison batch, dropped acks — see `SCENARIOS`),
drains, and returns a `ChaosReport` asserting the invariants: the drain
terminated, plain answers equal the serial oracle, degraded answers are
internally consistent, traces are complete, and the deadline-miss rate
is bounded.  `tools/chaos_run.py` (or `repro.cli chaos`) runs the sweep
from the command line; CI runs it as the `chaos` job.
""",
    ),
    (
        "Live reconfiguration",
        """\
`repro.mpr.reconfig` changes a running pool's `(x, y, z)` shape with
zero downtime.  `ProcessPoolService.reconfigure(new_config)` (or
`MPRSystem.reconfigure`, which serializes the transition through the
completion pump so async futures keep resolving) runs a supervised
state machine:

1. **Warm** — the new shape's workers spawn and attach to the shared
   graph/cache segments *before any old worker stops*.  Each warming
   cell is preloaded with an exact snapshot of the current object set
   (the pool keeps a submit-time object ledger, so the snapshot is
   consistent with everything already dispatched), then proves itself
   by acknowledging a probe batch.  Meanwhile every update keeps
   flowing to *both* shapes — the old router applies it live, the
   warming router's batcher queues it as catch-up (counted in
   `ReconfigEvent.catchup_ops`) — so the new cells are current the
   moment they take over.
2. **Cutover** — atomic, inside the supervisor: once every probe is
   acked, the pool flushes both batchers, swaps router/batcher/worker
   maps, bumps the generation counter, and re-points resilience state
   (breakers cleared, admission ledger reset) at the new shape.
   `ReconfigEvent.inflight_at_cutover` records how many queries were
   genuinely in flight across the swap; their answers still drain from
   the old workers and are merged normally.
3. **Retire** — old workers finish their outstanding batches, receive a
   stop sentinel, and are reaped; a retiring worker that dies or stalls
   with batches still unacked is respawned once to replay them (answers
   are never dropped).

**Failure safety.**  A warming worker that dies, errors, or misses the
`warm_timeout` triggers **rollback**: the transition's workers are
killed, the old shape keeps serving uninterrupted (it never stopped),
and the event records `outcome="rolled_back"` with the reason.  Every
phase is timeout-bounded.  Repeated rollbacks trip a dedicated
reconfiguration circuit breaker — further attempts raise
`ReconfigRejected` until its backoff expires.  The chaos scenarios
`reconfig-kill-new-worker` (SIGKILL a warming worker → oracle-exact
rollback) and `reconfig-under-load` (transition inside a flash crowd)
pin these invariants.

**Automatic triggering.**  `ReconfigManager` closes the loop from
telemetry to shape: `poll()` (or `start(interval)` for a daemon thread)
reads the router's query/update counters as deltas, feeds them to a
`RateEstimator`, asks the `AdaptiveController` (the Eq. 5/7 response
time model, with hysteresis via `improvement_threshold` and a `cooldown`
between switches) for a better shape, and calls `system.reconfigure`
when one clears the bar.  `ReconfigPolicy` bundles the knobs; pressure
counters (shed/degraded/breaker-open deltas) escalate the trigger to
`"auto+pressure"`.  `MPRSystem.enable_auto_reconfigure(profile,
machine)` wires this up in one call.

Observability: `RECONFIG_COUNTERS` (`reconfig.attempts`, `.completed`,
`.rollbacks`, `.rejected`, `.breaker_open`, `.catchup_ops`), phase
timings in `ReconfigEvent.phases`, and the full transition history via
`pool.reconfig_history` / `MPRSystem.reconfig_history`, surfaced by
`stats()`, `report()`, and `repro.cli stats`.  The standing gate is
`repro.validation.run_reconfig_soak` / `tools/reconfig_soak.py`
(`CI_RECONFIG=1 bash tools/ci.sh`): a non-stationary workload must
drive ≥2 automatic shape changes with zero dropped queries,
oracle-exact answers, and complete traces; `tools/bench_repo.py`
records the transition-latency percentiles as the `reconfig` row of
`BENCH_knn.json`.
""",
    ),
    (
        "Serving",
        """\
`repro.serve` multiplexes thousands of remote clients onto one
`MPRSystem` over an asyncio TCP server, and the future-based query API
underneath it is usable in-process too.

**The `QueryResult` envelope.**  Every query outcome — in-process and
on the wire — is one frozen `QueryResult` carrying a `ResultStatus`:
`ok` (complete top-k), `partial` (degraded: top-k over the surviving
columns, `missing_columns` naming the dead `(layer, column)` cells),
`overloaded` (shed by admission control; retryable after
`retry_after`), `timeout` (in flight when the drain deadline expired —
queries are read-only, retrying is safe), and `error` (irrecoverable
executor failure).  `RETRYABLE_STATUSES` is `(overloaded, timeout)`.
`QueryResult.to_wire()` / `from_wire()` round-trip byte-for-byte under
the protocol's canonical JSON, so the library and the wire share one
result type; the `.answer` property reconstructs the legacy shape
(`list[Neighbor]` / `PartialResult` / `Overloaded`) for `run()`-era
callers.

**The async surface.**  `MPRSystem.submit_async(task)` returns a
`concurrent.futures.Future` resolving to a `QueryResult` (queries) or
`None` (updates) — no `drain()` barrier.  First use starts a
completion pump that owns the executor and locks out the batch surface
(`submit`/`flush`/`drain`/`run` raise) until `close()`;
`run_results(tasks)` is the batched envelope-returning equivalent on
either surface.  A `drain(timeout=)` expiry raises `QuiesceTimeout`
whose `query_ids` lists every affected query.

**Wire protocol.**  Frames are 4-byte big-endian length + canonical
JSON (`sort_keys`, no spaces), capped at `MAX_FRAME_BYTES` (1 MiB).
Client ops: `hello` (tenant, SFQ weight, window), `query`, `insert`,
`delete`, `subscribe`/`unsubscribe` (standing kNN: the server pushes a
fresh `result` whenever updates change the answer), `stats`, `bye`.
Server frames: `welcome`, `result` (a `QueryResult` wire payload),
`error` (`code`, `retryable`, `retry_after`, and — for shed/timeout
queries — the embedded `result` envelope), `push`.  Backpressure is
two-layer: a per-connection window (the server stops *reading* a
connection at its window, letting TCP push back on floods) and a
global `max_inflight` semaphore whose tokens are released before
response writes, so a slow reader can never pin executor capacity.
Scheduling between tenants is start-time fair queueing
(`WeightedFairQueue`): service under contention is proportional to the
`hello`-declared weight, so a flooding tenant cannot starve a light
one.  Client deadlines propagate into `QueryTask.deadline` and the
executor's resilience machinery (`resilience.deadline_misses` moves).
`ServeClient` is the asyncio client: `query(..., retries=n)` honors
`retry_after` backoff hints and returns the final envelope either way.
`repro.cli serve` starts a server; `tools/serve_loadtest.py` drives
≥1000 concurrent clients with non-stationary arrivals and records
qps/p50/p99, shed rate, and fairness spread into
`benchmarks/results/serve.{json,txt}` and the `serve` row of
`BENCH_knn.json` (`CI_SERVE=1 bash tools/ci.sh` runs the smoke-sized
version).

**Migration (old → new).**

| Before | After |
| --- | --- |
| `answers = system.run(tasks)` then `isinstance`-sniffing `list` / `PartialResult` / `Overloaded` | `system.run_results(tasks)` → `dict[int, QueryResult]`, branch on `result.status` |
| `system.submit(t)`; `system.flush()`; `system.drain()` | `future = system.submit_async(t)`; `future.result()` |
| `drain(timeout=...)` raising a bare `TimeoutError` | `QuiesceTimeout` with `.query_ids` naming the affected queries |
| shed query → falsy `Overloaded` in the answers dict | `ResultStatus.OVERLOADED` envelope (`retryable`, `retry_after`) |
| degraded query → `PartialResult` in the answers dict | `ResultStatus.PARTIAL` envelope (`missing_columns`) |
| n/a (no remote access) | `repro.serve.MPRServer` / `ServeClient` over the framed protocol |

`result.answer` bridges the first two rows during migration: it yields
exactly the old shape.
""",
    ),
    (
        "Workloads & model validation",
        """\
`repro.workload.processes` generates *non-stationary* arrival streams.
An `ArrivalProcess` is an intensity function λ(t) sampled by
Lewis–Shedler thinning against its `peak_rate` envelope; the catalog
covers `ConstantRate`, the rush-hour `SinusoidRate` (closed-form
integrated intensity), `SpikeTrain` (flash crowds as non-overlapping
`Spike` windows), `PiecewiseRate` schedules, and `RenewalProcess`
(i.i.d. gaps from any distribution — notably `Hyperexponential`).
Every process is deterministic under a seed, supports `scaled(f)`
intensity scaling, and reports `integrated_rate`/`mean_rate` so tests
can check empirical counts against Λ = ∫λ.  The hyperexponential
family also bridges measurements back into the analytical model:
`hyperexponential_from_moments(mean, scv)` is an exact balanced-means
H2 fit, `fit_hyperexponential(samples)` fits observed service times,
and `profile_from_distributions` turns two fitted distributions into
an `AlgorithmProfile` whose γ terms carry the overdispersion into
Eq. 5.  Pass `query_process=`/`update_process=` to `generate_workload`
(or set them on a `Scenario`) to drive the generator; the default
homogeneous-Poisson path is byte-identical to previous releases.
`mobility_workload` builds correlated update streams from a fleet of
moving objects (delete+insert pairs from a geometric random walk),
and `rush_hour_fleet` is the one-call sinusoidal variant.

`repro.workload.continuous` adds standing (subscription) kNN queries:
`generate_continuous_workload` produces a `ContinuousWorkload` whose
`lower(every=n)` compiles subscriptions into an ordinary task stream —
re-issuing every subscription after each `n` updates, never splitting
a movement's delete+insert pair — so both executors answer it with no
new machinery.  `IncrementalKNNMonitor` is the efficient path: one
`sssp` field per subscription at construction, then O(#subscriptions)
dictionary work per update, with `searches_performed`/`searches_saved`
counters.  Its answers are **bit-identical** to fresh queries of the
lowered stream (`tests/test_continuous_knn.py` pins this at every
epoch).  `replay_timed` paces any task stream against the wall clock
so a live executor experiences the stream's real λ(t).

`repro.validation` is the standing Fig. 4/5 contract: a
`GridSpec` sweep of `(λq, λu, x, y, z)` cells run against *both* the
discrete-event simulator and the live `ProcessPoolService`, comparing
measured response times against Eq. 5 `Rq` and measured capacity
against Eq. 7 `λ̂q` under a declared `ToleranceSpec`.  Enforcement
semantics: a cell is *enforced* only when the model itself predicts
under-capacity operation (finite `Rq`, worker utilization below
`utilization_cap`); over-capacity cells are recorded as informational.
A `CellVerdict`'s `ratio` is measured/model — the sim tolerance is a
two-sided factor (`sim_rq_factor`), the live tolerance a wider factor
plus an absolute slack (`live_rq_slack`) absorbing IPC jitter.  The
live comparison is *self-calibrating*: `profile_from_telemetry` and
`machine_spec_from_telemetry` from the same run feed the model, so
machine speed cancels out of the ratio.  `run_validation` returns a
`ValidationReport`; `write_report` snapshots it into
`benchmarks/results/validation.{json,txt}`, and
`tools/validate_run.py` (or `repro.cli validate`) is the CLI face —
it also stamps a `model_validation` summary into `BENCH_knn.json`.
`tests/test_validation.py` asserts the checked-in artifact covers at
least a 3×3 `(λq, x·y·z)` grid per backend with every enforced cell
in tolerance; CI re-runs the sweep as the `validate` job, and
`CI_VALIDATE=1 bash tools/ci.sh` runs it locally.
""",
    ),
]


def summarize(obj: object) -> str:
    doc = inspect.getdoc(obj) or ""
    first = doc.split("\n\n", 1)[0].replace("\n", " ").strip()
    return first


def signature_of(obj: object) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return ""


def describe_class(cls: type) -> list[str]:
    lines = [f"### `{cls.__name__}`", "", summarize(cls), ""]
    methods = []
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_"):
            continue
        if callable(member) or isinstance(member, (property, classmethod,
                                                   staticmethod)):
            target = member
            if isinstance(member, (classmethod, staticmethod)):
                target = member.__func__
            if isinstance(member, property):
                methods.append(f"- `{name}` (property) — {summarize(member)}")
            else:
                methods.append(
                    f"- `{name}{signature_of(target)}` — {summarize(target)}"
                )
    if methods:
        lines.extend(methods)
        lines.append("")
    return lines


def describe_module(module_name: str) -> list[str]:
    module = importlib.import_module(module_name)
    lines = [f"## `{module_name}`", "", summarize(module), ""]
    exported = getattr(module, "__all__", None)
    if exported is None:
        exported = [n for n in dir(module) if not n.startswith("_")]
    for name in exported:
        obj = getattr(module, name)
        if inspect.isclass(obj):
            lines.extend(describe_class(obj))
        elif callable(obj):
            lines.append(f"### `{name}{signature_of(obj)}`")
            lines.append("")
            lines.append(summarize(obj))
            lines.append("")
        else:
            lines.append(f"### `{name}`")
            lines.append("")
            lines.append(f"Constant of type `{type(obj).__name__}`.")
            lines.append("")
    return lines


def collect_surface() -> dict[str, list[str]]:
    """The public surface: module -> sorted exported names."""
    surface: dict[str, list[str]] = {}
    for package in PACKAGES:
        module = importlib.import_module(package)
        exported = getattr(module, "__all__", None)
        if exported is None:
            exported = [n for n in dir(module) if not n.startswith("_")]
        surface[package] = sorted(exported)
    return surface


def main() -> None:
    lines = [
        "# API reference",
        "",
        "_Generated by `python tools/gen_api_docs.py`; do not edit by hand._",
        "",
    ]
    for title, text in GUIDES:
        lines.extend([f"## {title}", "", text.rstrip(), ""])
    for package in PACKAGES:
        lines.extend(describe_module(package))
    out = ROOT / "docs" / "API.md"
    out.parent.mkdir(exist_ok=True)
    out.write_text("\n".join(lines) + "\n")
    print(f"wrote {out} ({len(lines)} lines)")

    surface_out = ROOT / "docs" / "api_surface.json"
    surface_out.write_text(json.dumps(collect_surface(), indent=2) + "\n")
    print(f"wrote {surface_out}")


if __name__ == "__main__":
    main()

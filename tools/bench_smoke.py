"""Smoke-check that the vectorized kernel path is actually taken.

A 60-second-safety version of the kernel sweep: builds a small network,
runs every kernel-backed entry point once, and asserts via the
``KERNEL_CALLS`` diagnostic counters that the array kernels — not the
``heapq`` fallbacks — served them, with answers matching the reference
engines.  Run it after touching the graph layer:

    PYTHONPATH=src python tools/bench_smoke.py
"""

from __future__ import annotations

import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.graph import grid_network
from repro.graph.kernels import KERNEL_CALLS
from repro.graph.shortest_path import KERNEL_MIN_NODES, dijkstra, dijkstra_heapq
from repro.knn import DijkstraKNN, IERKNN
from repro.mpr import MPRConfig, build_executor
from repro.objects.tasks import QueryTask
from repro.obs import Telemetry


def check_batch_path(network, objects, rng) -> int:
    """Assert the process pool serves query runs via ``knn_batch``.

    Workers increment their own (forked) copy of ``KERNEL_CALLS``; with
    telemetry enabled each batch ack carries the child's counter delta
    and the parent folds it back in, so the counter observed here
    proves the batched kernel ran inside the worker processes.
    """
    before = KERNEL_CALLS["knn_batch"]
    tasks = [
        QueryTask(float(i), i, rng.randrange(network.num_nodes), 5)
        for i in range(48)
    ]
    with build_executor(
        MPRConfig(1, 1, 1), DijkstraKNN(network), dict(objects),
        mode="process", batch_size=16, telemetry=Telemetry(),
    ) as pool:
        answers = pool.run(tasks)
    assert len(answers) == len(tasks)
    return KERNEL_CALLS["knn_batch"] - before


def main() -> None:
    start = time.perf_counter()
    rng = random.Random(3)
    network = grid_network(48, 48, seed=9, name="smoke")
    assert network.num_nodes >= KERNEL_MIN_NODES, (
        "smoke network must be large enough for free-function delegation"
    )
    objects = {i: rng.randrange(network.num_nodes) for i in range(64)}

    before = dict(KERNEL_CALLS)

    result = dijkstra(network, 0, max_distance=3000.0)
    assert result == dijkstra_heapq(network, 0, max_distance=3000.0)

    knn = DijkstraKNN(network, dict(objects))
    answer = knn.query(7, 5)
    assert len(answer) == 5

    batch = knn.query_batch([7, 7, 9], [5, 5, 3])
    assert batch[0] == answer and batch[1] == answer

    ier = IERKNN(network, dict(objects))
    assert [n.object_id for n in ier.query(7, 5)] == [
        n.object_id for n in answer
    ]
    assert ier.query_batch([7], [5]) == [ier.query(7, 5)]

    pool_batches = check_batch_path(network, objects, rng)
    assert pool_batches > 0, (
        "process pool did not take the knn_batch path (kernel deltas "
        "missing from batch acks?)"
    )

    for counter, entry_points in {
        "sssp": ("dijkstra free function",),
        "topk": ("DijkstraKNN.query",),
        "expander": ("IERKNN.query",),
        "knn_batch": ("query_batch", "process-pool batched dispatch"),
    }.items():
        taken = KERNEL_CALLS[counter] - before.get(counter, 0)
        assert taken > 0, (
            f"kernel path {counter!r} was not taken by {entry_points}"
        )
        print(f"kernel {counter:<9} calls: +{taken}")

    elapsed = time.perf_counter() - start
    print(f"bench-smoke OK ({network.num_nodes} nodes, {elapsed:.2f}s)")


if __name__ == "__main__":
    main()

"""Repo-level kNN benchmark: write ``BENCH_knn.json`` at the repo root.

A fixed-seed, single-file snapshot of the repo's kNN serving speed,
meant to be checked in and compared across PRs:

    PYTHONPATH=src python tools/bench_repo.py

Schema — one entry per operation::

    { "<op>": {"p50_us": float, "p95_us": float, "qps": float}, ... }

* ``query`` — one ``DijkstraKNN.query`` (the per-query kernel path);
* ``query_batch32`` — ``DijkstraKNN.query_batch`` in batches of 32,
  per-query cost (the batched kernel path this repo's executors take
  under load);
* ``ier_query`` — one ``IERKNN.query`` (Euclidean-restriction path);
* ``update`` — one insert + delete pair.

One extra entry, ``pool_resilience_overhead``, races the process pool
with resilience disabled vs enabled (no faults injected) and records
``{"disabled_qps", "enabled_qps", "overhead_pct"}`` — the acceptance
bound is overhead within 5% (best-of-N, so occasional negative values
are noise).

A ``reconfig`` entry runs the live-reconfiguration soak (automatic
shape changes under a non-stationary stream) and records the warm-phase
transition latency percentiles plus how many queries were genuinely in
flight at each cutover:
``{"transition_p50_ms", "transition_p95_ms", "inflight_at_cutover_mean",
"transitions"}``.

A ``graph_scale`` entry summarizes the graph-tier scaling curve
(memmap attach flatness, CH-vs-kernel long-range speedup).  It is
folded in from the checked-in ``benchmarks/results/graph_scale.json``
artifact when present (the full sweep reaches ~1M nodes and takes
minutes — see ``tools/bench_graph_scale.py``); otherwise a quick
inline sweep at small sizes is run.

``p50_us``/``p95_us`` are per-operation latency percentiles in
microseconds; ``qps`` is operations per wall-clock second over the
whole run.  Everything is deterministic given the seeds; timings move
with the host, so treat cross-PR deltas as indicative, not exact.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import random

from repro.graph import grid_network
from repro.knn import DijkstraKNN, IERKNN

ROOT = Path(__file__).resolve().parent.parent
SEED = 20250807
SIDE = 128           # 16,384-node synthetic grid
NUM_OBJECTS = 200
K = 10
NUM_QUERIES = 192
BATCH = 32


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(int(fraction * len(ordered)), len(ordered) - 1)
    return ordered[index]


def summarize(samples_s: list[float]) -> dict[str, float]:
    total = sum(samples_s)
    return {
        "p50_us": round(statistics.median(samples_s) * 1e6, 2),
        "p95_us": round(percentile(samples_s, 0.95) * 1e6, 2),
        "qps": round(len(samples_s) / total if total else 0.0, 1),
    }


def bench_pool_resilience_overhead() -> dict[str, float]:
    """No-fault pool throughput, resilience disabled vs enabled.

    Interleaved best-of-N over the same fixed workload; the enabled run
    arms a deadline per query and feeds the admission ledger but never
    hedges, sheds, or degrades (asserted), so the delta is the pure
    bookkeeping cost of the resilience layer.
    """
    from repro.mpr import MPRConfig, ResilienceConfig, build_executor
    from repro.workload import generate_workload

    network = grid_network(24, 24, seed=SEED % 1000, name="bench-pool")
    workload = generate_workload(
        network, num_objects=30, lambda_q=600.0, lambda_u=400.0,
        duration=0.5, seed=SEED % 1000, k=5,
    )
    config = MPRConfig(2, 2, 1)
    prototype = DijkstraKNN(network)
    resilience = ResilienceConfig(
        default_deadline=60.0, max_outstanding=10**6
    )

    def run_with(setting) -> float:
        with build_executor(
            config, prototype, workload.initial_objects,
            mode="process", batch_size=16, resilience=setting,
        ) as pool:
            t0 = time.perf_counter()
            pool.run(workload.tasks)
            elapsed = time.perf_counter() - t0
            if setting is not None:
                metrics = pool.metrics
                assert metrics.hedges == 0 and metrics.shed == 0
                assert metrics.degraded == 0
        return elapsed

    run_with(None)
    run_with(resilience)
    # Interleave the two sides so machine drift cancels instead of
    # landing entirely on one of them.
    base_best = enabled_best = float("inf")
    for _ in range(6):
        base_best = min(base_best, run_with(None))
        enabled_best = min(enabled_best, run_with(resilience))
    tasks = len(workload.tasks)
    return {
        "disabled_qps": round(tasks / base_best, 1),
        "enabled_qps": round(tasks / enabled_best, 1),
        "overhead_pct": round((enabled_best / base_best - 1) * 100, 2),
    }


def bench_reconfig() -> dict[str, object]:
    """Live-reconfiguration cost under the standing soak workload.

    Reuses the validation soak (``repro.validation.run_reconfig_soak``)
    so the numbers come from the same gate CI enforces: a real process
    pool, automatic telemetry-triggered transitions, oracle-checked
    answers.  The row records only the cost-shaped facts.
    """
    from repro.validation import run_reconfig_soak

    report = run_reconfig_soak()
    assert report.ok, f"reconfig soak violated: {report.violations}"
    return {
        "transition_p50_ms": round(report.transition_p50_ms or 0.0, 2),
        "transition_p95_ms": round(report.transition_p95_ms or 0.0, 2),
        "inflight_at_cutover_mean": round(
            report.inflight_at_cutover_mean or 0.0, 1
        ),
        "transitions": report.auto_changes,
    }


def bench_graph_scale_summary() -> dict[str, object]:
    """Graph-tier scaling summary for ``BENCH_knn.json``.

    Prefers the checked-in full-sweep artifact (which reaches ~1M
    nodes); falls back to a fresh inline sweep at small sizes so the
    entry is always present and fresh clones still get a number.
    """
    artifact = ROOT / "benchmarks" / "results" / "graph_scale.json"
    if artifact.exists():
        sweep = json.loads(artifact.read_text())
        source = "artifact"
    else:
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        import bench_graph_scale

        sweep = {"sizes": [
            bench_graph_scale.bench_side(
                side, engines=True, ch_build=True, lazy_baseline=True
            )
            for side in (64, 128)
        ]}
        attaches = [entry["attach_ms"] for entry in sweep["sizes"]]
        sweep["attach_flatness"] = round(max(attaches) / min(attaches), 2)
        best = sweep["sizes"][-1]
        sweep["ch_at_nodes"] = best["nodes"]
        sweep["ch_speedup_vs_kernel"] = round(
            best["kernel_knn_p50_us"] / best["ch_knn_p50_us"], 2
        )
        if "heapq_knn_p50_us" in best:
            sweep["kernel_speedup_vs_heapq"] = round(
                best["heapq_knn_p50_us"] / best["kernel_knn_p50_us"], 2
            )
        sweep["ch_build"] = {
            "nodes": best["nodes"],
            "build_s": best["ch_build_s"],
            "lazy_build_s": best["ch_lazy_build_s"],
            "speedup_vs_seed": best["ch_build_speedup"],
            "attach_ms": best["ch_attach_ms"],
        }
        source = "inline"
    biggest = sweep["sizes"][-1]
    return {
        "source": source,
        "max_nodes": biggest["nodes"],
        "attach_ms_at_max": biggest["attach_ms"],
        "attach_flatness": sweep["attach_flatness"],
        "ch_at_nodes": sweep["ch_at_nodes"],
        "ch_speedup_vs_kernel": sweep["ch_speedup_vs_kernel"],
        "kernel_speedup_vs_heapq": sweep.get("kernel_speedup_vs_heapq"),
        # The tentpole row: batched contraction vs the seed lazy-heap
        # builder, plus the persisted hierarchy's O(1) re-attach.
        "ch_build": sweep.get("ch_build"),
    }


def main() -> None:
    rng = random.Random(SEED)
    network = grid_network(SIDE, SIDE, seed=7, name="bench-repo")
    objects = {
        i: rng.randrange(network.num_nodes) for i in range(NUM_OBJECTS)
    }
    locations = [rng.randrange(network.num_nodes) for _ in range(NUM_QUERIES)]
    perf = time.perf_counter

    solution = DijkstraKNN(network, dict(objects))
    solution.query(locations[0], K)  # warm buffers out of the timings

    query_samples = []
    for location in locations:
        t0 = perf()
        solution.query(location, K)
        query_samples.append(perf() - t0)

    batch_samples = []
    for start in range(0, NUM_QUERIES, BATCH):
        chunk = locations[start:start + BATCH]
        t0 = perf()
        solution.query_batch(chunk, [K] * len(chunk))
        per_query = (perf() - t0) / len(chunk)
        batch_samples.extend([per_query] * len(chunk))

    ier = IERKNN(network, dict(objects))
    ier.query(locations[0], K)
    ier_samples = []
    for location in locations:
        t0 = perf()
        ier.query(location, K)
        ier_samples.append(perf() - t0)

    update_samples = []
    for i in range(NUM_QUERIES):
        node = rng.randrange(network.num_nodes)
        t0 = perf()
        solution.insert(NUM_OBJECTS + i, node)
        solution.delete(NUM_OBJECTS + i)
        update_samples.append(perf() - t0)

    report = {
        "query": summarize(query_samples),
        "query_batch32": summarize(batch_samples),
        "ier_query": summarize(ier_samples),
        "update": summarize(update_samples),
    }
    for op, stats in report.items():
        print(
            f"{op:<14} p50 {stats['p50_us']:>9.2f} us   "
            f"p95 {stats['p95_us']:>9.2f} us   {stats['qps']:>10.1f} qps"
        )

    overhead = bench_pool_resilience_overhead()
    report["pool_resilience_overhead"] = overhead
    print(
        f"{'pool_resilience_overhead':<24} "
        f"disabled {overhead['disabled_qps']:>9.1f} qps   "
        f"enabled {overhead['enabled_qps']:>9.1f} qps   "
        f"overhead {overhead['overhead_pct']:+.2f}%"
    )

    reconfig = bench_reconfig()
    report["reconfig"] = reconfig
    print(
        f"{'reconfig':<24} "
        f"warm p50 {reconfig['transition_p50_ms']:>7.2f} ms   "
        f"p95 {reconfig['transition_p95_ms']:>7.2f} ms   "
        f"inflight@cutover {reconfig['inflight_at_cutover_mean']:.1f} "
        f"({reconfig['transitions']} transitions)"
    )

    scale = bench_graph_scale_summary()
    report["graph_scale"] = scale
    print(
        f"{'graph_scale':<24} "
        f"max {scale['max_nodes']:>9,} nodes   "
        f"attach {scale['attach_ms_at_max']:>6.2f} ms "
        f"({scale['attach_flatness']:.1f}x spread)   "
        f"CH {scale['ch_speedup_vs_kernel']:.1f}x @ "
        f"{scale['ch_at_nodes']:,} [{scale['source']}]"
    )

    out = ROOT / "BENCH_knn.json"
    # Merge over entries owned by other tools (e.g. validate_run.py's
    # ``model_validation``) instead of clobbering the whole file.
    merged = json.loads(out.read_text()) if out.exists() else {}
    merged.update(report)
    out.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()

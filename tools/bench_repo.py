"""Repo-level kNN benchmark: write ``BENCH_knn.json`` at the repo root.

A fixed-seed, single-file snapshot of the repo's kNN serving speed,
meant to be checked in and compared across PRs:

    PYTHONPATH=src python tools/bench_repo.py

Schema — one entry per operation::

    { "<op>": {"p50_us": float, "p95_us": float, "qps": float}, ... }

* ``query`` — one ``DijkstraKNN.query`` (the per-query kernel path);
* ``query_batch32`` — ``DijkstraKNN.query_batch`` in batches of 32,
  per-query cost (the batched kernel path this repo's executors take
  under load);
* ``ier_query`` — one ``IERKNN.query`` (Euclidean-restriction path);
* ``update`` — one insert + delete pair.

``p50_us``/``p95_us`` are per-operation latency percentiles in
microseconds; ``qps`` is operations per wall-clock second over the
whole run.  Everything is deterministic given the seeds; timings move
with the host, so treat cross-PR deltas as indicative, not exact.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import random

from repro.graph import grid_network
from repro.knn import DijkstraKNN, IERKNN

ROOT = Path(__file__).resolve().parent.parent
SEED = 20250807
SIDE = 128           # 16,384-node synthetic grid
NUM_OBJECTS = 200
K = 10
NUM_QUERIES = 192
BATCH = 32


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(int(fraction * len(ordered)), len(ordered) - 1)
    return ordered[index]


def summarize(samples_s: list[float]) -> dict[str, float]:
    total = sum(samples_s)
    return {
        "p50_us": round(statistics.median(samples_s) * 1e6, 2),
        "p95_us": round(percentile(samples_s, 0.95) * 1e6, 2),
        "qps": round(len(samples_s) / total if total else 0.0, 1),
    }


def main() -> None:
    rng = random.Random(SEED)
    network = grid_network(SIDE, SIDE, seed=7, name="bench-repo")
    objects = {
        i: rng.randrange(network.num_nodes) for i in range(NUM_OBJECTS)
    }
    locations = [rng.randrange(network.num_nodes) for _ in range(NUM_QUERIES)]
    perf = time.perf_counter

    solution = DijkstraKNN(network, dict(objects))
    solution.query(locations[0], K)  # warm buffers out of the timings

    query_samples = []
    for location in locations:
        t0 = perf()
        solution.query(location, K)
        query_samples.append(perf() - t0)

    batch_samples = []
    for start in range(0, NUM_QUERIES, BATCH):
        chunk = locations[start:start + BATCH]
        t0 = perf()
        solution.query_batch(chunk, [K] * len(chunk))
        per_query = (perf() - t0) / len(chunk)
        batch_samples.extend([per_query] * len(chunk))

    ier = IERKNN(network, dict(objects))
    ier.query(locations[0], K)
    ier_samples = []
    for location in locations:
        t0 = perf()
        ier.query(location, K)
        ier_samples.append(perf() - t0)

    update_samples = []
    for i in range(NUM_QUERIES):
        node = rng.randrange(network.num_nodes)
        t0 = perf()
        solution.insert(NUM_OBJECTS + i, node)
        solution.delete(NUM_OBJECTS + i)
        update_samples.append(perf() - t0)

    report = {
        "query": summarize(query_samples),
        "query_batch32": summarize(batch_samples),
        "ier_query": summarize(ier_samples),
        "update": summarize(update_samples),
    }
    out = ROOT / "BENCH_knn.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    for op, stats in report.items():
        print(
            f"{op:<14} p50 {stats['p50_us']:>9.2f} us   "
            f"p95 {stats['p95_us']:>9.2f} us   {stats['qps']:>10.1f} qps"
        )
    print(f"wrote {out}")


if __name__ == "__main__":
    main()

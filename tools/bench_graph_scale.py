"""Graph-tier scaling curve: build, cache, O(1) attach, and kNN engines.

Sweeps synthetic integer-weight grids from thousands to ~1M nodes and
records, per size:

* ``build_s``   — vectorized ``from_edge_arrays`` construction;
* ``save_s``    — ``save_cache`` (write ``.npy`` files + manifest);
* ``attach_ms`` — ``open_cache`` memmap attach (median of 5).  The
  headline claim is that this column is *flat*: attach cost is
  independent of graph size because only the manifest is read eagerly;
* ``ch_build_s`` / ``ch_lazy_build_s`` — the batched contraction
  pipeline vs the seed lazy-heap builder it replaced (the measured
  ``ch_build_speedup`` is the tentpole claim), plus ``ch_save_s`` and
  ``ch_attach_ms`` for the persisted hierarchy (``save_ch_cache`` /
  ``load_cached_ch`` — attach is an O(1) memmap like the graph's);
* long-range kNN latency (few objects, so a plain expansion settles a
  large region) for three engines — the vectorized ``CSRKernels`` top-k,
  the CH hub-label join (``repro.graph.ch``), and the classic ``heapq``
  expansion ("Simpler is More" head-to-head).  CH and heapq are capped
  at smaller sizes (CH construction is offline-but-Python; heapq is the
  point of the comparison).

Artifacts: ``benchmarks/results/graph_scale.{json,txt}``; run with
``--smoke`` for the CI_SCALE-gated ~1M-node assertion run (build +
cache + attach flatness only, no engine sweep at the big sizes).

    PYTHONPATH=src python tools/bench_graph_scale.py [--smoke] [--sides 64 256]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from heapq import heappop, heappush
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.graph import (  # noqa: E402
    ContractionHierarchy,
    load_cached_ch,
    open_cache,
    save_ch_cache,
)
from repro.graph.road_network import RoadNetwork  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

SEED = 20250809
FULL_SIDES = (64, 128, 256, 512, 1024)
SMOKE_SIDES = (64, 512, 1024)
CH_MAX_SIDE = 256     # hub-label warm/query comparison: labels are RAM-heavy
CH_BUILD_MAX_SIDE = 1024  # batched builder: measured up to ~1M nodes
LAZY_MAX_SIDE = 512   # the seed lazy-heap builder: ~13min at 262k, capped
SMOKE_CH_MIN_SIDE = 512   # smoke builds+persists+attaches CH from here up
HEAPQ_MAX_SIDE = 256  # the baseline the kernels replaced; slow by design
NUM_OBJECTS = 32      # sparse objects => long-range queries
K = 8
NUM_QUERIES = 8
ATTACH_REPEATS = 5
#: Smoke acceptance: attach at ~1M nodes within this factor of the
#: smallest size's attach (i.e. flat, not O(n)).
ATTACH_FLAT_FACTOR = 25.0
#: Smoke acceptance: a persisted hierarchy attaches in O(1) — under
#: this bound even at ~1M nodes.
CH_ATTACH_BUDGET_MS = 10.0


def int_grid(side: int, seed: int = SEED) -> RoadNetwork:
    """A ``side``×``side`` grid with random *integral* weights in [1, 10].

    Integral weights make every path sum exact in float64, which is the
    precondition for CH answers being bit-identical (``ch.exact``).
    Built fully vectorized: ~1M nodes in well under a second.
    """
    rng = np.random.default_rng(seed)
    n = side * side
    idx = np.arange(n).reshape(side, side)
    u = np.concatenate([idx[:, :-1].ravel(), idx[:-1, :].ravel()])
    v = np.concatenate([idx[:, 1:].ravel(), idx[1:, :].ravel()])
    w = rng.integers(1, 11, size=len(u)).astype(np.float64)
    ys, xs = np.divmod(np.arange(n), side)
    coords = np.stack([xs, ys], axis=1).astype(np.float64)
    return RoadNetwork.from_edge_arrays(
        n, u, v, w, coordinates=coords, name=f"int-grid-{side}"
    )


def heapq_topk(network: RoadNetwork, source: int, counts: np.ndarray, k: int):
    """The classic heap-based top-k expansion (pre-kernel baseline)."""
    offsets, targets, weights = network.csr
    remaining = int(counts.sum())
    found: list[tuple[int, float]] = []
    dist: dict[int, float] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap and len(found) < k and remaining:
        d, node = heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        hits = int(counts[node])
        if hits:
            found.extend([(node, d)] * min(hits, k - len(found)))
            remaining -= hits
        for idx in range(offsets[node], offsets[node + 1]):
            nxt = targets[idx]
            if nxt not in dist:
                heappush(heap, (d + weights[idx], nxt))
    return found


def time_queries(run, sources) -> list[float]:
    perf = time.perf_counter
    samples = []
    for source in sources:
        t0 = perf()
        run(source)
        samples.append(perf() - t0)
    return samples


def bench_side(
    side: int, *, engines: bool, ch_build: bool, lazy_baseline: bool
) -> dict:
    perf = time.perf_counter
    t0 = perf()
    network = int_grid(side)
    build_s = perf() - t0

    with tempfile.TemporaryDirectory() as tmp:
        t0 = perf()
        network.save_cache(tmp)
        save_s = perf() - t0
        attach_samples = []
        for _ in range(ATTACH_REPEATS):
            t0 = perf()
            open_cache(tmp)
            attach_samples.append(perf() - t0)
        cached = open_cache(tmp)
        attach_ms = statistics.median(attach_samples) * 1e3

        entry = {
            "side": side,
            "nodes": network.num_nodes,
            "arcs": int(2 * network.num_edges),
            "build_s": round(build_s, 3),
            "save_s": round(save_s, 3),
            "attach_ms": round(attach_ms, 2),
        }

        ch = None
        if ch_build:
            t0 = perf()
            ch = ContractionHierarchy(cached)
            entry["ch_build_s"] = round(perf() - t0, 2)
            entry["ch_shortcuts"] = ch.num_shortcuts
            assert ch.exact
            t0 = perf()
            save_ch_cache(ch, tmp)
            entry["ch_save_s"] = round(perf() - t0, 2)
            ch_attach_samples = []
            for _ in range(ATTACH_REPEATS):
                t0 = perf()
                load_cached_ch(cached)
                ch_attach_samples.append(perf() - t0)
            entry["ch_attach_ms"] = round(
                statistics.median(ch_attach_samples) * 1e3, 2
            )
        if lazy_baseline:
            t0 = perf()
            ContractionHierarchy(network, builder="lazy")
            entry["ch_lazy_build_s"] = round(perf() - t0, 2)
            if ch_build:
                entry["ch_build_speedup"] = round(
                    entry["ch_lazy_build_s"] / entry["ch_build_s"], 1
                )
        if not engines:
            return entry

        rng = np.random.default_rng(SEED + side)
        counts = np.zeros(network.num_nodes, dtype=np.int32)
        object_nodes = rng.choice(network.num_nodes, NUM_OBJECTS, replace=False)
        counts[object_nodes] += 1
        sources = rng.choice(network.num_nodes, NUM_QUERIES, replace=False)

        # Vectorized kernels over the *memmapped* attach — the serving
        # configuration.  Warm once to take buffer allocation out.
        kern = cached.kernels
        kern.topk_objects(int(sources[0]), counts, K)
        kernel_samples = time_queries(
            lambda s: kern.topk_objects(int(s), counts, K), sources
        )
        entry["kernel_knn_p50_us"] = round(
            statistics.median(kernel_samples) * 1e6, 1
        )

        if side <= HEAPQ_MAX_SIDE:
            mirrored = cached.allow_mirrors()  # heapq engines need lists
            heapq_samples = time_queries(
                lambda s: heapq_topk(mirrored, int(s), counts, K), sources
            )
            entry["heapq_knn_p50_us"] = round(
                statistics.median(heapq_samples) * 1e6, 1
            )

        if side <= CH_MAX_SIDE and ch is not None:
            chk = ch.kernels
            # One-time cost: object buckets + hub labels for every
            # source (the cached steady state is what's timed below —
            # the regime the routing cutoff is calibrated against).
            t0 = perf()
            for s in sources:
                chk.topk_objects(int(s), counts, K)
            entry["ch_label_warm_s"] = round(perf() - t0, 2)
            reference = {
                int(s): kern.topk_objects(int(s), counts, K) for s in sources
            }
            ch_samples = time_queries(
                lambda s: chk.topk_objects(int(s), counts, K), sources
            )
            entry["ch_knn_p50_us"] = round(
                statistics.median(ch_samples) * 1e6, 1
            )
            # Bit-identity of the routed path, asserted in the artifact.
            # Each engine returns its own superset of the true top-k
            # (the plain kernel: everything settled; CH: everything at
            # distance <= the k-th), so compare the canonical
            # (distance, node)-sorted answers truncated to k — exactly
            # what downstream kNN solutions consume.
            def canonical(pair):
                nodes_r, dists_r = pair
                order = np.lexsort((nodes_r, dists_r))[:K]
                return nodes_r[order], dists_r[order]

            for s in sources:
                nodes_a, dists_a = canonical(reference[int(s)])
                nodes_b, dists_b = canonical(chk.topk_objects(int(s), counts, K))
                assert np.array_equal(nodes_a, nodes_b)
                assert np.array_equal(dists_a, dists_b)
        return entry


def format_txt(report: dict) -> str:
    lines = [
        "graph-tier scaling curve (integer-weight grids, "
        f"{NUM_OBJECTS} objects, k={K})",
        "",
        f"{'nodes':>10} {'arcs':>10} {'build_s':>8} {'save_s':>8} "
        f"{'attach_ms':>10} {'ch_build_s':>10} {'ch_lazy_s':>10} "
        f"{'ch_att_ms':>9} {'kernel_us':>10} {'ch_us':>8} {'heapq_us':>9}",
    ]
    for entry in report["sizes"]:
        lines.append(
            f"{entry['nodes']:>10,} {entry['arcs']:>10,} "
            f"{entry['build_s']:>8.3f} {entry['save_s']:>8.3f} "
            f"{entry['attach_ms']:>10.2f} "
            f"{entry.get('ch_build_s', ''):>10} "
            f"{entry.get('ch_lazy_build_s', ''):>10} "
            f"{entry.get('ch_attach_ms', ''):>9} "
            f"{entry.get('kernel_knn_p50_us', float('nan')):>10} "
            f"{entry.get('ch_knn_p50_us', ''):>8} "
            f"{entry.get('heapq_knn_p50_us', ''):>9}"
        )
    lines.append("")
    lines.append(
        f"attach flatness: max/min = {report['attach_flatness']:.1f}x "
        f"across {report['sizes'][0]['nodes']:,}"
        f"-{report['sizes'][-1]['nodes']:,} nodes"
    )
    if "ch_build" in report:
        row = report["ch_build"]
        lines.append(
            f"ch_build at {row['nodes']:,} nodes: batched "
            f"{row['build_s']:.1f}s vs lazy-heap seed "
            f"{row['lazy_build_s']:.1f}s "
            f"({row['speedup_vs_seed']:.1f}x); persisted hierarchy "
            f"re-attaches in {row['attach_ms']:.2f}ms (O(1) memmap)"
        )
    if "ch_speedup_vs_kernel" in report:
        lines.append(
            "long-range kNN at "
            f"{report['ch_at_nodes']:,} nodes: CH "
            f"{report['ch_speedup_vs_kernel']:.1f}x vs kernels, kernels "
            f"{report['kernel_speedup_vs_heapq']:.1f}x vs heapq "
            "(answers bit-identical, asserted)"
        )
        lines.append(
            "ch_us is the warm label-cache serving regime; the first "
            "touch of a source pays its label construction "
            "(ch_label_warm_s in the JSON)"
        )
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: build/cache/attach only, assert attach flatness",
    )
    parser.add_argument(
        "--sides", type=int, nargs="*",
        help="override the grid side lengths to sweep",
    )
    parser.add_argument(
        "--skip-lazy", action="store_true",
        help="skip the lazy-heap builder baseline (slow: ~13min at 262k)",
    )
    args = parser.parse_args(argv)

    sides = tuple(args.sides) if args.sides else (
        SMOKE_SIDES if args.smoke else FULL_SIDES
    )
    report: dict = {"seed": SEED, "k": K, "num_objects": NUM_OBJECTS,
                    "sizes": []}
    for side in sides:
        if args.smoke:
            ch_build = side >= SMOKE_CH_MIN_SIDE
            lazy_baseline = False
        else:
            ch_build = side <= CH_BUILD_MAX_SIDE
            lazy_baseline = side <= LAZY_MAX_SIDE and not args.skip_lazy
        entry = bench_side(
            side, engines=not args.smoke,
            ch_build=ch_build, lazy_baseline=lazy_baseline,
        )
        report["sizes"].append(entry)
        print(
            f"side {side:>5} ({entry['nodes']:>9,} nodes): "
            f"build {entry['build_s']:.3f}s save {entry['save_s']:.3f}s "
            f"attach {entry['attach_ms']:.2f}ms"
            + (
                f" ch_build {entry['ch_build_s']:.1f}s"
                if "ch_build_s" in entry else ""
            )
            + (
                f" ch_lazy {entry['ch_lazy_build_s']:.1f}s"
                if "ch_lazy_build_s" in entry else ""
            )
            + (
                f" ch_attach {entry['ch_attach_ms']:.2f}ms"
                if "ch_attach_ms" in entry else ""
            )
            + (
                f" kernel {entry['kernel_knn_p50_us']:.0f}us"
                if "kernel_knn_p50_us" in entry else ""
            )
            + (
                f" ch {entry['ch_knn_p50_us']:.0f}us"
                if "ch_knn_p50_us" in entry else ""
            )
            + (
                f" heapq {entry['heapq_knn_p50_us']:.0f}us"
                if "heapq_knn_p50_us" in entry else ""
            )
        )

    attaches = [entry["attach_ms"] for entry in report["sizes"]]
    report["attach_flatness"] = round(max(attaches) / min(attaches), 2)

    # The headline ch_build row: the largest size where both builders
    # ran (the batched-vs-seed speedup is measured, not extrapolated).
    compared = [e for e in report["sizes"] if "ch_build_speedup" in e]
    if compared:
        best = compared[-1]
        report["ch_build"] = {
            "nodes": best["nodes"],
            "build_s": best["ch_build_s"],
            "lazy_build_s": best["ch_lazy_build_s"],
            "speedup_vs_seed": best["ch_build_speedup"],
            "attach_ms": best["ch_attach_ms"],
        }

    ch_entries = [e for e in report["sizes"] if "ch_knn_p50_us" in e]
    if ch_entries:
        best = ch_entries[-1]  # largest size with all engines
        report["ch_at_nodes"] = best["nodes"]
        report["ch_speedup_vs_kernel"] = round(
            best["kernel_knn_p50_us"] / best["ch_knn_p50_us"], 2
        )
        if "heapq_knn_p50_us" in best:
            report["kernel_speedup_vs_heapq"] = round(
                best["heapq_knn_p50_us"] / best["kernel_knn_p50_us"], 2
            )

    if args.smoke:
        biggest = report["sizes"][-1]
        assert biggest["nodes"] >= 1_000_000, "smoke must reach ~1M nodes"
        assert report["attach_flatness"] <= ATTACH_FLAT_FACTOR, (
            f"attach is not flat: {report['attach_flatness']}x spread "
            f"(bound {ATTACH_FLAT_FACTOR}x)"
        )
        ch_entries = [e for e in report["sizes"] if "ch_attach_ms" in e]
        assert ch_entries, "smoke must build+persist+attach a CH"
        assert ch_entries[0]["nodes"] >= 262_144, (
            "CH smoke must cover >= 262k nodes"
        )
        for e in ch_entries:
            assert e["ch_attach_ms"] < CH_ATTACH_BUDGET_MS, (
                f"CH attach not O(1): {e['ch_attach_ms']}ms at "
                f"{e['nodes']:,} nodes (budget {CH_ATTACH_BUDGET_MS}ms)"
            )
        print(
            f"smoke ok: {biggest['nodes']:,}-node attach "
            f"{biggest['attach_ms']:.2f}ms, flatness "
            f"{report['attach_flatness']:.1f}x <= {ATTACH_FLAT_FACTOR:.0f}x; "
            f"CH attach {ch_entries[-1]['ch_attach_ms']:.2f}ms at "
            f"{ch_entries[-1]['nodes']:,} nodes "
            f"(< {CH_ATTACH_BUDGET_MS:.0f}ms, build "
            f"{ch_entries[-1]['ch_build_s']:.0f}s)"
        )
        return 0

    RESULTS.mkdir(parents=True, exist_ok=True)
    json_out = RESULTS / "graph_scale.json"
    json_out.write_text(json.dumps(report, indent=2) + "\n")
    txt_out = RESULTS / "graph_scale.txt"
    txt_out.write_text(format_txt(report))
    print(f"wrote {json_out}")
    print(f"wrote {txt_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""The asyncio client for the MPR serving protocol.

One :class:`ServeClient` owns one TCP connection and demultiplexes
responses by request id, so any number of coroutines can issue
concurrent queries over it.  Query outcomes come back as the same
typed :class:`~repro.mpr.results.QueryResult` envelope the library API
returns — a shed query is a retryable ``error`` frame on the wire, but
:meth:`ServeClient.query` folds it back into an ``OVERLOADED``
envelope carrying the server's ``retry_after`` hint (and can retry
internally with that backoff via ``retries=``).  Only *protocol*
failures — malformed frames, unknown ops, a dead connection — raise
:class:`ServeError`.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, AsyncIterator

from ..mpr.results import QueryResult
from .protocol import (
    PROTOCOL_VERSION,
    FrameError,
    encode_frame,
    read_frame,
)

__all__ = ["RetryableServeError", "ServeClient", "ServeError", "Subscription"]


class ServeError(Exception):
    """A protocol-level failure (this request cannot just be resent)."""

    def __init__(
        self,
        message: str,
        *,
        code: str = "error",
        retryable: bool = False,
        retry_after: float | None = None,
        result: QueryResult | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retryable = retryable
        self.retry_after = retry_after
        self.result = result


class RetryableServeError(ServeError):
    """A retryable verdict (``overloaded``/``timeout``) with a backoff
    hint; ``result`` carries the enveloped verdict when the query got
    as far as admission control."""


class Subscription:
    """A standing query's push stream (async-iterable of envelopes)."""

    def __init__(self, client: "ServeClient", sub_id: int) -> None:
        self._client = client
        self.sub_id = sub_id
        self.pushes: asyncio.Queue[QueryResult] = asyncio.Queue()

    async def next_push(self, timeout: float | None = None) -> QueryResult:
        if timeout is None:
            return await self.pushes.get()
        return await asyncio.wait_for(self.pushes.get(), timeout)

    def __aiter__(self) -> AsyncIterator[QueryResult]:
        return self._iterate()

    async def _iterate(self) -> AsyncIterator[QueryResult]:
        while True:
            yield await self.pushes.get()

    async def cancel(self) -> None:
        await self._client.unsubscribe(self)


class ServeClient:
    """Connect with :meth:`connect`; close with :meth:`aclose`.

    ::

        client = await ServeClient.connect(host, port, tenant="maps")
        result = await client.query(location=42, k=8, deadline=0.05)
        assert result.ok or result.retryable
        await client.aclose()
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._subscriptions: dict[int, Subscription] = {}
        self._closed = False
        self.welcome: dict[str, Any] = {}
        self._reader_task: asyncio.Task | None = None

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        tenant: str | None = None,
        weight: float | None = None,
        window: int | None = None,
    ) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        hello: dict[str, Any] = {"op": "hello", "protocol": PROTOCOL_VERSION}
        if tenant is not None:
            hello["tenant"] = tenant
        if weight is not None:
            hello["weight"] = weight
        if window is not None:
            hello["window"] = window
        writer.write(encode_frame(hello))
        await writer.drain()
        welcome = await read_frame(reader)
        if welcome is None or welcome.get("op") != "welcome":
            raise ServeError(f"expected welcome frame, got {welcome!r}")
        client.welcome = welcome
        client._reader_task = asyncio.create_task(
            client._read_loop(), name="mpr-serve-client-reader"
        )
        return client

    # ------------------------------------------------------------------
    # Demultiplexing
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        error: Exception = ServeError("connection closed", code="closed")
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                op = frame.get("op")
                if op == "result":
                    self._settle(frame.get("id"), frame.get("result"))
                elif op == "error":
                    self._settle_error(frame)
                elif op == "push":
                    sub = self._subscriptions.get(frame.get("sub"))
                    if sub is not None:
                        sub.pushes.put_nowait(
                            QueryResult.from_wire(frame["result"])
                        )
                elif op == "bye":
                    break
        except (FrameError, ConnectionError, asyncio.CancelledError) as exc:
            if not isinstance(exc, asyncio.CancelledError):
                error = ServeError(str(exc), code="closed")
        finally:
            self._closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    def _settle(self, request_id: Any, result: Any) -> None:
        future = self._pending.pop(request_id, None)
        if future is not None and not future.done():
            future.set_result(result)

    def _settle_error(self, frame: dict[str, Any]) -> None:
        future = self._pending.pop(frame.get("id"), None)
        if future is None or future.done():
            return
        result = frame.get("result")
        cls = RetryableServeError if frame.get("retryable") else ServeError
        future.set_exception(cls(
            frame.get("message", "server error"),
            code=frame.get("code", "error"),
            retryable=bool(frame.get("retryable")),
            retry_after=frame.get("retry_after"),
            result=(
                QueryResult.from_wire(result) if result is not None else None
            ),
        ))

    async def _request(self, payload: dict[str, Any]) -> Any:
        if self._closed:
            raise ServeError("client is closed", code="closed")
        request_id = next(self._ids)
        payload = dict(payload, id=request_id)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_frame(payload))
        await self._writer.drain()
        return await future

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def query(
        self,
        location: int,
        k: int,
        *,
        deadline: float | None = None,
        retries: int = 0,
        backoff: float = 0.05,
    ) -> QueryResult:
        """One kNN query; always returns a :class:`QueryResult`.

        Retryable verdicts are retried up to ``retries`` times, waiting
        the server's ``retry_after`` hint (else ``backoff``) between
        attempts; once attempts are exhausted the retryable envelope is
        *returned*, not raised — callers branch on ``result.status``,
        exactly as with the in-process API.
        """
        payload: dict[str, Any] = {"op": "query", "location": location, "k": k}
        if deadline is not None:
            payload["deadline"] = deadline
        attempt = 0
        while True:
            try:
                wire = await self._request(payload)
                return QueryResult.from_wire(wire)
            except RetryableServeError as exc:
                if attempt >= retries:
                    if exc.result is not None:
                        return exc.result
                    raise
                attempt += 1
                await asyncio.sleep(
                    exc.retry_after if exc.retry_after else backoff
                )

    async def insert(self, object_id: int, location: int) -> None:
        await self._request(
            {"op": "insert", "object": object_id, "location": location}
        )

    async def delete(self, object_id: int) -> None:
        await self._request({"op": "delete", "object": object_id})

    async def subscribe(
        self, location: int, k: int, *, deadline: float | None = None
    ) -> Subscription:
        payload: dict[str, Any] = {
            "op": "subscribe", "location": location, "k": k,
        }
        if deadline is not None:
            payload["deadline"] = deadline
        result = await self._request(payload)
        subscription = Subscription(self, int(result["sub"]))
        self._subscriptions[subscription.sub_id] = subscription
        return subscription

    async def unsubscribe(self, subscription: Subscription) -> None:
        self._subscriptions.pop(subscription.sub_id, None)
        await self._request({"op": "unsubscribe", "sub": subscription.sub_id})

    async def stats(self) -> dict[str, Any]:
        return await self._request({"op": "stats"})

    async def aclose(self) -> None:
        """Best-effort ``bye``, then tear the connection down."""
        if not self._closed:
            self._closed = True
            try:
                self._writer.write(encode_frame({"op": "bye"}))
                await self._writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

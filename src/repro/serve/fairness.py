"""Per-tenant weighted fair queueing for the serving tier.

Start-time fair queueing (SFQ): each tenant accrues *virtual time* in
proportion to ``cost / weight`` for the work it submits, and the
scheduler always releases the pending item with the smallest virtual
start tag.  A tenant flooding the server only advances its *own*
virtual clock — its backlog queues behind its inflated tags while
light tenants' items, tagged near the global virtual time, keep
jumping ahead.  Over any busy interval, tenant throughput converges to
the weight ratio regardless of arrival order, which is exactly the
"one heavy tenant cannot starve others' SLOs" property the serve tier
promises.

SFQ over the textbook WFQ because it needs no link-rate model: tags
derive only from weights and completions, so it drops straight onto a
queue drained by an executor whose service rate varies with batch
shape and load.  O(log n) push/pop; deterministic FIFO tie-break
within a tenant.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator

__all__ = ["WeightedFairQueue"]

DEFAULT_WEIGHT = 1.0


class WeightedFairQueue:
    """A min-heap of pending items ordered by virtual start tag.

    Not thread-safe by design: the server drives it from one event
    loop.  ``push`` tags the item ``max(global_vtime, tenant_finish)``
    and advances the tenant's finish tag by ``cost / weight``; ``pop``
    releases the smallest tag and advances global virtual time to it.
    Weights are sticky per tenant (set on first sight, updatable via
    :meth:`set_weight`).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, str, Any]] = []
        self._virtual_time = 0.0
        self._tenant_finish: dict[str, float] = {}
        self._weights: dict[str, float] = {}
        self._pending: dict[str, int] = {}
        self._sequence = 0

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError(f"tenant weight must be positive, got {weight}")
        self._weights[tenant] = float(weight)

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, DEFAULT_WEIGHT)

    def push(
        self,
        tenant: str,
        item: Any,
        *,
        cost: float = 1.0,
        weight: float | None = None,
    ) -> None:
        """Enqueue ``item`` for ``tenant`` at ``cost`` virtual units."""
        if weight is not None:
            self.set_weight(tenant, weight)
        start = max(
            self._virtual_time,
            self._tenant_finish.get(tenant, self._virtual_time),
        )
        self._tenant_finish[tenant] = start + cost / self.weight(tenant)
        heapq.heappush(self._heap, (start, self._sequence, tenant, item))
        self._sequence += 1
        self._pending[tenant] = self._pending.get(tenant, 0) + 1

    def pop(self) -> tuple[str, Any]:
        """Release the fairest next item; raises ``IndexError`` if empty."""
        start, _, tenant, item = heapq.heappop(self._heap)
        self._virtual_time = max(self._virtual_time, start)
        remaining = self._pending.get(tenant, 1) - 1
        if remaining:
            self._pending[tenant] = remaining
        else:
            self._pending.pop(tenant, None)
            # An idle tenant's finish tag must not bank credit for a
            # comeback burst: snap it forward when it rejoins (handled
            # by the max() in push) — nothing to do here.
        return tenant, item

    def pending(self, tenant: str | None = None) -> int:
        if tenant is None:
            return len(self._heap)
        return self._pending.get(tenant, 0)

    def drain(self) -> Iterator[tuple[str, Any]]:
        """Pop everything (shutdown path)."""
        while self._heap:
            yield self.pop()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

"""The network serving tier: asyncio front-end over one MPRSystem.

The library stops being in-process here: :class:`MPRServer` multiplexes
thousands of client connections onto one :class:`repro.mpr.MPRSystem`
through its future-returning ``submit_async`` surface, speaking the
length-prefixed JSON protocol of :mod:`repro.serve.protocol`.  Clients
use :class:`ServeClient`; per-tenant scheduling lives in
:mod:`repro.serve.fairness`.

See docs/API.md "Serving" for the wire contract.
"""

from .client import RetryableServeError, ServeClient, ServeError
from .fairness import WeightedFairQueue
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameError,
    encode_frame,
    read_frame,
)
from .server import MPRServer, ServeConfig

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "FrameError",
    "MPRServer",
    "RetryableServeError",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "WeightedFairQueue",
    "encode_frame",
    "read_frame",
]

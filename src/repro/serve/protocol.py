"""The wire protocol: length-prefixed canonical-JSON frames.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON, encoded canonically (sorted keys, no
whitespace) so a payload has exactly one byte representation — the
property that lets :meth:`repro.mpr.results.QueryResult.to_wire`
round-trip byte-for-byte between library and network.  JSON keeps the
protocol inspectable (``nc`` + a hex dump reads it); the length prefix
keeps parsing O(frame) with no delimiter scanning, and bounds memory
via :data:`MAX_FRAME_BYTES` before a byte of payload is read.

Frame schemas (``op`` selects; unknown keys are ignored for forward
compatibility; unknown *ops* are protocol errors):

Client → server
    ``hello``       ``{op, tenant?, weight?, window?, protocol?}``
                    — optional, first frame only; names the tenant for
                    weighted fairness and proposes a backpressure
                    window.
    ``query``       ``{op, id, location, k, deadline?}`` — ``deadline``
                    in seconds propagates into ``QueryTask.deadline``.
    ``insert``      ``{op, id, object, location}``
    ``delete``      ``{op, id, object}``
    ``subscribe``   ``{op, id, location, k}`` — continuous kNN; the
                    standing query re-evaluates after updates and
                    pushes changed answers.
    ``unsubscribe`` ``{op, id, sub}``
    ``stats``       ``{op, id}``
    ``bye``         ``{op}``

Server → client
    ``welcome`` ``{op, protocol, window, tenant}`` — reply to ``hello``
                (or implicitly before the first response).
    ``result``  ``{op, id, result}`` — terminal answer for a ``query``/
                ``insert``/``delete``/``subscribe``/``stats`` request;
                for queries ``result`` is a ``QueryResult.to_wire()``
                payload.
    ``error``   ``{op, id?, code, message, retryable, retry_after?,
                result?}`` — protocol- or admission-level failure.
                Retryable errors (``code`` ``"overloaded"``/
                ``"timeout"``) carry a ``retry_after`` backoff hint in
                seconds and, when the query got as far as admission,
                the enveloped ``result``.
    ``push``    ``{op, sub, result}`` — subscription re-evaluation.
    ``bye``     ``{op}`` — server is closing the connection.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Mapping

__all__ = [
    "FrameError",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "encode_frame",
    "encode_payload",
    "read_frame",
    "write_frame",
]

#: Bumped on any incompatible change to the frame schemas above.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's JSON body.  A 1k-neighbor result is
#: ~30 KiB; 1 MiB leaves two orders of magnitude of headroom while
#: capping what a malicious or broken peer can make us buffer.
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")


class FrameError(Exception):
    """A malformed frame (bad length, bad JSON, non-object payload)."""


def encode_payload(payload: Mapping[str, Any]) -> bytes:
    """Canonical JSON bytes for one payload (no length prefix)."""
    return json.dumps(
        payload, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """One full frame: length prefix + canonical JSON body."""
    body = encode_payload(payload)
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _LENGTH.pack(len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`FrameError` on oversized lengths, truncated bodies,
    invalid JSON, or a body that is not a JSON object.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise FrameError("connection closed mid-length-prefix") from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"declared frame length {length} exceeds MAX_FRAME_BYTES"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc
    try:
        payload = json.loads(body)
    except ValueError as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError("frame body must be a JSON object")
    return payload


def write_frame(
    writer: asyncio.StreamWriter, payload: Mapping[str, Any]
) -> None:
    """Queue one frame on the writer (caller awaits ``drain()``)."""
    writer.write(encode_frame(payload))

"""The asyncio TCP server multiplexing clients onto one MPRSystem.

One event loop owns the sockets; one :class:`~repro.mpr.api.MPRSystem`
completion pump owns the executor.  Between them sits a single global
scheduler: every admitted op lands in a per-tenant
:class:`~repro.serve.fairness.WeightedFairQueue`, and a dispatcher
task releases work into :meth:`MPRSystem.submit_async` under a global
in-flight bound.  The pieces:

* **backpressure** — a connection with ``window`` unanswered ops stops
  being *read*; bytes accumulate in the kernel socket buffer until TCP
  flow control pushes back on the client.  The server never buffers an
  unbounded frame backlog for a slow or flooding client, and a slow
  *reader* only throttles itself: completions release the global
  in-flight token **before** writing the response, so a client that
  stops reading responses cannot pin executor capacity.
* **deadline propagation** — a frame's ``deadline`` (seconds) becomes
  ``QueryTask.deadline`` verbatim, arming the resilience layer's
  hedged reads and deadline-miss accounting for exactly the SLO the
  client asked for.
* **admission verdicts as protocol errors** — a shed or timed-out
  query leaves the executor as a ``QueryResult`` with a retryable
  status and leaves the server as an ``error`` frame with
  ``retryable: true`` and a ``retry_after`` backoff hint scaled by
  current queue depth; the envelope rides along so clients still see
  the typed status.
* **fairness** — tenants are declared in the ``hello`` frame; the WFQ
  keeps a hog tenant's backlog behind its own virtual clock while
  light tenants' ops jump ahead (weights respected over any busy
  interval).
* **subscriptions** — a ``subscribe`` op registers a standing query;
  after any update completes, standing queries re-evaluate through the
  same scheduler and changed answers are pushed (pushes bypass the
  request window — they are the server's own traffic, not the
  client's).

Shutdown answers everything: queued-but-undispatched ops fail with
retryable errors, dispatched ops get their drain's verdict, and only
then do connections see ``bye``.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import time
from dataclasses import dataclass
from typing import Any

from ..mpr.api import MPRSystem
from ..mpr.results import QueryResult, ResultStatus
from ..objects.tasks import DeleteTask, InsertTask, QueryTask, Task, TaskKind
from .fairness import WeightedFairQueue
from .protocol import (
    PROTOCOL_VERSION,
    FrameError,
    encode_frame,
    read_frame,
)

__all__ = ["MPRServer", "ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Server-side knobs (the wire protocol itself is not configurable)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read MPRServer.address after start()
    #: Default per-connection backpressure window (unanswered ops).
    window: int = 32
    #: Hard cap on the window a ``hello`` frame may request.
    max_window: int = 1024
    #: Global bound on ops concurrently inside the completion pump.
    max_inflight: int = 512
    #: Base of the ``retry_after`` hint; scaled by relative queue depth.
    retry_after_base: float = 0.05
    #: Seconds stop() waits for dispatched ops before closing sockets.
    shutdown_grace: float = 10.0
    #: Default deadline stamped on queries that don't carry one.
    default_deadline: float | None = None


@dataclass
class _Job:
    """One admitted op traversing scheduler → pump → response writer."""

    connection: "_Connection"
    request_id: Any
    task: Task
    tenant: str
    subscription: "_Subscription | None" = None  # set for re-evaluations


@dataclass
class _Subscription:
    sub_id: int
    location: int
    k: int
    deadline: float | None
    last_key: tuple | None = None  # last pushed (status, neighbors)
    active: bool = True


class _Connection:
    """Per-connection state: identity, window, write lock, subs."""

    _ids = itertools.count(1)

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        config: ServeConfig,
    ) -> None:
        self.id = next(self._ids)
        self.reader = reader
        self.writer = writer
        self.tenant = f"conn-{self.id}"
        self.weight = 1.0
        self.window = config.window
        self.inflight = 0
        self.below_window = asyncio.Event()
        self.below_window.set()
        self.write_lock = asyncio.Lock()
        self.subscriptions: dict[int, _Subscription] = {}
        self._sub_ids = itertools.count(1)
        self.closed = False

    def op_started(self) -> None:
        self.inflight += 1
        if self.inflight >= self.window:
            self.below_window.clear()

    def op_finished(self) -> None:
        self.inflight -= 1
        if self.inflight < self.window:
            self.below_window.set()

    async def send(self, payload: dict[str, Any]) -> None:
        """Write one frame; drops silently once the peer is gone."""
        if self.closed:
            return
        frame = encode_frame(payload)
        try:
            async with self.write_lock:
                self.writer.write(frame)
                await self.writer.drain()
        except (ConnectionError, RuntimeError):
            self.closed = True

    async def close(self) -> None:
        self.closed = True
        for sub in self.subscriptions.values():
            sub.active = False
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class MPRServer:
    """Serve one :class:`MPRSystem` to many TCP clients.

    Usage::

        server = MPRServer(system, ServeConfig(port=0))
        await server.start()
        host, port = server.address
        ...
        await server.stop()

    ``stop()`` does not close the system — ownership stays with the
    caller (the CLI closes both; tests reuse the system across
    servers).
    """

    def __init__(
        self, system: MPRSystem, config: ServeConfig | None = None
    ) -> None:
        self.system = system
        self.config = config or ServeConfig()
        self.counters: dict[str, int] = {
            "connections": 0,
            "queries": 0,
            "updates": 0,
            "results": 0,
            "shed": 0,
            "retryable_errors": 0,
            "protocol_errors": 0,
            "pushes": 0,
            "subscriptions": 0,
        }
        self.tenant_completed: dict[str, int] = {}
        self._wfq = WeightedFairQueue()
        self._work = asyncio.Event()
        self._tokens: asyncio.Semaphore | None = None
        self._dispatched = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._closing = False
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._connections: set[_Connection] = set()
        self._completions: set[asyncio.Task] = set()
        self._query_ids = itertools.count(1)
        self._reeval_scheduled = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "MPRServer":
        self._tokens = asyncio.Semaphore(self.config.max_inflight)
        self.system.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="mpr-serve-dispatch"
        )
        return self

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None and self._server.sockets
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        assert self._server is not None
        await self._server.serve_forever()

    async def reconfigure(self, new_config: Any, **kwargs: Any) -> Any:
        """Change the pool's ``(x, y, z)`` live while serving.

        Awaitable wrapper over :meth:`MPRSystem.reconfigure
        <repro.mpr.api.MPRSystem.reconfigure>`: the request is enqueued
        FCFS with the RPC stream on the completion pump, and the
        blocking wait for the terminal event runs in a worker thread so
        the event loop keeps accepting connections throughout.  Returns
        the :class:`~repro.mpr.reconfig.ReconfigEvent`.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, functools.partial(self.system.reconfigure, new_config, **kwargs)
        )

    async def stop(self) -> None:
        """Graceful: answer or fail every accepted op, then close."""
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Fail everything still queued behind the fairness scheduler —
        # retryable, because the query never reached the executor.
        for _tenant, job in self._wfq.drain():
            await self._fail_job(
                job,
                QueryResult.timed_out(
                    getattr(job.task, "query_id", -1), "server shutting down"
                ),
            )
        self._work.set()  # unblock the dispatcher so it can exit
        if self._dispatcher is not None:
            await self._dispatcher
        # Dispatched ops resolve through the pump; give them the grace
        # window, then close regardless (the pump's own drain timeout
        # bounds how stale they can be).
        try:
            await asyncio.wait_for(
                self._idle.wait(), self.config.shutdown_grace
            )
        except asyncio.TimeoutError:
            pass
        for task in list(self._completions):
            task.cancel()
        for connection in list(self._connections):
            await connection.send({"op": "bye"})
            await connection.close()
        self._connections.clear()

    # ------------------------------------------------------------------
    # Per-connection protocol loop
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(reader, writer, self.config)
        self._connections.add(connection)
        self.counters["connections"] += 1
        try:
            while not self._closing and not connection.closed:
                # Backpressure: a connection at its window is not read.
                await connection.below_window.wait()
                try:
                    frame = await read_frame(reader)
                except FrameError as exc:
                    self.counters["protocol_errors"] += 1
                    await connection.send({
                        "op": "error", "code": "bad-frame",
                        "message": str(exc), "retryable": False,
                    })
                    break
                if frame is None:
                    break
                if not await self._handle_frame(connection, frame):
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            await connection.close()
            self._connections.discard(connection)

    async def _handle_frame(
        self, connection: _Connection, frame: dict[str, Any]
    ) -> bool:
        """Dispatch one frame; ``False`` ends the connection loop."""
        op = frame.get("op")
        try:
            if op == "hello":
                await self._on_hello(connection, frame)
            elif op == "query":
                self._enqueue_query(connection, frame)
            elif op in ("insert", "delete"):
                self._enqueue_update(connection, frame, op)
            elif op == "subscribe":
                await self._on_subscribe(connection, frame)
            elif op == "unsubscribe":
                await self._on_unsubscribe(connection, frame)
            elif op == "stats":
                await connection.send({
                    "op": "result", "id": frame.get("id"),
                    "result": self.stats(),
                })
            elif op == "bye":
                await connection.send({"op": "bye"})
                return False
            else:
                self.counters["protocol_errors"] += 1
                await connection.send({
                    "op": "error", "id": frame.get("id"), "code": "bad-op",
                    "message": f"unknown op {op!r}", "retryable": False,
                })
        except (KeyError, TypeError, ValueError) as exc:
            self.counters["protocol_errors"] += 1
            await connection.send({
                "op": "error", "id": frame.get("id"), "code": "bad-frame",
                "message": f"malformed {op!r} frame: {exc}",
                "retryable": False,
            })
        return True

    async def _on_hello(
        self, connection: _Connection, frame: dict[str, Any]
    ) -> None:
        tenant = frame.get("tenant")
        if tenant is not None:
            connection.tenant = str(tenant)
        weight = frame.get("weight")
        if weight is not None:
            connection.weight = float(weight)
            self._wfq.set_weight(connection.tenant, connection.weight)
        window = frame.get("window")
        if window is not None:
            connection.window = max(
                1, min(int(window), self.config.max_window)
            )
        await connection.send({
            "op": "welcome", "protocol": PROTOCOL_VERSION,
            "tenant": connection.tenant, "window": connection.window,
        })

    def _enqueue_query(
        self, connection: _Connection, frame: dict[str, Any]
    ) -> None:
        deadline = frame.get("deadline")
        task = QueryTask(
            arrival_time=time.monotonic(),
            query_id=next(self._query_ids),
            location=int(frame["location"]),
            k=int(frame["k"]),
            deadline=(
                float(deadline) if deadline is not None
                else self.config.default_deadline
            ),
            tenant=connection.tenant,
        )
        self.counters["queries"] += 1
        self._admit(
            _Job(connection, frame["id"], task, connection.tenant)
        )

    def _enqueue_update(
        self, connection: _Connection, frame: dict[str, Any], op: str
    ) -> None:
        if op == "insert":
            task: Task = InsertTask(
                time.monotonic(), int(frame["object"]),
                int(frame["location"]),
            )
        else:
            task = DeleteTask(time.monotonic(), int(frame["object"]))
        self.counters["updates"] += 1
        self._admit(
            _Job(connection, frame["id"], task, connection.tenant)
        )

    async def _on_subscribe(
        self, connection: _Connection, frame: dict[str, Any]
    ) -> None:
        deadline = frame.get("deadline")
        sub = _Subscription(
            sub_id=next(connection._sub_ids),
            location=int(frame["location"]),
            k=int(frame["k"]),
            deadline=float(deadline) if deadline is not None else None,
        )
        connection.subscriptions[sub.sub_id] = sub
        self.counters["subscriptions"] += 1
        await connection.send({
            "op": "result", "id": frame["id"], "result": {"sub": sub.sub_id},
        })
        # Seed the standing query so the client has a baseline answer.
        self._enqueue_subscription(connection, sub)

    async def _on_unsubscribe(
        self, connection: _Connection, frame: dict[str, Any]
    ) -> None:
        sub = connection.subscriptions.pop(int(frame["sub"]), None)
        if sub is not None:
            sub.active = False
        await connection.send({
            "op": "result", "id": frame.get("id"),
            "result": {"ok": sub is not None},
        })

    # ------------------------------------------------------------------
    # Scheduler: fairness queue → pump
    # ------------------------------------------------------------------
    def _admit(self, job: _Job) -> None:
        if job.subscription is None:
            job.connection.op_started()
        self._wfq.push(
            job.tenant, job,
            weight=(
                job.connection.weight
                if job.connection.tenant == job.tenant else None
            ),
        )
        self._work.set()

    async def _dispatch_loop(self) -> None:
        assert self._tokens is not None
        while True:
            await self._work.wait()
            if not self._wfq:
                if self._closing:
                    return
                self._work.clear()
                continue
            await self._tokens.acquire()
            if not self._wfq:  # raced with shutdown drain
                self._tokens.release()
                continue
            _tenant, job = self._wfq.pop()
            self._dispatched += 1
            self._idle.clear()
            try:
                future = self.system.submit_async(job.task)
            except Exception as exc:
                self._tokens.release()
                self._op_done()
                await self._fail_job(
                    job,
                    QueryResult.failed(
                        getattr(job.task, "query_id", -1), str(exc)
                    ),
                )
                continue
            completion = asyncio.create_task(
                self._complete(job, asyncio.wrap_future(future))
            )
            self._completions.add(completion)
            completion.add_done_callback(self._completions.discard)

    def _op_done(self) -> None:
        self._dispatched -= 1
        if self._dispatched == 0:
            self._idle.set()

    async def _complete(self, job: _Job, outcome: asyncio.Future) -> None:
        assert self._tokens is not None
        try:
            result = await outcome
        except asyncio.CancelledError:
            self._tokens.release()
            self._op_done()
            raise
        except Exception as exc:
            result = (
                QueryResult.failed(job.task.query_id, str(exc))
                if job.task.kind is TaskKind.QUERY else None
            )
        # Release executor capacity BEFORE talking to the client: a
        # slow reader must only throttle itself, never the pump.
        self._tokens.release()
        self._op_done()
        if job.subscription is not None:
            await self._push_subscription(job, result)
            return
        try:
            if job.task.kind is TaskKind.QUERY:
                await self._send_query_result(job, result)
            else:
                await job.connection.send({
                    "op": "result", "id": job.request_id,
                    "result": {"ok": True},
                })
                if not self._closing:
                    self._schedule_reevaluation()
        finally:
            job.connection.op_finished()

    async def _send_query_result(
        self, job: _Job, result: QueryResult
    ) -> None:
        self.tenant_completed[job.tenant] = (
            self.tenant_completed.get(job.tenant, 0) + 1
        )
        if result.retryable:
            if result.status is ResultStatus.OVERLOADED:
                self.counters["shed"] += 1
            self.counters["retryable_errors"] += 1
            hinted = result.with_retry_after(self._retry_after_hint())
            await job.connection.send({
                "op": "error", "id": job.request_id,
                "code": hinted.status.value,
                "message": hinted.detail or "retryable; see retry_after",
                "retryable": True,
                "retry_after": hinted.retry_after,
                "result": hinted.to_wire(),
            })
            return
        self.counters["results"] += 1
        await job.connection.send({
            "op": "result", "id": job.request_id, "result": result.to_wire(),
        })

    def _retry_after_hint(self) -> float:
        """Backoff scaled by how far behind the scheduler is."""
        depth = len(self._wfq) + self._dispatched
        return self.config.retry_after_base * (
            1.0 + depth / max(1, self.config.max_inflight)
        )

    async def _fail_job(self, job: _Job, result: QueryResult) -> None:
        if job.subscription is not None:
            return  # standing queries just miss one re-evaluation
        if job.task.kind is TaskKind.QUERY:
            await self._send_query_result(job, result)
            job.connection.op_finished()
        else:
            await job.connection.send({
                "op": "error", "id": job.request_id, "code": "timeout",
                "message": result.detail or "server shutting down",
                "retryable": True,
                "retry_after": self.config.retry_after_base,
            })
            job.connection.op_finished()

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def _schedule_reevaluation(self) -> None:
        """Debounced: one re-evaluation sweep per completed update burst."""
        if self._reeval_scheduled:
            return
        self._reeval_scheduled = True
        asyncio.get_running_loop().call_soon(self._run_reevaluation)

    def _run_reevaluation(self) -> None:
        self._reeval_scheduled = False
        if self._closing:
            return
        for connection in list(self._connections):
            for sub in list(connection.subscriptions.values()):
                if sub.active:
                    self._enqueue_subscription(connection, sub)

    def _enqueue_subscription(
        self, connection: _Connection, sub: _Subscription
    ) -> None:
        task = QueryTask(
            arrival_time=time.monotonic(),
            query_id=next(self._query_ids),
            location=sub.location,
            k=sub.k,
            deadline=sub.deadline,
            tenant=connection.tenant,
        )
        self._admit(
            _Job(connection, None, task, connection.tenant, subscription=sub)
        )

    async def _push_subscription(
        self, job: _Job, result: QueryResult
    ) -> None:
        sub = job.subscription
        assert sub is not None
        if not sub.active or job.connection.closed:
            return
        key = (result.status.value, result.neighbors)
        if key == sub.last_key:
            return  # unchanged answer: no push
        sub.last_key = key
        self.counters["pushes"] += 1
        await job.connection.send({
            "op": "push", "sub": sub.sub_id, "result": result.to_wire(),
        })

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """JSON-ready server counters + scheduler occupancy."""
        stats = {
            "counters": dict(self.counters),
            "tenants": dict(self.tenant_completed),
            "queued": len(self._wfq),
            "dispatched": self._dispatched,
            "open_connections": len(self._connections),
        }
        history = self.system.reconfig_history
        if history:
            stats["reconfigurations"] = [
                event.to_dict() for event in history
            ]
        return stats

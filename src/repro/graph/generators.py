"""Synthetic road-network generators.

The paper evaluates on five real networks (Table I): Beijing (BJ), US
North West (NW), New York City (NY), USA East (USA(E)) and USA West
(USA(W)).  Those datasets (and the UCAR taxi trajectories) are not
redistributable, so this module builds *scaled synthetic replicas*: near
planar graphs with the same edge/node ratio as each real network, grown
on a jittered grid with diagonal shortcuts and random deletions.  The
replicas preserve what the MPR evaluation actually depends on — graph
search cost growing with network size, and relative sizes between the
five networks — as documented in DESIGN.md substitution #2.

All generators are deterministic given a ``seed``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .road_network import RoadNetwork


@dataclass(frozen=True)
class NetworkSpec:
    """Shape parameters of one of the paper's Table I networks."""

    symbol: str
    description: str
    paper_nodes: int
    paper_edges: int
    # Additional data the paper attaches to the network, if any.
    extra: str = ""

    @property
    def edge_node_ratio(self) -> float:
        return self.paper_edges / self.paper_nodes


#: The five road networks of Table I.
TABLE1_NETWORKS: dict[str, NetworkSpec] = {
    "BJ": NetworkSpec("BJ", "Beijing", 1_285_215, 2_690_296, "3,000 taxi trajectories"),
    "NW": NetworkSpec("NW", "US North West", 1_207_945, 2_840_208, "13,132 POIs"),
    "NY": NetworkSpec("NY", "New York City", 264_346, 733_846),
    "USA(E)": NetworkSpec("USA(E)", "USA East", 3_598_623, 8_778_114),
    "USA(W)": NetworkSpec("USA(W)", "USA West", 6_262_104, 15_248_146),
}

#: Default scale for replicas: 1/200 of the real network keeps pure-Python
#: index construction (G-tree, CH) in the seconds range.
DEFAULT_SCALE = 1.0 / 200.0


def grid_network(
    rows: int,
    cols: int,
    seed: int = 0,
    diagonal_fraction: float = 0.0,
    deletion_fraction: float = 0.0,
    min_weight: float = 50.0,
    max_weight: float = 500.0,
    name: str = "grid",
) -> RoadNetwork:
    """A jittered grid road network.

    The grid is the classic stand-in for an urban road network: nodes sit
    on an (jittered) integer lattice, horizontal/vertical edges model
    street segments, and the weight of an edge is its Euclidean length
    scaled into ``[min_weight, max_weight]`` metres.

    Parameters
    ----------
    rows, cols:
        Lattice dimensions; the network has ``rows * cols`` nodes.
    diagonal_fraction:
        Fraction of lattice cells that additionally get one diagonal edge
        (raises the edge/node ratio towards highway-dense networks).
    deletion_fraction:
        Fraction of grid edges randomly removed (connectivity is then
        restored by keeping the largest component, see
        :func:`_prune_to_connected`).
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be positive")
    if not 0.0 <= diagonal_fraction <= 1.0:
        raise ValueError("diagonal_fraction must be in [0, 1]")
    if not 0.0 <= deletion_fraction < 1.0:
        raise ValueError("deletion_fraction must be in [0, 1)")

    rng = random.Random(seed)
    spacing = (min_weight + max_weight) / 2.0

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    coordinates = []
    for r in range(rows):
        for c in range(cols):
            jitter_x = rng.uniform(-0.2, 0.2) * spacing
            jitter_y = rng.uniform(-0.2, 0.2) * spacing
            coordinates.append((c * spacing + jitter_x, r * spacing + jitter_y))

    def euclid(a: int, b: int) -> float:
        ax, ay = coordinates[a]
        bx, by = coordinates[b]
        return math.hypot(ax - bx, ay - by)

    edges: list[tuple[int, int, float]] = []

    def add_edge(a: int, b: int) -> None:
        # Weight = Euclidean length times a small detour factor, so that
        # Euclidean distance stays an admissible A* lower bound.
        detour = rng.uniform(1.0, 1.3)
        weight = max(euclid(a, b) * detour, 1.0)
        edges.append((a, b, weight))

    for r in range(rows):
        for c in range(cols):
            here = node_id(r, c)
            if c + 1 < cols and rng.random() >= deletion_fraction:
                add_edge(here, node_id(r, c + 1))
            if r + 1 < rows and rng.random() >= deletion_fraction:
                add_edge(here, node_id(r + 1, c))
            if (
                r + 1 < rows
                and c + 1 < cols
                and rng.random() < diagonal_fraction
            ):
                if rng.random() < 0.5:
                    add_edge(here, node_id(r + 1, c + 1))
                else:
                    add_edge(node_id(r, c + 1), node_id(r + 1, c))

    network = RoadNetwork(rows * cols, edges, coordinates=coordinates, name=name)
    if deletion_fraction > 0.0:
        network = _prune_to_connected(network, name)
    return network


def ring_radial_network(
    rings: int,
    spokes: int,
    seed: int = 0,
    ring_spacing: float = 400.0,
    name: str = "ring-radial",
) -> RoadNetwork:
    """A ring-and-radial network (Beijing-style concentric ring roads).

    One central node, ``rings`` concentric rings each with ``spokes``
    nodes; consecutive ring nodes are connected, and every node is
    connected radially to the matching node on the next inner ring.
    """
    if rings < 1 or spokes < 3:
        raise ValueError("need at least 1 ring and 3 spokes")
    rng = random.Random(seed)

    coordinates: list[tuple[float, float]] = [(0.0, 0.0)]
    edges: list[tuple[int, int, float]] = []

    def node_id(ring: int, spoke: int) -> int:
        # ring is 1-based; node 0 is the centre.
        return 1 + (ring - 1) * spokes + (spoke % spokes)

    for ring in range(1, rings + 1):
        radius = ring * ring_spacing
        for spoke in range(spokes):
            angle = 2.0 * math.pi * spoke / spokes + rng.uniform(-0.05, 0.05)
            coordinates.append((radius * math.cos(angle), radius * math.sin(angle)))

    def euclid(a: int, b: int) -> float:
        ax, ay = coordinates[a]
        bx, by = coordinates[b]
        return math.hypot(ax - bx, ay - by)

    def add_edge(a: int, b: int) -> None:
        edges.append((a, b, max(euclid(a, b) * rng.uniform(1.0, 1.2), 1.0)))

    for ring in range(1, rings + 1):
        for spoke in range(spokes):
            add_edge(node_id(ring, spoke), node_id(ring, spoke + 1))
            if ring == 1:
                add_edge(0, node_id(1, spoke))
            else:
                add_edge(node_id(ring - 1, spoke), node_id(ring, spoke))

    total = 1 + rings * spokes
    return RoadNetwork(total, edges, coordinates=coordinates, name=name)


def random_geometric_network(
    num_nodes: int,
    radius: float = 0.035,
    seed: int = 0,
    name: str = "geometric",
) -> RoadNetwork:
    """Random geometric graph on the unit square (rural-road stand-in).

    Nodes are uniform points; nodes within ``radius`` are connected by an
    edge weighted by Euclidean length (scaled to metres).  The largest
    connected component is returned.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be positive")
    rng = random.Random(seed)
    scale = 100_000.0  # unit square -> 100 km x 100 km
    points = [(rng.random(), rng.random()) for _ in range(num_nodes)]

    # Cell-grid neighbour search keeps this O(n) for fixed radius.
    cell = radius
    grid: dict[tuple[int, int], list[int]] = {}
    for idx, (x, y) in enumerate(points):
        grid.setdefault((int(x / cell), int(y / cell)), []).append(idx)

    edges: list[tuple[int, int, float]] = []
    for idx, (x, y) in enumerate(points):
        cx, cy = int(x / cell), int(y / cell)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for other in grid.get((cx + dx, cy + dy), ()):
                    if other <= idx:
                        continue
                    ox, oy = points[other]
                    dist = math.hypot(x - ox, y - oy)
                    if dist <= radius and dist > 0:
                        edges.append((idx, other, dist * scale))

    coords = [(x * scale, y * scale) for x, y in points]
    network = RoadNetwork(num_nodes, edges, coordinates=coords, name=name)
    return network.largest_component_subgraph()


def scaled_replica(
    symbol: str, scale: float = DEFAULT_SCALE, seed: int = 7
) -> RoadNetwork:
    """Synthetic replica of a Table I network at ``scale`` of its size.

    The replica is a jittered grid sized to ``paper_nodes * scale`` nodes
    whose diagonal fraction is tuned so the edge/node ratio approximates
    the real network's.  BJ additionally uses the ring-radial topology
    blended into the grid (Beijing's ring roads), purely for flavour.
    """
    try:
        spec = TABLE1_NETWORKS[symbol]
    except KeyError:
        known = ", ".join(sorted(TABLE1_NETWORKS))
        raise KeyError(f"unknown network symbol {symbol!r}; known: {known}") from None
    if scale <= 0:
        raise ValueError("scale must be positive")

    target_nodes = max(int(spec.paper_nodes * scale), 16)
    side = max(int(math.sqrt(target_nodes)), 4)
    rows, cols = side, max(target_nodes // side, 4)

    # A full grid has ~2 edges per node; each diagonal adds 1 per cell.
    # Solve for the diagonal fraction that hits the paper's ratio.
    ratio = spec.edge_node_ratio
    diagonal_fraction = min(max(ratio - 2.0, 0.0), 1.0)
    deletion_fraction = max(2.0 - ratio, 0.0) * 0.5

    return grid_network(
        rows,
        cols,
        seed=seed + _stable_symbol_seed(symbol),
        diagonal_fraction=diagonal_fraction,
        deletion_fraction=min(deletion_fraction, 0.25),
        name=symbol,
    )


def generate_pois(
    network: RoadNetwork,
    num_pois: int,
    num_clusters: int = 25,
    seed: int = 11,
) -> list[int]:
    """Sample POI nodes clustered in space (the NW dataset's 13,132 POIs).

    POIs model restaurants/hospitals/schools, which cluster around town
    centres; we pick ``num_clusters`` random centres and grow each cluster
    by sampling nodes with probability decaying in hop distance.
    """
    if num_pois < 0:
        raise ValueError("num_pois must be non-negative")
    if network.num_nodes == 0:
        return []
    rng = random.Random(seed)
    num_pois = min(num_pois, network.num_nodes)
    centers = rng.sample(range(network.num_nodes), min(num_clusters, network.num_nodes))

    pois: set[int] = set()
    # BFS ring growth around each centre until quota filled.
    per_cluster = max(num_pois // max(len(centers), 1), 1)
    for center in centers:
        frontier = [center]
        seen = {center}
        collected = 0
        while frontier and collected < per_cluster:
            node = frontier.pop(0)
            if rng.random() < 0.8 and node not in pois:
                pois.add(node)
                collected += 1
            for neighbor, _ in network.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        if len(pois) >= num_pois:
            break

    # Top up with uniform nodes if the clusters were too small.
    remaining = [n for n in network.nodes() if n not in pois]
    rng.shuffle(remaining)
    for node in remaining:
        if len(pois) >= num_pois:
            break
        pois.add(node)
    return sorted(pois)[:num_pois]


def _prune_to_connected(network: RoadNetwork, name: str) -> RoadNetwork:
    largest = network.largest_component_subgraph()
    return RoadNetwork(
        largest.num_nodes,
        [(e.u, e.v, e.weight) for e in largest.edges()],
        coordinates=largest.coordinates,
        name=name,
    )


def _stable_symbol_seed(symbol: str) -> int:
    """Deterministic per-symbol seed offset (``hash()`` is salted)."""
    return sum(ord(ch) * (i + 1) for i, ch in enumerate(symbol))

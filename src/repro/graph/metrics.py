"""Road-network diagnostics used by reports and dataset tables.

The paper characterizes networks only by node/edge counts (Table I);
real evaluations additionally sanity-check that synthetic replicas are
road-like.  These metrics quantify that: degree distribution, weighted
diameter estimates, and the cut quality a partitioner can achieve —
road networks are distinguished by small average degree (~2-3) and
small separators.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .partition import cut_edges, partition_graph
from .road_network import RoadNetwork
from .shortest_path import dijkstra


@dataclass(frozen=True)
class NetworkMetrics:
    """Summary statistics of a road network."""

    num_nodes: int
    num_edges: int
    average_degree: float
    max_degree: int
    degree_histogram: tuple[int, ...]  # index = degree, value = count
    estimated_diameter: float
    average_edge_weight: float
    cut_fraction_4way: float

    def describe(self) -> str:
        return (
            f"nodes={self.num_nodes} edges={self.num_edges} "
            f"avg_deg={self.average_degree:.2f} max_deg={self.max_degree} "
            f"diameter~{self.estimated_diameter:,.0f} "
            f"cut4={self.cut_fraction_4way:.3f}"
        )


def degree_histogram(network: RoadNetwork) -> tuple[int, ...]:
    """Counts of nodes per degree, up to the maximum degree."""
    if network.num_nodes == 0:
        return ()
    degrees = [network.degree(node) for node in network.nodes()]
    histogram = [0] * (max(degrees) + 1)
    for degree in degrees:
        histogram[degree] += 1
    return tuple(histogram)


def estimate_diameter(network: RoadNetwork, sweeps: int = 4, seed: int = 0) -> float:
    """Weighted diameter lower bound via double-sweep heuristic.

    Repeatedly runs Dijkstra from the farthest node found so far; on
    road networks this converges to within a few percent of the true
    diameter in a handful of sweeps.
    """
    if network.num_nodes == 0:
        return 0.0
    rng = random.Random(seed)
    node = rng.randrange(network.num_nodes)
    best = 0.0
    for _ in range(max(sweeps, 1)):
        distances = dijkstra(network, node)
        farthest = max(distances, key=distances.get)
        if distances[farthest] <= best:
            break
        best = distances[farthest]
        node = farthest
    return best


def cut_fraction(network: RoadNetwork, num_parts: int = 4, seed: int = 0) -> float:
    """Fraction of edges cut by a balanced ``num_parts``-way partition.

    Road networks (near-planar) should yield small fractions; random
    graphs of the same size cut a constant fraction.  Used to validate
    replica realism.
    """
    if network.num_edges == 0:
        return 0.0
    assignment = partition_graph(network, num_parts, seed=seed)
    return cut_edges(network, assignment) / network.num_edges


def compute_metrics(network: RoadNetwork, seed: int = 0) -> NetworkMetrics:
    """All diagnostics in one pass (partitioning dominates the cost)."""
    histogram = degree_histogram(network)
    max_degree = len(histogram) - 1 if histogram else 0
    total_weight = network.total_weight()
    return NetworkMetrics(
        num_nodes=network.num_nodes,
        num_edges=network.num_edges,
        average_degree=network.average_degree(),
        max_degree=max_degree,
        degree_histogram=histogram,
        estimated_diameter=estimate_diameter(network, seed=seed),
        average_edge_weight=(
            total_weight / network.num_edges if network.num_edges else 0.0
        ),
        cut_fraction_4way=cut_fraction(network, seed=seed),
    )

"""Route extraction: full paths, not just distances.

After an MPR query finds the nearest taxi, the dispatcher needs the
actual route to the rider.  These helpers wrap the shortest-path
engines into a route-centric API with validation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .road_network import RoadNetwork
from .shortest_path import dijkstra_with_paths, reconstruct_path


@dataclass(frozen=True)
class Route:
    """A concrete route: node sequence plus total network distance."""

    nodes: tuple[int, ...]
    distance: float

    @property
    def num_segments(self) -> int:
        return max(len(self.nodes) - 1, 0)

    def __iter__(self):
        return iter(self.nodes)


def shortest_route(network: RoadNetwork, source: int, target: int) -> Route | None:
    """The shortest route from ``source`` to ``target``.

    Returns ``None`` when unreachable.  For one-off point-to-point
    distances without the path, prefer
    :func:`repro.graph.shortest_path.shortest_path_distance` (cheaper).
    """
    distances, parents = dijkstra_with_paths(network, source)
    if target not in distances:
        return None
    nodes = tuple(reconstruct_path(parents, source, target))
    return Route(nodes=nodes, distance=distances[target])


def route_length(network: RoadNetwork, nodes: tuple[int, ...] | list[int]) -> float:
    """Total weight along a node sequence.

    Raises ``KeyError`` if consecutive nodes are not adjacent — used to
    validate externally supplied routes.
    """
    total = 0.0
    for a, b in zip(nodes, list(nodes)[1:]):
        total += network.edge_weight(a, b)
    return total


def routes_to_neighbors(
    network: RoadNetwork, source: int, targets: list[int]
) -> dict[int, Route]:
    """Routes from ``source`` to several targets with one search.

    The dispatch pattern: one rider, k candidate taxis — a single
    Dijkstra serves all k routes.  Unreachable targets are omitted.
    """
    distances, parents = dijkstra_with_paths(network, source)
    routes: dict[int, Route] = {}
    for target in targets:
        if target not in distances:
            continue
        nodes = tuple(reconstruct_path(parents, source, target))
        routes[target] = Route(nodes=nodes, distance=distances[target])
    return routes


def detour_factor(network: RoadNetwork, route: Route) -> float:
    """Route length over straight-line distance (route quality metric).

    Returns ``inf`` for zero straight-line distance with positive route
    length, 1.0 for empty/degenerate routes.
    """
    if route.num_segments == 0:
        return 1.0
    ax, ay = network.coordinate(route.nodes[0])
    bx, by = network.coordinate(route.nodes[-1])
    straight = math.hypot(ax - bx, ay - by)
    if straight == 0:
        return math.inf if route.distance > 0 else 1.0
    return route.distance / straight

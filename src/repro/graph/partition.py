"""Balanced graph partitioning for partition-tree indexes.

G-tree and V-tree (Section II) recursively split the road network into
``fanout`` balanced subgraphs with few crossing edges; the original
systems use METIS.  This module provides a pure-Python stand-in:
farthest-point seeded multi-source BFS growth followed by
Kernighan–Lin-style boundary refinement.  On near-planar road networks
this yields cuts close to METIS quality, which is all the tree indexes
need (border counts stay small).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Sequence

from .road_network import RoadNetwork


def partition_graph(
    network: RoadNetwork,
    num_parts: int,
    seed: int = 0,
    refinement_passes: int = 4,
    balance_tolerance: float = 0.25,
) -> list[int]:
    """Partition nodes into ``num_parts`` balanced parts.

    Returns a list ``assignment`` with ``assignment[node]`` in
    ``0 .. num_parts-1``.  Every part is non-empty provided the graph has
    at least ``num_parts`` nodes.

    Parameters
    ----------
    refinement_passes:
        Number of boundary-refinement sweeps (0 disables refinement).
    balance_tolerance:
        A move is allowed only while the target part stays below
        ``(1 + tolerance) * ideal_size``.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be positive")
    n = network.num_nodes
    if n == 0:
        return []
    if num_parts == 1:
        return [0] * n
    if num_parts >= n:
        # Degenerate: one node per part (extra parts stay empty-by-absence).
        return list(range(n))

    seeds = _spread_seeds(network, num_parts, seed)
    assignment = _grow_regions(network, seeds)
    _assign_orphans(network, assignment, seeds)
    max_size = int((1.0 + balance_tolerance) * (n / num_parts)) + 1
    for _ in range(refinement_passes):
        moved = _refine_boundary(network, assignment, num_parts, max_size)
        if not moved:
            break
    _ensure_nonempty(network, assignment, num_parts)
    return assignment


def cut_edges(network: RoadNetwork, assignment: Sequence[int]) -> int:
    """Number of edges whose endpoints lie in different parts."""
    return sum(
        1 for edge in network.edges() if assignment[edge.u] != assignment[edge.v]
    )


def border_nodes(network: RoadNetwork, assignment: Sequence[int]) -> set[int]:
    """Nodes incident to at least one cut edge (the tree indexes' borders)."""
    borders: set[int] = set()
    for edge in network.edges():
        if assignment[edge.u] != assignment[edge.v]:
            borders.add(edge.u)
            borders.add(edge.v)
    return borders


def part_sizes(assignment: Sequence[int], num_parts: int) -> list[int]:
    sizes = [0] * num_parts
    for part in assignment:
        if 0 <= part < num_parts:
            sizes[part] += 1
    return sizes


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _spread_seeds(network: RoadNetwork, num_parts: int, seed: int) -> list[int]:
    """Farthest-point sampling by BFS hop distance (k-center heuristic)."""
    rng = random.Random(seed)
    first = rng.randrange(network.num_nodes)
    seeds = [first]
    # hop distance to the nearest chosen seed
    nearest = _bfs_hops(network, first)
    for _ in range(num_parts - 1):
        candidate = max(range(network.num_nodes), key=lambda v: nearest[v])
        if nearest[candidate] == 0:
            # Graph smaller than expected or disconnected remainder;
            # fall back to a random unused node.
            unused = [v for v in network.nodes() if v not in seeds]
            if not unused:
                break
            candidate = rng.choice(unused)
        seeds.append(candidate)
        hops = _bfs_hops(network, candidate)
        for v in network.nodes():
            if hops[v] < nearest[v]:
                nearest[v] = hops[v]
    return seeds


def _bfs_hops(network: RoadNetwork, source: int) -> list[float]:
    hops = [float("inf")] * network.num_nodes
    hops[source] = 0
    queue = deque([source])
    offsets, targets, _ = network.csr
    while queue:
        node = queue.popleft()
        base = hops[node] + 1
        for idx in range(offsets[node], offsets[node + 1]):
            nxt = targets[idx]
            if base < hops[nxt]:
                hops[nxt] = base
                queue.append(nxt)
    return hops


def _grow_regions(network: RoadNetwork, seeds: list[int]) -> list[int]:
    """Round-robin multi-source BFS so regions grow at equal rates."""
    assignment = [-1] * network.num_nodes
    queues: list[deque[int]] = []
    for part, node in enumerate(seeds):
        assignment[node] = part
        queues.append(deque([node]))
    offsets, targets, _ = network.csr
    active = True
    while active:
        active = False
        for part, queue in enumerate(queues):
            if not queue:
                continue
            node = queue.popleft()
            active = True
            for idx in range(offsets[node], offsets[node + 1]):
                nxt = targets[idx]
                if assignment[nxt] == -1:
                    assignment[nxt] = part
                    queue.append(nxt)
    return assignment


def _assign_orphans(
    network: RoadNetwork, assignment: list[int], seeds: list[int]
) -> None:
    """Attach nodes unreachable from any seed (disconnected graphs)."""
    sizes: dict[int, int] = {}
    for part in assignment:
        if part != -1:
            sizes[part] = sizes.get(part, 0) + 1
    for node in network.nodes():
        if assignment[node] == -1:
            smallest = min(range(len(seeds)), key=lambda p: sizes.get(p, 0))
            # Flood the whole orphan component into one part, keeping
            # components intact.
            stack = [node]
            assignment[node] = smallest
            while stack:
                current = stack.pop()
                sizes[smallest] = sizes.get(smallest, 0) + 1
                for neighbor, _ in network.neighbors(current):
                    if assignment[neighbor] == -1:
                        assignment[neighbor] = smallest
                        stack.append(neighbor)


def _refine_boundary(
    network: RoadNetwork,
    assignment: list[int],
    num_parts: int,
    max_size: int,
) -> bool:
    """One sweep of greedy boundary moves; returns True if anything moved."""
    sizes = part_sizes(assignment, num_parts)
    offsets, targets, _ = network.csr
    moved = False
    for node in network.nodes():
        home = assignment[node]
        # Tally neighbour parts.
        tally: dict[int, int] = {}
        for idx in range(offsets[node], offsets[node + 1]):
            part = assignment[targets[idx]]
            tally[part] = tally.get(part, 0) + 1
        if len(tally) <= 1 and home in tally:
            continue  # interior node
        internal = tally.get(home, 0)
        best_part, best_gain = home, 0
        for part, count in tally.items():
            if part == home:
                continue
            gain = count - internal
            if gain > best_gain and sizes[part] + 1 <= max_size and sizes[home] > 1:
                best_part, best_gain = part, gain
        if best_part != home:
            assignment[node] = best_part
            sizes[home] -= 1
            sizes[best_part] += 1
            moved = True
    return moved


def _ensure_nonempty(
    network: RoadNetwork, assignment: list[int], num_parts: int
) -> None:
    """Steal a boundary node for any empty part (tiny graphs only)."""
    if network.num_nodes < num_parts:
        return
    sizes = part_sizes(assignment, num_parts)
    for part in range(num_parts):
        if sizes[part] > 0:
            continue
        donor = max(range(num_parts), key=lambda p: sizes[p])
        victim = next(v for v in network.nodes() if assignment[v] == donor)
        assignment[victim] = part
        sizes[donor] -= 1
        sizes[part] += 1

"""Spatial node lookup: snapping coordinates onto the road network.

The paper places queries and objects *at* network nodes; a deployed
service receives GPS fixes that must first be snapped to the nearest
junction (map matching's simplest form).  :class:`NodeLocator` provides
that with a numpy-backed uniform grid: build once per network, then
``nearest_node`` / ``nodes_within`` in microseconds.
"""

from __future__ import annotations

import math

import numpy as np

from .road_network import RoadNetwork


class NodeLocator:
    """Uniform-grid nearest-node index over network coordinates.

    Parameters
    ----------
    network:
        The road network (must have meaningful coordinates).
    target_per_cell:
        Average number of nodes per grid cell (sizing heuristic).
    """

    def __init__(self, network: RoadNetwork, target_per_cell: float = 4.0) -> None:
        if network.num_nodes == 0:
            raise ValueError("cannot index an empty network")
        if target_per_cell <= 0:
            raise ValueError("target_per_cell must be positive")
        self._network = network
        # Array path — works on guarded (memmap/shared attached)
        # networks, where the coordinate *list* property raises.
        coords = network.coord_arrays
        self._xs = coords[:, 0]
        self._ys = coords[:, 1]
        self._min_x = float(self._xs.min())
        self._min_y = float(self._ys.min())
        span_x = float(self._xs.max()) - self._min_x
        span_y = float(self._ys.max()) - self._min_y
        span = max(span_x, span_y, 1e-9)
        cells_per_axis = max(
            int(math.sqrt(network.num_nodes / target_per_cell)), 1
        )
        self._cell_size = span / cells_per_axis
        self._grid: dict[tuple[int, int], np.ndarray] = {}
        cx = ((self._xs - self._min_x) / self._cell_size).astype(np.int64)
        cy = ((self._ys - self._min_y) / self._cell_size).astype(np.int64)
        order = np.lexsort((cy, cx))
        keys = np.stack([cx[order], cy[order]], axis=1)
        boundaries = np.nonzero(np.any(np.diff(keys, axis=0) != 0, axis=1))[0] + 1
        for bucket in np.split(order, boundaries):
            key = (int(cx[bucket[0]]), int(cy[bucket[0]]))
            self._grid[key] = bucket

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nearest_node(self, x: float, y: float) -> tuple[int, float]:
        """The node closest to ``(x, y)`` and its Euclidean distance.

        Grid-ring search: expand rings of cells until a candidate is
        found, then one extra ring to guarantee no closer node hides in
        a diagonal cell.
        """
        cx = int((x - self._min_x) / self._cell_size)
        cy = int((y - self._min_y) / self._cell_size)
        best_node = -1
        best_distance = math.inf
        ring = 0
        max_ring = self._max_ring(cx, cy)
        must_stop_after = None
        while ring <= max_ring:
            for key in self._ring_keys(cx, cy, ring):
                bucket = self._grid.get(key)
                if bucket is None:
                    continue
                dx = self._xs[bucket] - x
                dy = self._ys[bucket] - y
                distances = np.hypot(dx, dy)
                index = int(np.argmin(distances))
                if float(distances[index]) < best_distance:
                    best_distance = float(distances[index])
                    best_node = int(bucket[index])
            if best_node >= 0 and must_stop_after is None:
                # One more ring covers diagonal neighbours that may hold
                # a closer node than the ring where the first hit landed.
                must_stop_after = ring + 1 + int(
                    best_distance / self._cell_size
                )
            if must_stop_after is not None and ring >= must_stop_after:
                break
            ring += 1
        return best_node, best_distance

    def nodes_within(self, x: float, y: float, radius: float) -> list[int]:
        """All nodes within Euclidean ``radius`` of ``(x, y)``, sorted
        by distance (ties by node id)."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        lo_cx = int((x - radius - self._min_x) / self._cell_size)
        hi_cx = int((x + radius - self._min_x) / self._cell_size)
        lo_cy = int((y - radius - self._min_y) / self._cell_size)
        hi_cy = int((y + radius - self._min_y) / self._cell_size)
        found: list[tuple[float, int]] = []
        for key_x in range(lo_cx, hi_cx + 1):
            for key_y in range(lo_cy, hi_cy + 1):
                bucket = self._grid.get((key_x, key_y))
                if bucket is None:
                    continue
                dx = self._xs[bucket] - x
                dy = self._ys[bucket] - y
                distances = np.hypot(dx, dy)
                inside = distances <= radius
                for node, distance in zip(bucket[inside], distances[inside]):
                    found.append((float(distance), int(node)))
        found.sort()
        return [node for _, node in found]

    def snap_many(self, points: list[tuple[float, float]]) -> list[int]:
        """Vector convenience: nearest node per point."""
        return [self.nearest_node(x, y)[0] for x, y in points]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _max_ring(self, cx: int, cy: int) -> int:
        if not self._grid:
            return 0
        return max(
            max(abs(kx - cx), abs(ky - cy)) for kx, ky in self._grid
        )

    @staticmethod
    def _ring_keys(cx: int, cy: int, ring: int):
        if ring == 0:
            yield (cx, cy)
            return
        for dx in range(-ring, ring + 1):
            yield (cx + dx, cy - ring)
            yield (cx + dx, cy + ring)
        for dy in range(-ring + 1, ring):
            yield (cx - ring, cy + dy)
            yield (cx + ring, cy + dy)

"""Vectorized contraction-hierarchy engine over CSR road networks.

Extracted from :mod:`repro.knn.toain` (which now adapts over this
module) and rebuilt array-first, in the spirit of SALT's "one shared
hierarchy serving every query family":

* :class:`ContractionHierarchy` contracts *batches* of independent
  (non-adjacent) nodes at once: per round it scores every live node's
  edge difference from vectorized degree/deleted-neighbor arrays,
  selects the nodes that are local minima of ``(priority, id)`` among
  their neighbors (a maximal-progress independent set), runs all their
  witness searches as one bounded multi-source sweep in flat key space
  (:func:`_witness_block`, the same gather/scatter idiom as
  :class:`~repro.graph.kernels.CSRKernels`), and applies the
  contraction with array ops.  The dense endgame (last few thousand
  nodes) falls back to the classic lazy-heap loop, which is also kept
  whole as ``builder="lazy"`` — the measured seed baseline.  With
  ``workers=N`` the witness phase fans out across forked worker
  processes that re-attach the base CSR from the graph-cache memmap
  token (or inherit it copy-on-write) and maintain replica edge arrays
  via per-round deltas.
* :class:`CHKernels` runs queries on the output arrays.  The key reuse:
  the delta-stepping :class:`~repro.graph.kernels.CSRKernels` never
  assumes a symmetric CSR, so a private instance over the upward half
  *is* the vectorized bounded upward sweep.  On top of it sit
  :meth:`~CHKernels.point_to_point` (two upward sweeps + a hub join),
  hub-label object buckets, and CH-backed
  :meth:`~CHKernels.topk_objects` / :meth:`~CHKernels.knn_batch` with
  the same contract as the plain kernels — which is what lets
  ``DijkstraKNN``/``IERKNN`` route long-range queries here untouched.
  The hub-label cache is LRU-bounded by *bytes* (``LABEL_CACHE_BYTES``)
  and reported through the ``ch.label_bytes`` / ``ch.label_evictions``
  kernel counters; labels persisted in a graph cache (see
  :func:`repro.graph.cache.save_ch_cache`) are served from the static
  store without touching the LRU.

Batch correctness
-----------------
Contracting a whole independent set is only sound if each member's
witness searches avoid *every* node contracted this round, not just its
own center: two batch members on a common cycle can otherwise each
"witness" the other away and both drop out, losing the path (picture a
4-cycle ``u - v1 - w - v2 - u`` with both ``v1`` and ``v2`` selected).
:func:`_witness_block` therefore takes the whole batch as a forbidden
set.  Truncating a witness search (the ``hop_limit``) errs the safe
way: a missed witness only adds a redundant shortcut, while any found
witness is a genuine path.  Node order itself is a heuristic — any
contraction order yields a correct hierarchy — so the batched builder's
different (still deterministic) order changes sizes, never answers.

Exactness and bit-identity
--------------------------
CH distances are sums over precomputed shortcut weights, and float
addition is not associative — on arbitrary float weights a CH distance
can differ from the Dijkstra distance in the last ulp.  On
integer-weight networks (all DIMACS road graphs; our generated grids)
every path sum is exactly representable in float64, so CH results are
*bit-identical* to the kernels.  :attr:`ContractionHierarchy.exact`
records this (the same integral test as
:func:`~repro.graph.kernels.dial_delta`), and the kNN solutions only
auto-route to the CH path when it is set.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections import OrderedDict
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .kernels import KERNEL_CALLS, CSRKernels, dial_delta

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .road_network import RoadNetwork

__all__ = [
    "CHKernels",
    "CHDistanceOracle",
    "ContractionHierarchy",
    "LABEL_CACHE_BYTES",
    "WITNESS_HOP_LIMIT",
    "WITNESS_SETTLE_LIMIT",
    "build_core_labels",
    "calibrate_ch_cutoff",
]

INFINITY = float("inf")

#: Witness-search effort bound for the scalar (lazy/endgame) builder.
#: Hitting the bound conservatively adds the shortcut, which preserves
#: correctness.
WITNESS_SETTLE_LIMIT = 60

#: Relaxation-round bound for the batched witness sweeps: witnesses of
#: more than this many hops are not found, which (conservatively and
#: correctly) adds their shortcut.
WITNESS_HOP_LIMIT = 12

#: Per-search label budget for the batched witness sweep — the
#: vectorized counterpart of WITNESS_SETTLE_LIMIT, with headroom
#: because a label-correcting sweep touches more nodes than a Dijkstra
#: settles.  Abandoning a search is conservative: its unresolved pairs
#: just get redundant shortcuts.
WITNESS_LABEL_LIMIT = 256

#: Below this many live nodes the batched builder hands the dense core
#: to the lazy-heap loop.  Kept small: the shrinking-bound witness
#: sweep stays profitable deep into the dense core, and the scalar
#: loop's per-node witness Dijkstras dominate the whole build if the
#: hand-off happens while thousands of high-degree nodes remain.
ENDGAME_NODES = 64

#: Default builder for :class:`ContractionHierarchy`.
DEFAULT_BUILDER = "batched"

_EMPTY_I8 = np.empty(0, dtype=np.int64)
_EMPTY_F8 = np.empty(0, dtype=np.float64)

#: Byte budget for the cached hub labels of one :class:`CHKernels`
#: (hub ids + distances).  Least-recently-used labels are evicted past
#: it; the hot high-rank core that every query traverses stays
#: resident.  Overridable per instance via ``label_budget_bytes``.
LABEL_CACHE_BYTES = 128 << 20


# ----------------------------------------------------------------------
# Batched-contraction primitives (module level: shared with the witness
# worker processes)
# ----------------------------------------------------------------------
def _seg_arange(counts: np.ndarray) -> np.ndarray:
    """``[0..c0), [0..c1), ...`` — one arange per segment, flattened."""
    total = int(counts.sum())
    if total == 0:
        return _EMPTY_I8
    cum = np.cumsum(counts)
    return np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)


def _half_edges(
    n: int, indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Each undirected CSR edge once, as ``(lo, hi, w)`` arrays."""
    counts = np.diff(indptr.astype(np.int64))
    srcs = np.repeat(np.arange(n, dtype=np.int64), counts)
    half = srcs < indices
    return (
        srcs[half],
        indices[half].astype(np.int64),
        weights[half].astype(np.float64),
    )


def _edges_to_csr(
    n: int, eu: np.ndarray, ev: np.ndarray, ew: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Symmetric CSR of the live graph from its half-edge arrays."""
    src = np.concatenate([eu, ev])
    dst = np.concatenate([ev, eu])
    wts = np.concatenate([ew, ew])
    order = np.argsort(src, kind="stable")
    indptr = np.zeros(n + 1, dtype=np.int64)
    if len(src):
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
    return indptr, dst[order], wts[order]


def _merge_edges(
    n: int,
    eu: np.ndarray,
    ev: np.ndarray,
    ew: np.ndarray,
    sc_a: np.ndarray,
    sc_b: np.ndarray,
    sc_w: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fold new shortcuts into the half-edge arrays, keeping the min
    weight per node pair (the array form of ``adjacency[u][w] =
    min(...)``)."""
    if len(sc_a):
        eu = np.concatenate([eu, np.minimum(sc_a, sc_b)])
        ev = np.concatenate([ev, np.maximum(sc_a, sc_b)])
        ew = np.concatenate([ew, sc_w])
    if len(eu) == 0:
        return eu, ev, ew
    key = eu * n + ev
    order = np.lexsort((ew, key))
    key = key[order]
    keep = np.empty(len(key), dtype=bool)
    keep[0] = True
    np.not_equal(key[1:], key[:-1], out=keep[1:])
    return eu[order][keep], ev[order][keep], ew[order][keep]


def _select_batch(
    priority: np.ndarray,
    tie: np.ndarray,
    remaining: np.ndarray,
    eu: np.ndarray,
    ev: np.ndarray,
) -> np.ndarray:
    """Live nodes that are strict ``(priority, tie)`` minima among
    their neighbors — an independent set (adjacent nodes can't both win
    their shared edge) that always contains the global minimum.

    ``tie`` is a random permutation of the node ids: on graphs where
    many nodes share a priority (any regular region), breaking ties by
    raw id would leave only a handful of local minima when ids are
    spatially correlated (e.g. row-major grids), collapsing the batch
    size; a random total order keeps the expected independent set at
    ~1/(avg degree + 1) of the live nodes.
    """
    beaten = np.zeros(len(priority), dtype=bool)
    pu = priority[eu]
    pv = priority[ev]
    u_wins = (pu < pv) | ((pu == pv) & (tie[eu] < tie[ev]))
    beaten[ev[u_wins]] = True
    beaten[eu[~u_wins]] = True
    return np.flatnonzero(remaining & ~beaten)


def _sort_triples(
    n: int, a: np.ndarray, b: np.ndarray, w: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonical ``(lo, hi, w)`` order, so serial and pooled witness
    phases emit byte-identical shortcut arrays."""
    if len(a) == 0:
        return a, b, w
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    order = np.lexsort((w, lo * n + hi))
    return lo[order], hi[order], w[order]


def _witness_block(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    vs: np.ndarray,
    *,
    hop_limit: int,
    forbidden: np.ndarray | None = None,
    chunk: int = 65536,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched bounded witness searches for contracting every ``v`` in
    ``vs`` at once.

    For each ``v`` and each unordered pair ``(u, w)`` of its neighbors,
    look for a path ``u -> w`` of length <= ``w(u,v) + w(v,w)`` that
    avoids ``v`` and every node in ``forbidden`` (the whole batch — see
    the module docstring), within ``hop_limit`` relaxation rounds.
    Pairs with no such witness need a shortcut; returns their
    ``(u, w, weight)`` triples.

    All searches of a chunk run together as label-correcting rounds in
    a flat ``search * n + node`` key space: gather the frontier's
    out-edges, drop forbidden/over-bound candidates, reduce to the min
    per (search, node), and merge improvements into the sorted known
    set — the multi-source analogue of ``CSRKernels._relax``, with the
    per-search bound (the largest ``through`` value) capping the
    explored region exactly like the scalar witness Dijkstra.

    Two dedups make this much cheaper than one search per (center,
    neighbor): searches avoid the *whole batch*, so searches from the
    same source node on behalf of different centers are identical and
    are merged (one search per unique source); and duplicate
    (source, target) pairs arising from different centers keep only
    the minimum ``through`` — a valid path that dominates the others.
    """
    out_a: list[np.ndarray] = [_EMPTY_I8]
    out_b: list[np.ndarray] = [_EMPTY_I8]
    out_w: list[np.ndarray] = [_EMPTY_F8]
    vs = np.asarray(vs, dtype=np.int64)
    if len(vs):
        deg = indptr[vs + 1] - indptr[vs]
        vs = vs[deg >= 2]  # fewer than two neighbors: no pairs
    for start in range(0, len(vs), chunk):
        cvs = vs[start:start + chunk]
        if forbidden is None:
            # Standalone use: batch semantics still require routing
            # around every center in the chunk.
            forbid = np.zeros(n, dtype=bool)
            forbid[cvs] = True
        else:
            forbid = forbidden
        d = (indptr[cvs + 1] - indptr[cvs]).astype(np.int64)
        # One source slot per (v, neighbor index i < deg-1): source u
        # is the i-th neighbor, targets are neighbors j > i.
        s_counts = d - 1
        if int(s_counts.sum()) == 0:
            continue
        s_v = np.repeat(cvs, s_counts)
        s_i = _seg_arange(s_counts)
        s_edge = indptr[s_v] + s_i
        slot_u = indices[s_edge].astype(np.int64)
        s_du = weights[s_edge].astype(np.float64)
        t_counts = np.repeat(d, s_counts) - 1 - s_i
        slot_of_pair = np.repeat(
            np.arange(len(slot_u), dtype=np.int64), t_counts
        )
        t_j = s_i[slot_of_pair] + 1 + _seg_arange(t_counts)
        t_edge = indptr[s_v[slot_of_pair]] + t_j
        raw_node = indices[t_edge].astype(np.int64)
        raw_through = s_du[slot_of_pair] + weights[t_edge]

        # Merge slots that share a source node, then dedup pairs on
        # (search, target) keeping the smallest through value.  The
        # pair-key sort doubles as the per-search grouping (sid is the
        # key's high part).
        s_u, inv = np.unique(slot_u, return_inverse=True)
        num_s = len(s_u)
        pk0 = inv[slot_of_pair] * n + raw_node
        order = np.lexsort((raw_through, pk0))
        pk_sorted = pk0[order]
        keep = np.empty(len(pk_sorted), dtype=bool)
        if len(keep):
            keep[0] = True
            np.not_equal(pk_sorted[1:], pk_sorted[:-1], out=keep[1:])
        pk = pk_sorted[keep]
        through = raw_through[order][keep]
        t_sid = pk // n
        t_node = pk - t_sid * n
        group_starts = np.cumsum(np.bincount(t_sid, minlength=num_s))
        group_starts -= np.bincount(t_sid, minlength=num_s)

        known_keys = np.arange(num_s, dtype=np.int64) * n + s_u
        known_dist = np.zeros(num_s, dtype=np.float64)

        def _lookup(keys: np.ndarray) -> np.ndarray:
            """Known distance per key (inf when unsettled)."""
            pos = np.searchsorted(known_keys, keys)
            pos_c = np.minimum(pos, len(known_keys) - 1)
            have = (pos < len(known_keys)) & (known_keys[pos_c] == keys)
            return np.where(have, known_dist[pos_c], np.inf)

        # Per-search bound: the largest *unresolved* target's through
        # value.  Re-shrunk every hop as witnesses land, so a search
        # dies the moment its last pair is witnessed — the batched
        # analogue of the scalar loop's ``remaining == 0`` early exit.
        # ``live`` indexes the still-unresolved pairs so the per-hop
        # re-check touches only them, not the whole chunk.  A search
        # that accumulates more than WITNESS_LABEL_LIMIT distance
        # labels is abandoned (its remaining pairs get conservative
        # shortcuts) — the batched analogue of the scalar witness
        # Dijkstra's settle cap, with headroom because label-correcting
        # sweeps touch more nodes than Dijkstra settles.
        tmask = through.copy()
        live = np.arange(len(pk), dtype=np.int64)
        bound = np.maximum.reduceat(tmask, group_starts)
        labels = np.ones(num_s, dtype=np.int64)
        f_keys = known_keys
        f_dist = known_dist
        for _ in range(hop_limit):
            f_sid = f_keys // n
            # Prune before the edge gather: entries of searches whose
            # bound has shrunk below the frontier distance (dead or
            # nearly-done searches) can never yield a candidate, since
            # weights are positive.
            alive = f_dist < bound[f_sid]
            if not alive.all():
                f_keys = f_keys[alive]
                f_dist = f_dist[alive]
                f_sid = f_sid[alive]
            if len(f_keys) == 0:
                break
            f_node = f_keys % n
            st = indptr[f_node]
            cnt = indptr[f_node + 1] - st
            eids = _seg_arange(cnt) + np.repeat(st, cnt)
            tg = indices[eids].astype(np.int64, copy=False)
            cd = np.repeat(f_dist, cnt) + weights[eids]
            # The contracted centers are all batch members, so the
            # forbidden mask subsumes any per-search center skip.
            ok = cd <= np.repeat(bound[f_sid], cnt)
            ok &= ~forbid[tg]
            if not ok.any():
                break
            # key = sid*n + node; sid*n is f_keys - f_node, expanded.
            ck = np.repeat(f_keys - f_node, cnt)[ok] + tg[ok]
            cd = cd[ok]
            # Min distance per unique key: one stable sort by key, then
            # a segmented min — cheaper than a two-key lexsort.
            order = np.argsort(ck, kind="stable")
            ck = ck[order]
            first = np.empty(len(ck), dtype=bool)
            first[0] = True
            np.not_equal(ck[1:], ck[:-1], out=first[1:])
            starts = np.flatnonzero(first)
            cd = np.minimum.reduceat(cd[order], starts)
            ck = ck[first]
            pos = np.searchsorted(known_keys, ck)
            pos_c = np.minimum(pos, len(known_keys) - 1)
            have = (pos < len(known_keys)) & (known_keys[pos_c] == ck)
            better = cd < np.where(have, known_dist[pos_c], np.inf)
            if not better.any():
                break
            upd = better & have
            known_dist[pos[upd]] = cd[upd]
            new = better & ~have
            if new.any():
                known_keys = np.insert(known_keys, pos[new], ck[new])
                known_dist = np.insert(known_dist, pos[new], cd[new])
            f_keys = ck[better]
            f_dist = cd[better]
            rebound = False
            resolved = _lookup(pk[live]) <= through[live]
            if resolved.any():
                tmask[live[resolved]] = -np.inf
                live = live[~resolved]
                if len(live) == 0:
                    break
                rebound = True
            if new.any():
                labels += np.bincount(ck[new] // n, minlength=num_s)
                over = labels[t_sid[live]] > WITNESS_LABEL_LIMIT
                if over.any():
                    tmask[live[over]] = -np.inf
                    # Capped pairs stay in ``live``: the final check
                    # below emits their (conservative) shortcuts.
                    rebound = True
            if rebound:
                bound = np.maximum.reduceat(tmask, group_starts)

        # A witness at exactly the bound wins; pairs already pruned
        # from ``live`` found theirs mid-sweep.
        need = np.zeros(len(pk), dtype=bool)
        if len(live):
            need[live[_lookup(pk[live]) > through[live]]] = True
        if need.any():
            out_a.append(s_u[t_sid[need]])
            out_b.append(t_node[need])
            out_w.append(through[need])
    return (
        np.concatenate(out_a),
        np.concatenate(out_b),
        np.concatenate(out_w),
    )


# ----------------------------------------------------------------------
# Witness worker pool
# ----------------------------------------------------------------------
def _witness_worker(conn, payload, index: int, num_workers: int,
                    hop_limit: int) -> None:
    """Worker loop: hold a replica of the evolving half-edge arrays and
    answer a strided share of each round's witness searches."""
    if isinstance(payload, tuple) and payload and payload[0] == "cache":
        from .cache import attach_cached_graph

        network = attach_cached_graph(payload[1])
    else:
        network = payload
    indptr, indices, weights = network.csr_arrays
    n = network.num_nodes
    eu, ev, ew = _half_edges(n, indptr, indices, weights)
    try:
        while True:
            msg = conn.recv()
            tag = msg[0]
            if tag == "witness":
                sel = msg[1]
                selmask = np.zeros(n, dtype=bool)
                selmask[sel] = True
                csr = _edges_to_csr(n, eu, ev, ew)
                share = sel[index::num_workers]
                conn.send(
                    _witness_block(
                        n, *csr, share,
                        hop_limit=hop_limit, forbidden=selmask,
                    )
                )
            elif tag == "apply":
                sel, sc_a, sc_b, sc_w = msg[1], msg[2], msg[3], msg[4]
                selmask = np.zeros(n, dtype=bool)
                selmask[sel] = True
                keep = ~(selmask[eu] | selmask[ev])
                eu, ev, ew = _merge_edges(
                    n, eu[keep], ev[keep], ew[keep], sc_a, sc_b, sc_w
                )
            else:
                break
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown
        pass
    finally:
        conn.close()


class _WitnessPool:
    """Fork-context worker processes for the batched witness phase.

    The base CSR travels as the graph-cache memmap token when the
    network is cache-backed (each worker re-memmaps the same files), or
    by fork copy-on-write otherwise; afterwards only per-round deltas
    (the contracted batch + its shortcut triples) cross the pipes.
    """

    def __init__(self, network: "RoadNetwork", workers: int,
                 hop_limit: int) -> None:
        ctx = multiprocessing.get_context("fork")
        cache_meta = getattr(network, "_cache_meta", None)
        payload = ("cache", cache_meta) if cache_meta is not None else network
        self._conns = []
        self._procs = []
        for index in range(workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_witness_worker,
                args=(child, payload, index, workers, hop_limit),
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    def witness(
        self, sel: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        for conn in self._conns:
            conn.send(("witness", sel))
        parts = [self._recv(conn) for conn in self._conns]
        return (
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
            np.concatenate([p[2] for p in parts]),
        )

    def apply(self, sel: np.ndarray, sc_a: np.ndarray, sc_b: np.ndarray,
              sc_w: np.ndarray) -> None:
        for conn in self._conns:
            conn.send(("apply", sel, sc_a, sc_b, sc_w))

    @staticmethod
    def _recv(conn, timeout: float = 600.0):
        if not conn.poll(timeout):
            raise RuntimeError("witness worker timed out")
        return conn.recv()

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("close",))
                conn.close()
            except OSError:  # pragma: no cover - worker already gone
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=10)


def _rebuild_hierarchy(state: dict) -> "ContractionHierarchy":
    """Pickle helper: rebuild a hierarchy from its plain state dict."""
    ch = ContractionHierarchy.__new__(ContractionHierarchy)
    ch.__setstate__(state)
    return ch


class ContractionHierarchy:
    """A full contraction hierarchy over a road network, as arrays.

    Nodes are contracted in (batched) edge-difference order; shortcuts
    keep shortest distances intact among uncontracted nodes.  The
    outputs:

    ``rank``
        int64 array; ``rank[v]`` is v's contraction order (0 = first).
    ``up_indptr`` / ``up_indices`` / ``up_weights``
        CSR of the *upward* graph: one arc per final undirected edge or
        shortcut, from its lower-ranked to its higher-ranked endpoint.
    ``down_indptr`` / ``down_indices`` / ``down_weights``
        The reverse (downward) half.
    ``shortcut_u`` / ``shortcut_v`` / ``shortcut_w``
        The shortcut triples that were added (diagnostics/size checks).
    ``exact``
        True when all edge weights are integral, i.e. CH sums are
        bit-identical to Dijkstra distances (see module docstring).

    ``builder`` selects the construction pipeline: ``"batched"`` (the
    default — vectorized independent-set rounds, see the module
    docstring) or ``"lazy"`` (the original scalar heap loop, kept as
    the reference/baseline).  ``workers=N`` parallelizes the batched
    witness phase across N forked processes; platforms without fork
    fall back to serial.  Both builders and both execution modes are
    deterministic, and serial vs. pooled batched builds are
    byte-identical.

    A hierarchy loaded from a graph cache
    (:func:`repro.graph.cache.load_cached_ch`) carries a
    ``CHCacheMeta`` token and pickles as that token — pool workers
    re-memmap the arrays in O(1) instead of shipping or rebuilding
    them.

    The dict/list views of the old pure-Python implementation
    (:attr:`edges`, :attr:`up_adj`) are kept as lazily-built cached
    properties for :class:`repro.knn.toain.ToainIndex` compatibility.
    """

    def __init__(
        self,
        network: "RoadNetwork",
        seed: int = 0,
        *,
        builder: str = DEFAULT_BUILDER,
        workers: int | None = None,
        witness_hops: int = WITNESS_HOP_LIMIT,
        endgame_nodes: int = ENDGAME_NODES,
    ) -> None:
        self.network = network
        indptr, indices, weights = network.csr_arrays
        self.exact = bool(
            len(weights) == 0
            or np.equal(np.floor(weights), weights).all()
        )
        self.builder = builder
        KERNEL_CALLS["ch.build"] += 1
        self._static_labels: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        if builder == "lazy":
            self._contract_lazy(indptr, indices, weights)
        elif builder == "batched":
            self._contract_batched(
                indptr,
                indices,
                weights,
                seed=seed,
                workers=workers,
                witness_hops=witness_hops,
                endgame_nodes=endgame_nodes,
            )
        else:
            raise ValueError(
                f"unknown builder {builder!r}; expected 'batched' or 'lazy'"
            )
        self._build_halves(indptr, indices, weights)
        self._init_runtime_state()

    @classmethod
    def from_arrays(
        cls,
        network: "RoadNetwork",
        *,
        rank: np.ndarray,
        up_indptr: np.ndarray,
        up_indices: np.ndarray,
        up_weights: np.ndarray,
        down_indptr: np.ndarray,
        down_indices: np.ndarray,
        down_weights: np.ndarray,
        shortcut_u: np.ndarray,
        shortcut_v: np.ndarray,
        shortcut_w: np.ndarray,
        exact: bool,
        builder: str = "cached",
        static_labels: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> "ContractionHierarchy":
        """Adopt prebuilt hierarchy arrays (e.g. memmapped from a graph
        cache) without contracting anything.  Arrays are used as-is and
        must be treated as read-only."""
        ch = cls.__new__(cls)
        ch.network = network
        ch.exact = bool(exact)
        ch.builder = builder
        ch.rank = rank
        ch.up_indptr = up_indptr
        ch.up_indices = up_indices
        ch.up_weights = up_weights
        ch.down_indptr = down_indptr
        ch.down_indices = down_indices
        ch.down_weights = down_weights
        ch.shortcut_u = shortcut_u
        ch.shortcut_v = shortcut_v
        ch.shortcut_w = shortcut_w
        ch._static_labels = static_labels
        ch._init_runtime_state()
        return ch

    # ------------------------------------------------------------------
    # Batched construction
    # ------------------------------------------------------------------
    def _contract_batched(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        *,
        seed: int,
        workers: int | None,
        witness_hops: int,
        endgame_nodes: int,
    ) -> None:
        n = self.network.num_nodes
        rank = np.zeros(n, dtype=np.int64)
        tie = np.random.default_rng(seed).permutation(n)
        eu, ev, ew = _half_edges(n, indptr, indices, weights)
        remaining = np.ones(n, dtype=bool)
        deleted = np.zeros(n, dtype=np.int64)
        parts_a: list[np.ndarray] = []
        parts_b: list[np.ndarray] = []
        parts_w: list[np.ndarray] = []
        next_rank = 0
        floor = max(int(endgame_nodes), 0)
        pool = None
        try:
            if (
                workers is not None
                and int(workers) > 1
                and n > floor
                and "fork" in multiprocessing.get_all_start_methods()
            ):
                pool = _WitnessPool(self.network, int(workers), witness_hops)
            while int(remaining.sum()) > floor:
                deg = (
                    np.bincount(eu, minlength=n)
                    + np.bincount(ev, minlength=n)
                )
                priority = deg * (deg - 1) / 2.0 - deg + 0.7 * deleted
                sel = _select_batch(priority, tie, remaining, eu, ev)
                if sel.size == 0:  # pragma: no cover - minimum always wins
                    break
                selmask = np.zeros(n, dtype=bool)
                selmask[sel] = True
                if pool is not None:
                    sc_a, sc_b, sc_w = pool.witness(sel)
                else:
                    csr = _edges_to_csr(n, eu, ev, ew)
                    sc_a, sc_b, sc_w = _witness_block(
                        n, *csr, sel,
                        hop_limit=witness_hops, forbidden=selmask,
                    )
                sc_a, sc_b, sc_w = _sort_triples(n, sc_a, sc_b, sc_w)
                # Ranks within the batch follow (priority, id) — the
                # order the heap would have popped them in.
                order = np.lexsort((sel, priority[sel]))
                rank[sel[order]] = next_rank + np.arange(
                    sel.size, dtype=np.int64
                )
                next_rank += int(sel.size)
                remaining[sel] = False
                a_sel = selmask[eu]
                b_sel = selmask[ev]
                np.add.at(deleted, ev[a_sel], 1)
                np.add.at(deleted, eu[b_sel], 1)
                keep = ~a_sel & ~b_sel
                eu, ev, ew = _merge_edges(
                    n, eu[keep], ev[keep], ew[keep], sc_a, sc_b, sc_w
                )
                if pool is not None:
                    pool.apply(sel, sc_a, sc_b, sc_w)
                if len(sc_a):
                    parts_a.append(sc_a)
                    parts_b.append(sc_b)
                    parts_w.append(sc_w)
        finally:
            if pool is not None:
                pool.close()
        tail_u: list[int] = []
        tail_v: list[int] = []
        tail_w: list[float] = []
        self._contract_endgame(
            n, eu, ev, ew, remaining, deleted, rank, next_rank,
            tail_u, tail_v, tail_w,
        )
        parts_a.append(np.asarray(tail_u, dtype=np.int64))
        parts_b.append(np.asarray(tail_v, dtype=np.int64))
        parts_w.append(np.asarray(tail_w, dtype=np.float64))
        self.rank = rank
        self.shortcut_u = np.concatenate(parts_a) if parts_a else _EMPTY_I8
        self.shortcut_v = np.concatenate(parts_b) if parts_b else _EMPTY_I8
        self.shortcut_w = np.concatenate(parts_w) if parts_w else _EMPTY_F8

    def _contract_endgame(
        self,
        n: int,
        eu: np.ndarray,
        ev: np.ndarray,
        ew: np.ndarray,
        remaining: np.ndarray,
        deleted: np.ndarray,
        rank: np.ndarray,
        next_rank: int,
        sc_u: list[int],
        sc_v: list[int],
        sc_w: list[float],
    ) -> int:
        """Contract the dense core with the scalar lazy-heap loop,
        continuing the rank sequence of the batched rounds."""
        adjacency: list[dict[int, float]] = [dict() for _ in range(n)]
        for u, v, w in zip(eu.tolist(), ev.tolist(), ew.tolist()):
            adjacency[u][v] = w
            adjacency[v][u] = w
        deleted_neighbors = deleted.tolist()
        live = np.flatnonzero(remaining).tolist()
        contracted = [True] * n
        for v in live:
            contracted[v] = False

        def priority(v: int) -> float:
            degree = len(adjacency[v])
            needed = degree * (degree - 1) // 2
            return needed - degree + 0.7 * deleted_neighbors[v]

        heap: list[tuple[float, int]] = [(priority(v), v) for v in live]
        heap.sort()
        while heap:
            _, v = heappop(heap)
            if contracted[v]:
                continue
            fresh = priority(v)
            if heap and fresh > heap[0][0]:
                heappush(heap, (fresh, v))
                continue
            rank[v] = next_rank
            next_rank += 1
            contracted[v] = True
            for u, w, weight in self._shortcuts_for(adjacency, v):
                prior = adjacency[u].get(w)
                if prior is None or weight < prior:
                    adjacency[u][w] = weight
                    adjacency[w][u] = weight
                sc_u.append(u)
                sc_v.append(w)
                sc_w.append(weight)
            for u in adjacency[v]:
                deleted_neighbors[u] += 1
                adjacency[u].pop(v, None)
            adjacency[v].clear()
        return next_rank

    # ------------------------------------------------------------------
    # Lazy (reference) construction
    # ------------------------------------------------------------------
    def _contract_lazy(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        """The original scalar builder: lazy edge-difference heap with
        one multi-target witness Dijkstra per neighbor.  Kept whole as
        the measured baseline (`builder="lazy"`) and as the endgame's
        inner loop."""
        n = self.network.num_nodes
        starts = indptr.tolist()
        targets = indices.tolist()
        wts = weights.tolist()
        adjacency: list[dict[int, float]] = [dict() for _ in range(n)]
        for u in range(n):
            row = adjacency[u]
            for idx in range(starts[u], starts[u + 1]):
                row[targets[idx]] = wts[idx]

        rank = [0] * n
        contracted = [False] * n
        deleted_neighbors = [0] * n
        sc_u: list[int] = []
        sc_v: list[int] = []
        sc_w: list[float] = []

        def priority(v: int) -> float:
            degree = len(adjacency[v])
            needed = degree * (degree - 1) // 2
            return needed - degree + 0.7 * deleted_neighbors[v]

        heap: list[tuple[float, int]] = [(priority(v), v) for v in range(n)]
        heap.sort()
        next_rank = 0
        while heap:
            _, v = heappop(heap)
            if contracted[v]:
                continue
            fresh = priority(v)
            if heap and fresh > heap[0][0]:
                heappush(heap, (fresh, v))
                continue
            rank[v] = next_rank
            next_rank += 1
            contracted[v] = True
            for u, w, weight in self._shortcuts_for(adjacency, v):
                prior = adjacency[u].get(w)
                if prior is None or weight < prior:
                    adjacency[u][w] = weight
                    adjacency[w][u] = weight
                sc_u.append(u)
                sc_v.append(w)
                sc_w.append(weight)
            for u in adjacency[v]:
                deleted_neighbors[u] += 1
                adjacency[u].pop(v, None)
            adjacency[v].clear()

        self.rank = np.asarray(rank, dtype=np.int64)
        self.shortcut_u = np.asarray(sc_u, dtype=np.int64)
        self.shortcut_v = np.asarray(sc_v, dtype=np.int64)
        self.shortcut_w = np.asarray(sc_w, dtype=np.float64)

    # ------------------------------------------------------------------
    # Scalar construction helpers (lazy builder + endgame)
    # ------------------------------------------------------------------
    @staticmethod
    def _shortcuts_for(
        adjacency: list[dict[int, float]], v: int
    ) -> list[tuple[int, int, float]]:
        """Shortcuts required when removing ``v``.

        One *multi-target* bounded witness search per neighbor ``u``
        replaces the classic per-pair search: a single Dijkstra from
        ``u`` (avoiding ``v``) tries to settle every other neighbor
        ``w`` within its ``u→v→w`` bound.  Hitting the settle limit
        leaves the remaining targets shortcut-ed, which is conservative
        and correct.
        """
        neighbors = list(adjacency[v])
        shortcuts: list[tuple[int, int, float]] = []
        for i, u in enumerate(neighbors):
            du = adjacency[v][u]
            through = {w: du + adjacency[v][w] for w in neighbors[i + 1:]}
            if not through:
                continue
            reached = ContractionHierarchy._witness_multi(
                adjacency, u, through, v
            )
            for w, bound in through.items():
                if reached.get(w, INFINITY) > bound:
                    shortcuts.append((u, w, bound))
        return shortcuts

    @staticmethod
    def _witness_multi(
        adjacency: list[dict[int, float]],
        source: int,
        through: dict[int, float],
        skip: int,
    ) -> dict[int, float]:
        """Bounded Dijkstra from ``source`` avoiding ``skip``.

        Returns settled distances for the nodes in ``through`` (others
        may appear; missing means "no witness found within budget").
        """
        bound = max(through.values())
        dist: dict[int, float] = {source: 0.0}
        heap = [(0.0, source)]
        remaining = len(through)
        settled = 0
        done: set[int] = set()
        while heap and settled < WITNESS_SETTLE_LIMIT and remaining > 0:
            d, node = heappop(heap)
            if d > dist.get(node, INFINITY):
                continue
            if d > bound:
                break
            settled += 1
            if node in through and node not in done:
                done.add(node)
                remaining -= 1
            for nxt, weight in adjacency[node].items():
                if nxt == skip:
                    continue
                nd = d + weight
                if nd <= bound and nd < dist.get(nxt, INFINITY):
                    dist[nxt] = nd
                    heappush(heap, (nd, nxt))
        return dist

    def _build_halves(
        self, indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray
    ) -> None:
        """Dedup originals + shortcuts, split into up/down CSR halves."""
        n = len(self.rank)
        base_u, base_v, base_w = _half_edges(n, indptr, indices, weights)
        all_u = np.concatenate([base_u, self.shortcut_u])
        all_v = np.concatenate([base_v, self.shortcut_v])
        all_w = np.concatenate([base_w, self.shortcut_w])
        lo = np.minimum(all_u, all_v)
        hi = np.maximum(all_u, all_v)
        key = lo * max(n, 1) + hi
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        first = np.empty(len(key_sorted), dtype=bool)
        if len(key_sorted):
            first[0] = True
            np.not_equal(key_sorted[1:], key_sorted[:-1], out=first[1:])
        group_starts = np.flatnonzero(first)
        if len(group_starts):
            edge_w = np.minimum.reduceat(all_w[order], group_starts)
        else:
            edge_w = _EMPTY_F8
        edge_lo = lo[order][group_starts]
        edge_hi = hi[order][group_starts]

        rank = self.rank
        lower_first = rank[edge_lo] < rank[edge_hi]
        up_src = np.where(lower_first, edge_lo, edge_hi)
        up_dst = np.where(lower_first, edge_hi, edge_lo)

        def _csr(src: np.ndarray, dst: np.ndarray, wts: np.ndarray):
            order_ = np.argsort(src, kind="stable")
            ptr = np.zeros(n + 1, dtype=np.int64)
            if len(src):
                np.cumsum(np.bincount(src, minlength=n), out=ptr[1:])
            return ptr, dst[order_], wts[order_]

        self.up_indptr, self.up_indices, self.up_weights = _csr(
            up_src, up_dst, edge_w
        )
        self.down_indptr, self.down_indices, self.down_weights = _csr(
            up_dst, up_src, edge_w
        )

    def _init_runtime_state(self) -> None:
        self._tls = threading.local()
        self._edges_cache: dict[tuple[int, int], float] | None = None
        self._up_adj_cache: list[list[tuple[int, float]]] | None = None
        self._cache_meta = None  # set by repro.graph.cache on load/save

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.rank)

    @property
    def num_shortcuts(self) -> int:
        return len(self.shortcut_w)

    @property
    def kernels(self) -> "CHKernels":
        """A per-thread :class:`CHKernels` (buffer reuse = not shared)."""
        kern = getattr(self._tls, "kernels", None)
        if kern is None:
            kern = CHKernels(self)
            self._tls.kernels = kern
        return kern

    @property
    def edges(self) -> dict[tuple[int, int], float]:
        """Final undirected edge dict (originals + shortcuts), lazily
        built from the upward half — the old implementation's attribute,
        kept for :class:`~repro.knn.toain.ToainIndex`."""
        if self._edges_cache is None:
            n = self.num_nodes
            counts = np.diff(self.up_indptr)
            srcs = np.repeat(np.arange(n, dtype=np.int64), counts)
            lo = np.minimum(srcs, self.up_indices)
            hi = np.maximum(srcs, self.up_indices)
            self._edges_cache = dict(
                zip(
                    zip(lo.tolist(), hi.tolist()),
                    self.up_weights.tolist(),
                )
            )
        return self._edges_cache

    @property
    def up_adj(self) -> list[list[tuple[int, float]]]:
        """Upward adjacency lists ``v -> [(higher, w)]`` (old attribute)."""
        if self._up_adj_cache is None:
            n = self.num_nodes
            ptr = self.up_indptr.tolist()
            idx = self.up_indices.tolist()
            wts = self.up_weights.tolist()
            self._up_adj_cache = [
                list(zip(idx[ptr[v]:ptr[v + 1]], wts[ptr[v]:ptr[v + 1]]))
                for v in range(n)
            ]
        return self._up_adj_cache

    # ------------------------------------------------------------------
    # Pickling: a cache-backed hierarchy ships its ~100-byte token and
    # is re-memmapped on the other side; otherwise the plain state dict
    # travels (derived caches and thread-locals are dropped).
    # ------------------------------------------------------------------
    def __reduce__(self):
        meta = getattr(self, "_cache_meta", None)
        if meta is not None:
            from .cache import attach_cached_ch

            return (attach_cached_ch, (meta,))
        return (_rebuild_hierarchy, (self.__getstate__(),))

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        for transient in (
            "_tls", "_edges_cache", "_up_adj_cache", "_cache_meta",
        ):
            state.pop(transient, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._init_runtime_state()


class CHKernels:
    """Query kernels over one :class:`ContractionHierarchy`.

    Reuses buffers across calls (like :class:`CSRKernels`), so one
    instance must never be driven from two threads — get per-thread
    instances from :attr:`ContractionHierarchy.kernels`.

    Everything is joins over upward hub *labels* (see :meth:`label` —
    memoized DAG merges in rank order, LRU-bounded by bytes; the
    bounded :meth:`upward_sweep` is still ``CSRKernels.sssp`` over the
    upward CSR half):

    * ``point_to_point(s, t)`` — min over common hubs of the two
      labels (the classic CH up-up meeting, valid on undirected
      graphs).
    * ``topk_objects`` / ``knn_batch`` — object labels are bucketed by
      hub into one CSR with dense object slots, and a query is the
      source's label plus a vectorized bucket join (``np.minimum.at``
      into a num-objects-sized buffer), with the same settled-superset
      contract as the plain kernels.  First touch of a source pays its
      label construction; the cached steady state is what the routing
      cutoff should be calibrated against.
    """

    def __init__(
        self,
        ch: ContractionHierarchy,
        *,
        label_budget_bytes: int | None = None,
    ) -> None:
        self._ch = ch
        self._up = CSRKernels(
            ch.up_indptr,
            ch.up_indices,
            ch.up_weights,
            delta=dial_delta(ch.up_weights),
        )
        n = ch.num_nodes
        self._num_nodes = n
        #: node -> (hub nodes, hub distances) upward label cache, in
        #: LRU order, bounded by ``label_budget_bytes`` total bytes.
        self._labels: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = (
            OrderedDict()
        )
        self._label_bytes = 0
        self._label_budget = int(
            LABEL_CACHE_BYTES if label_budget_bytes is None
            else label_budget_bytes
        )
        static = getattr(ch, "_static_labels", None)
        if static is not None:
            (
                self._static_indptr,
                self._static_hubs,
                self._static_dists,
            ) = static
        else:
            self._static_indptr = None
            self._static_hubs = None
            self._static_dists = None
        # Bucket join state (rebuilt when the object-node set changes).
        self._bucket_key: bytes | None = None
        self._hub_indptr: np.ndarray | None = None
        self._hub_slots: np.ndarray | None = None
        self._hub_dists: np.ndarray | None = None
        #: The bucketed object nodes; bucket entries refer to them by
        #: dense slot so the join scatters into a num-objects-sized
        #: buffer instead of a num-nodes-sized one.
        self._obj_nodes: np.ndarray | None = None
        self._obj_dist: np.ndarray | None = None

    @property
    def ch(self) -> ContractionHierarchy:
        return self._ch

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def label_cache_bytes(self) -> int:
        """Bytes currently held by the LRU label cache (static labels
        from a graph cache are memmapped and not counted)."""
        return self._label_bytes

    @property
    def label_budget_bytes(self) -> int:
        return self._label_budget

    # ------------------------------------------------------------------
    # Sweeps and labels
    # ------------------------------------------------------------------
    def upward_sweep(
        self, source: int, max_distance: float = INFINITY
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bounded upward search: ``(hubs, dists)`` over the up-CSR."""
        return self._up.sssp(source, max_distance)

    def _static_label(
        self, node: int
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """The persisted label of ``node``, if the hierarchy carries a
        prebuilt core-label store covering it."""
        sp = self._static_indptr
        if sp is None:
            return None
        start = int(sp[node])
        end = int(sp[node + 1])
        if end <= start:
            return None
        return self._static_hubs[start:end], self._static_dists[start:end]

    def label(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """The cached upward hub label of ``node`` (treat as read-only).

        The upward graph is a DAG ordered by rank (every up-edge goes
        strictly rank-upward), so labels obey the hub-label recursion
        ``label(v) = min-merge({v: 0}, {label(u) + w(v, u) for up-edges
        (v, u)})``.  Computing them by memoized vectorized merges in
        descending-rank order replaces the per-call Dijkstra sweep, and
        — crucially — shares the merged ancestors across *all* queries:
        after warm-up only the low-rank vicinity of a fresh source is
        new work.  Distances are identical to the upward sweep's (sums
        over the same up-paths), so exactness guarantees are unchanged.

        Labels persisted in the graph cache (the high-rank core) are
        served from the static store; everything else lives in the LRU
        cache bounded by :attr:`label_budget_bytes`, with evictions and
        residency reported via the ``ch.label_evictions`` /
        ``ch.label_bytes`` kernel counters.
        """
        got = self._static_label(node)
        if got is not None:
            return got
        labels = self._labels
        cached = labels.get(node)
        if cached is not None:
            labels.move_to_end(node)
            return cached
        ch = self._ch
        indptr, indices, weights = (
            ch.up_indptr, ch.up_indices, ch.up_weights,
        )
        # Collect the un-labelled part of node's upward closure.
        stack = [node]
        pending = {node}
        while stack:
            v = stack.pop()
            for u in indices[indptr[v]:indptr[v + 1]].tolist():
                if u in pending or u in labels:
                    continue
                if self._static_label(u) is not None:
                    continue
                pending.add(u)
                stack.append(u)
        rank = ch.rank
        one_zero = np.zeros(1, dtype=np.float64)
        built_bytes = 0
        # Highest rank first, so every up-neighbor's label is ready.
        for v in sorted(pending, key=lambda x: -rank[x]):
            start, end = int(indptr[v]), int(indptr[v + 1])
            hub_parts = [np.array([v], dtype=np.int64)]
            dist_parts = [one_zero]
            for pos in range(start, end):
                u = int(indices[pos])
                got_u = labels.get(u)
                if got_u is not None:
                    labels.move_to_end(u)
                else:
                    got_u = self._static_label(u)
                hubs_u, dists_u = got_u
                hub_parts.append(hubs_u)
                dist_parts.append(dists_u + weights[pos])
            hubs = np.concatenate(hub_parts)
            dists = np.concatenate(dist_parts)
            order = np.lexsort((dists, hubs))
            hubs = hubs[order]
            dists = dists[order]
            keep = np.empty(len(hubs), dtype=bool)
            keep[0] = True
            np.not_equal(hubs[1:], hubs[:-1], out=keep[1:])
            entry = (hubs[keep], dists[keep])
            labels[v] = entry
            built_bytes += entry[0].nbytes + entry[1].nbytes
        self._label_bytes += built_bytes
        KERNEL_CALLS["ch.label_bytes"] += built_bytes
        # Evict cold labels past the budget; entries just built sit at
        # the LRU tail and are never the eviction victim.
        while (
            self._label_bytes > self._label_budget
            and len(labels) > len(pending)
        ):
            _, (old_hubs, old_dists) = labels.popitem(last=False)
            freed = old_hubs.nbytes + old_dists.nbytes
            self._label_bytes -= freed
            KERNEL_CALLS["ch.label_bytes"] -= freed
            KERNEL_CALLS["ch.label_evictions"] += 1
        return labels[node]

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def point_to_point(self, source: int, target: int) -> float:
        """Exact network distance via the up-up hub meeting (inf when
        unreachable)."""
        n = self._num_nodes
        for node in (source, target):
            if not 0 <= node < n:
                raise IndexError(
                    f"node {node} out of range for graph with {n} nodes"
                )
        if source == target:
            return 0.0
        s_nodes, s_dists = self.label(source)
        t_nodes, t_dists = self.label(target)
        common, s_idx, t_idx = np.intersect1d(
            s_nodes, t_nodes, assume_unique=True, return_indices=True
        )
        if common.size == 0:
            return INFINITY
        return float((s_dists[s_idx] + t_dists[t_idx]).min())

    def expander(self, source: int) -> "CHDistanceOracle":
        """A many-targets distance oracle from one source (IER's tool)."""
        return CHDistanceOracle(self, source)

    # ------------------------------------------------------------------
    # Object buckets (hub-label join)
    # ------------------------------------------------------------------
    def _ensure_buckets(self, object_counts: np.ndarray) -> bool:
        """(Re)build the hub CSR for the current object-node set.

        Returns False when there are no object nodes at all.
        """
        obj_nodes = np.flatnonzero(np.asarray(object_counts) > 0)
        key = obj_nodes.tobytes()
        if key == self._bucket_key:
            return bool(len(obj_nodes))
        if len(obj_nodes) == 0:
            self._bucket_key = key
            self._hub_indptr = None
            return False
        hub_parts: list[np.ndarray] = []
        slot_parts: list[np.ndarray] = []
        dist_parts: list[np.ndarray] = []
        for slot, node in enumerate(obj_nodes.tolist()):
            hubs, dists = self.label(node)
            hub_parts.append(hubs)
            slot_parts.append(np.full(len(hubs), slot, dtype=np.int64))
            dist_parts.append(dists)
        hubs_all = np.concatenate(hub_parts)
        order = np.argsort(hubs_all, kind="stable")
        self._hub_indptr = np.zeros(self._num_nodes + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(hubs_all, minlength=self._num_nodes),
            out=self._hub_indptr[1:],
        )
        self._hub_slots = np.concatenate(slot_parts)[order]
        self._hub_dists = np.concatenate(dist_parts)[order]
        self._obj_nodes = obj_nodes
        self._obj_dist = np.empty(len(obj_nodes), dtype=np.float64)
        self._bucket_key = key
        return True

    def _object_distances(
        self, source: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact distances to every reachable object node: the source's
        hub label joined against the object buckets."""
        s_nodes, s_dists = self.label(source)
        hub_indptr = self._hub_indptr
        starts = hub_indptr[s_nodes]
        counts = hub_indptr[s_nodes + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return _EMPTY_I8, _EMPTY_F8
        cum = np.cumsum(counts)
        entry_ids = np.arange(total, dtype=np.int64) + np.repeat(
            starts - (cum - counts), counts
        )
        cand_slots = self._hub_slots[entry_ids]
        cand_dists = self._hub_dists[entry_ids] + np.repeat(s_dists, counts)
        dist = self._obj_dist
        dist.fill(np.inf)
        np.minimum.at(dist, cand_slots, cand_dists)
        reached = np.isfinite(dist)
        return self._obj_nodes[reached], dist[reached]

    def topk_objects(
        self, source: int, object_counts: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """CH-backed top-k: same contract as ``CSRKernels.topk_objects``
        — every object node at distance <= the k-th object distance,
        with exact distances (bit-identical on integral weights)."""
        if k <= 0:
            return _EMPTY_I8, _EMPTY_F8
        if not self._ensure_buckets(object_counts):
            # Still validate the source like the plain kernel would.
            if not 0 <= source < self._num_nodes:
                raise IndexError(
                    f"node {source} out of range for graph with "
                    f"{self._num_nodes} nodes"
                )
            return _EMPTY_I8, _EMPTY_F8
        nodes, dists = self._object_distances(source)
        if nodes.size == 0:
            return nodes, dists
        order = np.argsort(dists, kind="stable")
        cumulative = np.cumsum(np.asarray(object_counts)[nodes[order]])
        if int(cumulative[-1]) <= k:
            kth = dists[order[-1]]
        else:
            kth = dists[order[int(np.searchsorted(cumulative, k))]]
        keep = dists <= kth
        return nodes[keep], dists[keep]

    def knn_batch(
        self,
        sources: Sequence[int],
        ks: Sequence[int],
        object_counts: np.ndarray,
        *,
        group_size: int = 16,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Batched :meth:`topk_objects`, aligned with the inputs.

        ``group_size`` is accepted for interface parity with
        ``CSRKernels.knn_batch`` but unused — each distinct source is
        already a single sweep + join here.  Duplicate sources collapse
        to one computation (served with the largest requested ``k``)
        and may share result arrays; treat results as read-only.
        """
        del group_size
        src = np.asarray(sources, dtype=np.int64)
        kreq = np.asarray(ks, dtype=np.int64)
        if src.shape != kreq.shape or src.ndim != 1:
            raise ValueError("sources and ks must be 1-D and equal length")
        if src.size == 0:
            return []
        if src.min() < 0 or src.max() >= self._num_nodes:
            raise IndexError(
                f"source out of range for graph with {self._num_nodes} nodes"
            )
        unique, inverse = np.unique(src, return_inverse=True)
        kmax = np.zeros(unique.shape, dtype=np.int64)
        np.maximum.at(kmax, inverse, kreq)
        per_unique = [
            self.topk_objects(int(node), object_counts, int(k))
            for node, k in zip(unique.tolist(), kmax.tolist())
        ]
        return [per_unique[index] for index in inverse.tolist()]


def build_core_labels(
    ch: ContractionHierarchy, core: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Hub labels for the ``core`` highest-ranked nodes, as CSR arrays
    indexed by node id (``label_indptr``, ``hubs``, ``dists``).

    Every up-edge goes strictly rank-upward, so the top-``core`` rank
    set is closed under upward closure and its labels are
    self-contained — exactly the slice worth persisting in a graph
    cache: the high-rank core is shared by every query, while low-rank
    vicinities are cheap to rebuild and workload-dependent.  Nodes
    outside the core get an empty slice.  Distances are the same merges
    :meth:`CHKernels.label` computes, so exactness is unchanged.
    """
    n = ch.num_nodes
    core = max(0, min(int(core), n))
    label_indptr = np.zeros(n + 1, dtype=np.int64)
    if core == 0:
        return label_indptr, _EMPTY_I8, _EMPTY_F8
    indptr, indices, weights = ch.up_indptr, ch.up_indices, ch.up_weights
    by_rank = np.argsort(ch.rank, kind="stable")
    nodes = by_rank[n - core:]
    labels: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    one_zero = np.zeros(1, dtype=np.float64)
    for v in nodes[::-1].tolist():  # descending rank
        start, end = int(indptr[v]), int(indptr[v + 1])
        hub_parts = [np.array([v], dtype=np.int64)]
        dist_parts = [one_zero]
        for pos in range(start, end):
            u = int(indices[pos])
            hubs_u, dists_u = labels[u]
            hub_parts.append(hubs_u)
            dist_parts.append(dists_u + weights[pos])
        hubs = np.concatenate(hub_parts)
        dists = np.concatenate(dist_parts)
        order = np.lexsort((dists, hubs))
        hubs = hubs[order]
        dists = dists[order]
        keep = np.empty(len(hubs), dtype=bool)
        keep[0] = True
        np.not_equal(hubs[1:], hubs[:-1], out=keep[1:])
        labels[v] = (hubs[keep], dists[keep])
    counts = np.zeros(n, dtype=np.int64)
    for v, (hubs, _) in labels.items():
        counts[v] = len(hubs)
    np.cumsum(counts, out=label_indptr[1:])
    total = int(label_indptr[-1])
    hubs_out = np.empty(total, dtype=np.int64)
    dists_out = np.empty(total, dtype=np.float64)
    for v, (hubs, dists) in labels.items():
        start = int(label_indptr[v])
        hubs_out[start:start + len(hubs)] = hubs
        dists_out[start:start + len(hubs)] = dists
    return label_indptr, hubs_out, dists_out


class CHDistanceOracle:
    """Exact distances from one source to many targets via hub labels.

    The CH analogue of :class:`~repro.graph.kernels.IncrementalSSSP`
    (IER's verification tool): the source's upward label is computed
    once, and each ``distance_to`` joins it against the target's cached
    label — no expansion radius involved, so far-away candidates cost
    the same as near ones.
    """

    def __init__(self, kernels: CHKernels, source: int) -> None:
        n = kernels.num_nodes
        if not 0 <= source < n:
            raise IndexError(
                f"node {source} out of range for graph with {n} nodes"
            )
        self._kernels = kernels
        self._source = source
        hubs, dists = kernels.label(source)
        self._map = dict(zip(hubs.tolist(), dists.tolist()))

    def distance_to(self, target: int) -> float:
        """Exact network distance to ``target`` (``inf`` if unreachable)."""
        if target == self._source:
            return 0.0
        hubs, dists = self._kernels.label(target)
        src_map = self._map
        best = INFINITY
        for hub, d in zip(hubs.tolist(), dists.tolist()):
            ds = src_map.get(hub)
            if ds is not None and ds + d < best:
                best = ds + d
        return best


def calibrate_ch_cutoff(
    network: "RoadNetwork",
    ch: ContractionHierarchy | None = None,
    *,
    samples: int = 6,
    num_objects: int = 32,
    k: int = 4,
    seed: int = 0,
) -> float:
    """Measure the settled-node count past which the CH path wins.

    The plain kernel's cost is proportional to the number of nodes it
    settles (≈ ``k * num_nodes / num_objects`` for uniform objects); a
    CH query costs roughly a constant (one upward sweep + bucket join).
    This times both on the actual graph and returns their crossover as
    an *expected settled node count* — pass it as ``ch_cutoff`` to
    ``DijkstraKNN``/``IERKNN`` (which now run it themselves on first
    use when no explicit cutoff is given).  Deliberately rough: it
    steers routing, not correctness (both sides are exact).
    """
    ch = ch or ContractionHierarchy(network)
    n = network.num_nodes
    if n == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, n, size=max(samples, 1))
    counts = np.zeros(n, dtype=np.int32)
    np.add.at(counts, rng.integers(0, n, size=min(num_objects, n)), 1)
    perf = time.perf_counter

    kern = network.kernels
    kern.sssp(int(sources[0]))  # warm buffers
    t0 = perf()
    for source in sources:
        kern.sssp(int(source))
    per_settled = (perf() - t0) / len(sources) / n

    chk = ch.kernels
    chk.topk_objects(int(sources[0]), counts, k)  # warm labels/buckets
    t0 = perf()
    for source in sources:
        chk.topk_objects(int(source), counts, k)
    per_ch_query = (perf() - t0) / len(sources)

    if per_settled <= 0:
        return float(n)
    return per_ch_query / per_settled

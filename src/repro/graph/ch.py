"""Vectorized contraction-hierarchy engine over CSR road networks.

Extracted from :mod:`repro.knn.toain` (which now adapts over this
module) and rebuilt array-first, in the spirit of SALT's "one shared
hierarchy serving every query family":

* :class:`ContractionHierarchy` contracts nodes in lazy edge-difference
  order with bounded witness searches (batched: one multi-target
  Dijkstra per neighbor of the contracted node instead of one per
  pair), and emits *arrays* — a ``rank`` vector, the shortcut triples,
  and the final edge set split into **upward** and **downward** CSR
  halves (every undirected edge/shortcut becomes one arc from its
  lower-ranked to its higher-ranked endpoint, and the reverse).
* :class:`CHKernels` runs queries on those arrays.  The key reuse: the
  delta-stepping :class:`~repro.graph.kernels.CSRKernels` never assumes
  a symmetric CSR, so a private instance over the upward half *is* the
  vectorized bounded upward sweep.  On top of it sit
  :meth:`~CHKernels.point_to_point` (two upward sweeps + a hub join),
  hub-label object buckets, and CH-backed
  :meth:`~CHKernels.topk_objects` / :meth:`~CHKernels.knn_batch` with
  the same contract as the plain kernels — which is what lets
  ``DijkstraKNN``/``IERKNN`` route long-range queries here untouched.

Exactness and bit-identity
--------------------------
CH distances are sums over precomputed shortcut weights, and float
addition is not associative — on arbitrary float weights a CH distance
can differ from the Dijkstra distance in the last ulp.  On
integer-weight networks (all DIMACS road graphs; our generated grids)
every path sum is exactly representable in float64, so CH results are
*bit-identical* to the kernels.  :attr:`ContractionHierarchy.exact`
records this (the same integral test as
:func:`~repro.graph.kernels.dial_delta`), and the kNN solutions only
auto-route to the CH path when it is set.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .kernels import CSRKernels, dial_delta

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .road_network import RoadNetwork

__all__ = [
    "CHKernels",
    "CHDistanceOracle",
    "ContractionHierarchy",
    "WITNESS_SETTLE_LIMIT",
    "calibrate_ch_cutoff",
]

INFINITY = float("inf")

#: Witness-search effort bound during construction.  Hitting the bound
#: conservatively adds the shortcut, which preserves correctness.
WITNESS_SETTLE_LIMIT = 60

_EMPTY_I8 = np.empty(0, dtype=np.int64)
_EMPTY_F8 = np.empty(0, dtype=np.float64)

#: Soft cap on the total cached hub-label entries per :class:`CHKernels`
#: (an entry is one ``(hub, distance)`` pair, ~16 bytes).  Least-
#: recently-used labels are evicted past it; the hot high-rank core that
#: every query traverses stays resident.
LABEL_CACHE_ENTRIES = 8_000_000


class ContractionHierarchy:
    """A full contraction hierarchy over a road network, as arrays.

    Nodes are contracted in lazy edge-difference order; shortcuts keep
    shortest distances intact among uncontracted nodes.  The outputs:

    ``rank``
        int64 array; ``rank[v]`` is v's contraction order (0 = first).
    ``up_indptr`` / ``up_indices`` / ``up_weights``
        CSR of the *upward* graph: one arc per final undirected edge or
        shortcut, from its lower-ranked to its higher-ranked endpoint.
    ``down_indptr`` / ``down_indices`` / ``down_weights``
        The reverse (downward) half.
    ``shortcut_u`` / ``shortcut_v`` / ``shortcut_w``
        The shortcut triples that were added (diagnostics/size checks).
    ``exact``
        True when all edge weights are integral, i.e. CH sums are
        bit-identical to Dijkstra distances (see module docstring).

    The dict/list views of the old pure-Python implementation
    (:attr:`edges`, :attr:`up_adj`) are kept as lazily-built cached
    properties for :class:`repro.knn.toain.ToainIndex` compatibility.
    """

    def __init__(self, network: "RoadNetwork", seed: int = 0) -> None:
        self.network = network
        n = network.num_nodes
        indptr, indices, weights = network.csr_arrays
        self.exact = bool(
            len(weights) == 0
            or np.equal(np.floor(weights), weights).all()
        )

        # Working adjacency for contraction: dict-of-dicts, built from
        # the arrays (never through the guarded list mirrors).  The
        # build is O(n + m) Python either way — CH construction is the
        # one deliberately scalar stage of this module.
        starts = indptr.tolist()
        targets = indices.tolist()
        wts = weights.tolist()
        adjacency: list[dict[int, float]] = [dict() for _ in range(n)]
        for u in range(n):
            row = adjacency[u]
            for idx in range(starts[u], starts[u + 1]):
                row[targets[idx]] = wts[idx]

        rank = [0] * n
        contracted = [False] * n
        deleted_neighbors = [0] * n
        sc_u: list[int] = []
        sc_v: list[int] = []
        sc_w: list[float] = []

        def priority(v: int) -> float:
            degree = len(adjacency[v])
            needed = degree * (degree - 1) // 2
            return needed - degree + 0.7 * deleted_neighbors[v]

        heap: list[tuple[float, int]] = [(priority(v), v) for v in range(n)]
        heap.sort()
        next_rank = 0
        while heap:
            _, v = heappop(heap)
            if contracted[v]:
                continue
            fresh = priority(v)
            if heap and fresh > heap[0][0]:
                heappush(heap, (fresh, v))
                continue
            rank[v] = next_rank
            next_rank += 1
            contracted[v] = True
            for u, w, weight in self._shortcuts_for(adjacency, v):
                prior = adjacency[u].get(w)
                if prior is None or weight < prior:
                    adjacency[u][w] = weight
                    adjacency[w][u] = weight
                sc_u.append(u)
                sc_v.append(w)
                sc_w.append(weight)
            for u in adjacency[v]:
                deleted_neighbors[u] += 1
                adjacency[u].pop(v, None)
            adjacency[v].clear()

        self.rank = np.asarray(rank, dtype=np.int64)
        self.shortcut_u = np.asarray(sc_u, dtype=np.int64)
        self.shortcut_v = np.asarray(sc_v, dtype=np.int64)
        self.shortcut_w = np.asarray(sc_w, dtype=np.float64)
        self._build_halves(indptr, indices, weights)
        self._init_runtime_state()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _shortcuts_for(
        adjacency: list[dict[int, float]], v: int
    ) -> list[tuple[int, int, float]]:
        """Shortcuts required when removing ``v``.

        One *multi-target* bounded witness search per neighbor ``u``
        replaces the classic per-pair search: a single Dijkstra from
        ``u`` (avoiding ``v``) tries to settle every other neighbor
        ``w`` within its ``u→v→w`` bound.  Hitting the settle limit
        leaves the remaining targets shortcut-ed, which is conservative
        and correct.
        """
        neighbors = list(adjacency[v])
        shortcuts: list[tuple[int, int, float]] = []
        for i, u in enumerate(neighbors):
            du = adjacency[v][u]
            through = {w: du + adjacency[v][w] for w in neighbors[i + 1:]}
            if not through:
                continue
            reached = ContractionHierarchy._witness_multi(
                adjacency, u, through, v
            )
            for w, bound in through.items():
                if reached.get(w, INFINITY) > bound:
                    shortcuts.append((u, w, bound))
        return shortcuts

    @staticmethod
    def _witness_multi(
        adjacency: list[dict[int, float]],
        source: int,
        through: dict[int, float],
        skip: int,
    ) -> dict[int, float]:
        """Bounded Dijkstra from ``source`` avoiding ``skip``.

        Returns settled distances for the nodes in ``through`` (others
        may appear; missing means "no witness found within budget").
        """
        bound = max(through.values())
        dist: dict[int, float] = {source: 0.0}
        heap = [(0.0, source)]
        remaining = len(through)
        settled = 0
        done: set[int] = set()
        while heap and settled < WITNESS_SETTLE_LIMIT and remaining > 0:
            d, node = heappop(heap)
            if d > dist.get(node, INFINITY):
                continue
            if d > bound:
                break
            settled += 1
            if node in through and node not in done:
                done.add(node)
                remaining -= 1
            for nxt, weight in adjacency[node].items():
                if nxt == skip:
                    continue
                nd = d + weight
                if nd <= bound and nd < dist.get(nxt, INFINITY):
                    dist[nxt] = nd
                    heappush(heap, (nd, nxt))
        return dist

    def _build_halves(
        self, indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray
    ) -> None:
        """Dedup originals + shortcuts, split into up/down CSR halves."""
        n = len(self.rank)
        counts = np.diff(indptr.astype(np.int64))
        srcs = np.repeat(np.arange(n, dtype=np.int64), counts)
        half = srcs < indices  # each undirected edge once
        base_u = srcs[half]
        base_v = indices[half].astype(np.int64)
        base_w = weights[half]
        all_u = np.concatenate([base_u, self.shortcut_u])
        all_v = np.concatenate([base_v, self.shortcut_v])
        all_w = np.concatenate([base_w, self.shortcut_w])
        lo = np.minimum(all_u, all_v)
        hi = np.maximum(all_u, all_v)
        key = lo * max(n, 1) + hi
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        first = np.empty(len(key_sorted), dtype=bool)
        if len(key_sorted):
            first[0] = True
            np.not_equal(key_sorted[1:], key_sorted[:-1], out=first[1:])
        group_starts = np.flatnonzero(first)
        if len(group_starts):
            edge_w = np.minimum.reduceat(all_w[order], group_starts)
        else:
            edge_w = _EMPTY_F8
        edge_lo = lo[order][group_starts]
        edge_hi = hi[order][group_starts]

        rank = self.rank
        lower_first = rank[edge_lo] < rank[edge_hi]
        up_src = np.where(lower_first, edge_lo, edge_hi)
        up_dst = np.where(lower_first, edge_hi, edge_lo)

        def _csr(src: np.ndarray, dst: np.ndarray, wts: np.ndarray):
            order_ = np.argsort(src, kind="stable")
            ptr = np.zeros(n + 1, dtype=np.int64)
            if len(src):
                np.cumsum(np.bincount(src, minlength=n), out=ptr[1:])
            return ptr, dst[order_], wts[order_]

        self.up_indptr, self.up_indices, self.up_weights = _csr(
            up_src, up_dst, edge_w
        )
        self.down_indptr, self.down_indices, self.down_weights = _csr(
            up_dst, up_src, edge_w
        )

    def _init_runtime_state(self) -> None:
        self._tls = threading.local()
        self._edges_cache: dict[tuple[int, int], float] | None = None
        self._up_adj_cache: list[list[tuple[int, float]]] | None = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.rank)

    @property
    def num_shortcuts(self) -> int:
        return len(self.shortcut_w)

    @property
    def kernels(self) -> "CHKernels":
        """A per-thread :class:`CHKernels` (buffer reuse = not shared)."""
        kern = getattr(self._tls, "kernels", None)
        if kern is None:
            kern = CHKernels(self)
            self._tls.kernels = kern
        return kern

    @property
    def edges(self) -> dict[tuple[int, int], float]:
        """Final undirected edge dict (originals + shortcuts), lazily
        built from the upward half — the old implementation's attribute,
        kept for :class:`~repro.knn.toain.ToainIndex`."""
        if self._edges_cache is None:
            n = self.num_nodes
            counts = np.diff(self.up_indptr)
            srcs = np.repeat(np.arange(n, dtype=np.int64), counts)
            lo = np.minimum(srcs, self.up_indices)
            hi = np.maximum(srcs, self.up_indices)
            self._edges_cache = dict(
                zip(
                    zip(lo.tolist(), hi.tolist()),
                    self.up_weights.tolist(),
                )
            )
        return self._edges_cache

    @property
    def up_adj(self) -> list[list[tuple[int, float]]]:
        """Upward adjacency lists ``v -> [(higher, w)]`` (old attribute)."""
        if self._up_adj_cache is None:
            n = self.num_nodes
            ptr = self.up_indptr.tolist()
            idx = self.up_indices.tolist()
            wts = self.up_weights.tolist()
            self._up_adj_cache = [
                list(zip(idx[ptr[v]:ptr[v + 1]], wts[ptr[v]:ptr[v + 1]]))
                for v in range(n)
            ]
        return self._up_adj_cache

    # ------------------------------------------------------------------
    # Pickling (derived caches and thread-locals are dropped)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        for transient in ("_tls", "_edges_cache", "_up_adj_cache"):
            state.pop(transient, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._init_runtime_state()


class CHKernels:
    """Query kernels over one :class:`ContractionHierarchy`.

    Reuses buffers across calls (like :class:`CSRKernels`), so one
    instance must never be driven from two threads — get per-thread
    instances from :attr:`ContractionHierarchy.kernels`.

    Everything is joins over upward hub *labels* (see :meth:`label` —
    memoized DAG merges in rank order, LRU-bounded; the bounded
    :meth:`upward_sweep` is still ``CSRKernels.sssp`` over the upward
    CSR half):

    * ``point_to_point(s, t)`` — min over common hubs of the two
      labels (the classic CH up-up meeting, valid on undirected
      graphs).
    * ``topk_objects`` / ``knn_batch`` — object labels are bucketed by
      hub into one CSR with dense object slots, and a query is the
      source's label plus a vectorized bucket join (``np.minimum.at``
      into a num-objects-sized buffer), with the same settled-superset
      contract as the plain kernels.  First touch of a source pays its
      label construction; the cached steady state is what the routing
      cutoff should be calibrated against.
    """

    def __init__(self, ch: ContractionHierarchy) -> None:
        self._ch = ch
        self._up = CSRKernels(
            ch.up_indptr,
            ch.up_indices,
            ch.up_weights,
            delta=dial_delta(ch.up_weights),
        )
        n = ch.num_nodes
        self._num_nodes = n
        #: node -> (hub nodes, hub distances) upward label cache, in
        #: LRU order, bounded by ``label_cache_entries`` total entries.
        self._labels: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = (
            OrderedDict()
        )
        self._label_entries = 0
        self._label_cache_entries = LABEL_CACHE_ENTRIES
        # Bucket join state (rebuilt when the object-node set changes).
        self._bucket_key: bytes | None = None
        self._hub_indptr: np.ndarray | None = None
        self._hub_slots: np.ndarray | None = None
        self._hub_dists: np.ndarray | None = None
        #: The bucketed object nodes; bucket entries refer to them by
        #: dense slot so the join scatters into a num-objects-sized
        #: buffer instead of a num-nodes-sized one.
        self._obj_nodes: np.ndarray | None = None
        self._obj_dist: np.ndarray | None = None

    @property
    def ch(self) -> ContractionHierarchy:
        return self._ch

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    # ------------------------------------------------------------------
    # Sweeps and labels
    # ------------------------------------------------------------------
    def upward_sweep(
        self, source: int, max_distance: float = INFINITY
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bounded upward search: ``(hubs, dists)`` over the up-CSR."""
        return self._up.sssp(source, max_distance)

    def label(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """The cached upward hub label of ``node`` (treat as read-only).

        The upward graph is a DAG ordered by rank (every up-edge goes
        strictly rank-upward), so labels obey the hub-label recursion
        ``label(v) = min-merge({v: 0}, {label(u) + w(v, u) for up-edges
        (v, u)})``.  Computing them by memoized vectorized merges in
        descending-rank order replaces the per-call Dijkstra sweep, and
        — crucially — shares the merged ancestors across *all* queries:
        after warm-up only the low-rank vicinity of a fresh source is
        new work.  Distances are identical to the upward sweep's (sums
        over the same up-paths), so exactness guarantees are unchanged.
        """
        labels = self._labels
        cached = labels.get(node)
        if cached is not None:
            labels.move_to_end(node)
            return cached
        ch = self._ch
        indptr, indices, weights = (
            ch.up_indptr, ch.up_indices, ch.up_weights,
        )
        # Collect the un-labelled part of node's upward closure.
        stack = [node]
        pending = {node}
        while stack:
            v = stack.pop()
            for u in indices[indptr[v]:indptr[v + 1]].tolist():
                if u not in pending and u not in labels:
                    pending.add(u)
                    stack.append(u)
        rank = ch.rank
        one_zero = np.zeros(1, dtype=np.float64)
        # Highest rank first, so every up-neighbor's label is ready.
        for v in sorted(pending, key=lambda x: -rank[x]):
            start, end = int(indptr[v]), int(indptr[v + 1])
            hub_parts = [np.array([v], dtype=np.int64)]
            dist_parts = [one_zero]
            for pos in range(start, end):
                u = int(indices[pos])
                hubs_u, dists_u = labels[u]
                labels.move_to_end(u)
                hub_parts.append(hubs_u)
                dist_parts.append(dists_u + weights[pos])
            hubs = np.concatenate(hub_parts)
            dists = np.concatenate(dist_parts)
            order = np.lexsort((dists, hubs))
            hubs = hubs[order]
            dists = dists[order]
            keep = np.empty(len(hubs), dtype=bool)
            keep[0] = True
            np.not_equal(hubs[1:], hubs[:-1], out=keep[1:])
            entry = (hubs[keep], dists[keep])
            labels[v] = entry
            self._label_entries += len(entry[0])
        # Evict cold labels past the budget; entries just built sit at
        # the LRU tail and are never the eviction victim.
        while (
            self._label_entries > self._label_cache_entries
            and len(labels) > len(pending)
        ):
            _, (old_hubs, _) = labels.popitem(last=False)
            self._label_entries -= len(old_hubs)
        return labels[node]

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def point_to_point(self, source: int, target: int) -> float:
        """Exact network distance via the up-up hub meeting (inf when
        unreachable)."""
        n = self._num_nodes
        for node in (source, target):
            if not 0 <= node < n:
                raise IndexError(
                    f"node {node} out of range for graph with {n} nodes"
                )
        if source == target:
            return 0.0
        s_nodes, s_dists = self.label(source)
        t_nodes, t_dists = self.label(target)
        common, s_idx, t_idx = np.intersect1d(
            s_nodes, t_nodes, assume_unique=True, return_indices=True
        )
        if common.size == 0:
            return INFINITY
        return float((s_dists[s_idx] + t_dists[t_idx]).min())

    def expander(self, source: int) -> "CHDistanceOracle":
        """A many-targets distance oracle from one source (IER's tool)."""
        return CHDistanceOracle(self, source)

    # ------------------------------------------------------------------
    # Object buckets (hub-label join)
    # ------------------------------------------------------------------
    def _ensure_buckets(self, object_counts: np.ndarray) -> bool:
        """(Re)build the hub CSR for the current object-node set.

        Returns False when there are no object nodes at all.
        """
        obj_nodes = np.flatnonzero(np.asarray(object_counts) > 0)
        key = obj_nodes.tobytes()
        if key == self._bucket_key:
            return bool(len(obj_nodes))
        if len(obj_nodes) == 0:
            self._bucket_key = key
            self._hub_indptr = None
            return False
        hub_parts: list[np.ndarray] = []
        slot_parts: list[np.ndarray] = []
        dist_parts: list[np.ndarray] = []
        for slot, node in enumerate(obj_nodes.tolist()):
            hubs, dists = self.label(node)
            hub_parts.append(hubs)
            slot_parts.append(np.full(len(hubs), slot, dtype=np.int64))
            dist_parts.append(dists)
        hubs_all = np.concatenate(hub_parts)
        order = np.argsort(hubs_all, kind="stable")
        self._hub_indptr = np.zeros(self._num_nodes + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(hubs_all, minlength=self._num_nodes),
            out=self._hub_indptr[1:],
        )
        self._hub_slots = np.concatenate(slot_parts)[order]
        self._hub_dists = np.concatenate(dist_parts)[order]
        self._obj_nodes = obj_nodes
        self._obj_dist = np.empty(len(obj_nodes), dtype=np.float64)
        self._bucket_key = key
        return True

    def _object_distances(
        self, source: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact distances to every reachable object node: the source's
        hub label joined against the object buckets."""
        s_nodes, s_dists = self.label(source)
        hub_indptr = self._hub_indptr
        starts = hub_indptr[s_nodes]
        counts = hub_indptr[s_nodes + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return _EMPTY_I8, _EMPTY_F8
        cum = np.cumsum(counts)
        entry_ids = np.arange(total, dtype=np.int64) + np.repeat(
            starts - (cum - counts), counts
        )
        cand_slots = self._hub_slots[entry_ids]
        cand_dists = self._hub_dists[entry_ids] + np.repeat(s_dists, counts)
        dist = self._obj_dist
        dist.fill(np.inf)
        np.minimum.at(dist, cand_slots, cand_dists)
        reached = np.isfinite(dist)
        return self._obj_nodes[reached], dist[reached]

    def topk_objects(
        self, source: int, object_counts: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """CH-backed top-k: same contract as ``CSRKernels.topk_objects``
        — every object node at distance <= the k-th object distance,
        with exact distances (bit-identical on integral weights)."""
        if k <= 0:
            return _EMPTY_I8, _EMPTY_F8
        if not self._ensure_buckets(object_counts):
            # Still validate the source like the plain kernel would.
            if not 0 <= source < self._num_nodes:
                raise IndexError(
                    f"node {source} out of range for graph with "
                    f"{self._num_nodes} nodes"
                )
            return _EMPTY_I8, _EMPTY_F8
        nodes, dists = self._object_distances(source)
        if nodes.size == 0:
            return nodes, dists
        order = np.argsort(dists, kind="stable")
        cumulative = np.cumsum(np.asarray(object_counts)[nodes[order]])
        if int(cumulative[-1]) <= k:
            kth = dists[order[-1]]
        else:
            kth = dists[order[int(np.searchsorted(cumulative, k))]]
        keep = dists <= kth
        return nodes[keep], dists[keep]

    def knn_batch(
        self,
        sources: Sequence[int],
        ks: Sequence[int],
        object_counts: np.ndarray,
        *,
        group_size: int = 16,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Batched :meth:`topk_objects`, aligned with the inputs.

        ``group_size`` is accepted for interface parity with
        ``CSRKernels.knn_batch`` but unused — each distinct source is
        already a single sweep + join here.  Duplicate sources collapse
        to one computation (served with the largest requested ``k``)
        and may share result arrays; treat results as read-only.
        """
        del group_size
        src = np.asarray(sources, dtype=np.int64)
        kreq = np.asarray(ks, dtype=np.int64)
        if src.shape != kreq.shape or src.ndim != 1:
            raise ValueError("sources and ks must be 1-D and equal length")
        if src.size == 0:
            return []
        if src.min() < 0 or src.max() >= self._num_nodes:
            raise IndexError(
                f"source out of range for graph with {self._num_nodes} nodes"
            )
        unique, inverse = np.unique(src, return_inverse=True)
        kmax = np.zeros(unique.shape, dtype=np.int64)
        np.maximum.at(kmax, inverse, kreq)
        per_unique = [
            self.topk_objects(int(node), object_counts, int(k))
            for node, k in zip(unique.tolist(), kmax.tolist())
        ]
        return [per_unique[index] for index in inverse.tolist()]


class CHDistanceOracle:
    """Exact distances from one source to many targets via hub labels.

    The CH analogue of :class:`~repro.graph.kernels.IncrementalSSSP`
    (IER's verification tool): the source's upward label is computed
    once, and each ``distance_to`` joins it against the target's cached
    label — no expansion radius involved, so far-away candidates cost
    the same as near ones.
    """

    def __init__(self, kernels: CHKernels, source: int) -> None:
        n = kernels.num_nodes
        if not 0 <= source < n:
            raise IndexError(
                f"node {source} out of range for graph with {n} nodes"
            )
        self._kernels = kernels
        self._source = source
        hubs, dists = kernels.label(source)
        self._map = dict(zip(hubs.tolist(), dists.tolist()))

    def distance_to(self, target: int) -> float:
        """Exact network distance to ``target`` (``inf`` if unreachable)."""
        if target == self._source:
            return 0.0
        hubs, dists = self._kernels.label(target)
        src_map = self._map
        best = INFINITY
        for hub, d in zip(hubs.tolist(), dists.tolist()):
            ds = src_map.get(hub)
            if ds is not None and ds + d < best:
                best = ds + d
        return best


def calibrate_ch_cutoff(
    network: "RoadNetwork",
    ch: ContractionHierarchy | None = None,
    *,
    samples: int = 6,
    num_objects: int = 32,
    k: int = 4,
    seed: int = 0,
) -> float:
    """Measure the settled-node count past which the CH path wins.

    The plain kernel's cost is proportional to the number of nodes it
    settles (≈ ``k * num_nodes / num_objects`` for uniform objects); a
    CH query costs roughly a constant (one upward sweep + bucket join).
    This times both on the actual graph and returns their crossover as
    an *expected settled node count* — pass it as ``ch_cutoff`` to
    ``DijkstraKNN``/``IERKNN``.  Deliberately rough: it steers routing,
    not correctness (both sides are exact).
    """
    ch = ch or ContractionHierarchy(network)
    n = network.num_nodes
    if n == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, n, size=max(samples, 1))
    counts = np.zeros(n, dtype=np.int32)
    np.add.at(counts, rng.integers(0, n, size=min(num_objects, n)), 1)
    perf = time.perf_counter

    kern = network.kernels
    kern.sssp(int(sources[0]))  # warm buffers
    t0 = perf()
    for source in sources:
        kern.sssp(int(source))
    per_settled = (perf() - t0) / len(sources) / n

    chk = ch.kernels
    chk.topk_objects(int(sources[0]), counts, k)  # warm labels/buckets
    t0 = perf()
    for source in sources:
        chk.topk_objects(int(source), counts, k)
    per_ch_query = (perf() - t0) / len(sources)

    if per_settled <= 0:
        return float(n)
    return per_ch_query / per_settled

"""Vectorized CSR graph kernels (bucketed Dijkstra over numpy arrays).

Every kNN solution in this repro bottoms out in Dijkstra expansion; the
classic engines in :mod:`repro.graph.shortest_path` run a pure-Python
``heapq`` loop that pays interpreter overhead per *edge*.  The kernels
here pay it per *bucket*: a delta-stepping search settles one distance
window ``[pivot, pivot + delta)`` at a time, relaxing every outgoing
edge of the window's frontier in a handful of numpy operations
(``np.repeat`` gather, ``np.minimum.at`` scatter-min).  On road
networks — bounded degree, weights in a narrow band — this turns the
per-edge cost into a per-window cost and yields order-of-magnitude
speedups on large graphs (see ``benchmarks/bench_knn_kernels.py``).

Exactness: within a window the kernel iterates relaxation to a
fixpoint before declaring the window settled, so results are
*bit-for-bit identical* to the ``heapq`` engines — every settled
distance is the same float minimum over the same candidate sums.  The
property suite (``tests/test_kernels.py``) pins this, including
tie-breaking, disconnected components, and the bounded/multi-source
variants.

Buffer-reuse contract
---------------------
A :class:`CSRKernels` instance preallocates its distance/owner/settled
buffers once and reuses them across calls (resetting only the entries
the previous search touched).  Consequently an instance is **not
thread-safe**: use :attr:`repro.graph.RoadNetwork.kernels`, which hands
each thread its own instance over the same shared arrays.  Results
returned to callers are fresh arrays, never views into the buffers.

Dial mode
---------
When every weight is an integer (or, generally, when ``delta`` does not
exceed the minimum edge weight), each window can be settled in a single
relaxation sweep — the classic Dial bucket queue.  :func:`dial_delta`
picks that delta for integer-weight networks; the default delta (4x
the mean edge weight) trades a little re-relaxation for far fewer
windows, which measures fastest across sparse/dense/bounded workloads
on the float-weight networks our generators produce.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

import numpy as np

__all__ = ["KERNEL_CALLS", "CSRKernels", "IncrementalSSSP", "dial_delta"]

INFINITY = math.inf

#: Diagnostic call counters, keyed by kernel entry point.  The
#: bench-smoke tool and the delegation tests assert against these to
#: prove the vectorized path is actually being exercised.
KERNEL_CALLS: Counter = Counter()

#: Sentinel owner for nodes whose distance just improved and whose
#: owning source is about to be recomputed.
_NO_OWNER = np.iinfo(np.int64).max

_EMPTY_I8 = np.empty(0, dtype=np.int64)
_EMPTY_F8 = np.empty(0, dtype=np.float64)


def _dedup(ids: np.ndarray) -> np.ndarray:
    """Sorted unique of an id array.

    Same result as ``np.unique`` but via a plain sort + neighbour
    comparison: on the small frontier arrays the bucket loop emits,
    ``np.unique``'s hash-table path costs ~10x more per call and
    dominated the whole search in profiles.
    """
    if ids.size <= 1:
        return ids
    ids = np.sort(ids)
    keep = np.empty(ids.shape, dtype=bool)
    keep[0] = True
    np.not_equal(ids[1:], ids[:-1], out=keep[1:])
    return ids[keep]


def dial_delta(weights: np.ndarray) -> float | None:
    """The Dial bucket width for integer-weight networks, else ``None``.

    With ``delta <= min(weight)`` no edge can re-enter its own window,
    so every bucket settles in exactly one sweep.  Returns the minimum
    weight when all weights are integral, ``None`` otherwise.
    """
    if len(weights) == 0:
        return None
    if not np.equal(np.floor(weights), weights).all():
        return None
    return float(weights.min())


def _adopt_index_array(array: np.ndarray) -> np.ndarray:
    """Return ``array`` as a contiguous signed-integer ndarray, no copy
    when it already is one (any width — int32 CSR arrays from a memmap
    cache or shared memory are adopted as-is)."""
    arr = np.asarray(array)
    if arr.dtype.kind == "i" and arr.flags.c_contiguous:
        return arr
    return np.ascontiguousarray(arr, dtype=np.int64)


class CSRKernels:
    """Array-based Dijkstra kernels over one CSR adjacency.

    Parameters
    ----------
    indptr, indices, weights:
        The CSR arrays (``RoadNetwork.csr_arrays``).  Held by reference,
        never copied — they may live in shared memory.
    delta:
        Bucket width of the delta-stepping loop.  Defaults to 4x the
        mean edge weight; pass :func:`dial_delta`'s result for
        single-sweep Dial buckets on integer-weight networks.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        *,
        delta: float | None = None,
    ) -> None:
        # Adopt integer index arrays in their native dtype when possible:
        # converting a memmapped int32 indptr/indices pair to int64 would
        # copy hundreds of MB into every worker at continental scale and
        # defeat the O(1) cache attach.  int32 fancy indexing works
        # everywhere these arrays are used, and mixed int32/int64
        # arithmetic promotes safely, so results are unchanged.
        self._indptr = _adopt_index_array(indptr)
        self._indices = _adopt_index_array(indices)
        self._weights = np.ascontiguousarray(weights, dtype=np.float64)
        self._num_nodes = len(self._indptr) - 1
        if delta is None:
            delta = (
                4.0 * float(self._weights.mean())
                if len(self._weights)
                else 1.0
            )
        if not delta > 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self._delta = float(delta)
        # Reusable buffers (the thread-unsafety documented above).
        self._dist = np.full(self._num_nodes, np.inf, dtype=np.float64)
        self._owner = None  # allocated on first multi-source call
        self._touched: np.ndarray | None = _EMPTY_I8
        # Batch-query buffer: one distance row per grouped source over
        # the flattened (row, node) product space; grown on demand.
        self._batch_dist: np.ndarray | None = None
        self._batch_touched: np.ndarray | None = None

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def delta(self) -> float:
        return self._delta

    # ------------------------------------------------------------------
    # Public kernels
    # ------------------------------------------------------------------
    def sssp(
        self, source: int, max_distance: float = INFINITY
    ) -> tuple[np.ndarray, np.ndarray]:
        """Single-source distances: ``(nodes, dists)`` with dist <= bound.

        Equivalent to the settled set of the ``heapq`` engine: every
        node whose network distance from ``source`` is at most
        ``max_distance``, with bit-identical distances.
        """
        KERNEL_CALLS["sssp"] += 1
        return self._finish(
            *self._search([source], max_distance=max_distance)[:2],
            max_distance,
        )

    def sssp_multi(
        self,
        sources: Sequence[int],
        max_distance: float = INFINITY,
        with_owners: bool = False,
    ):
        """Distances from the nearest of several sources.

        Returns ``(nodes, dists)`` or, with ``with_owners=True``,
        ``(nodes, dists, owners)`` where ``owners[i]`` is the source
        realizing ``dists[i]`` (smallest source id on ties — the same
        tie-break the ``heapq`` engine's ordered tuples produce).
        """
        KERNEL_CALLS["sssp_multi"] += 1
        if len(sources) == 0:
            if with_owners:
                return _EMPTY_I8, _EMPTY_F8, _EMPTY_I8
            return _EMPTY_I8, _EMPTY_F8
        nodes, dists, _ = self._search(
            sources, max_distance=max_distance, track_owners=with_owners
        )
        nodes, dists = self._finish(nodes, dists, max_distance)
        if with_owners:
            return nodes, dists, self._owner[nodes].copy()
        return nodes, dists

    def topk_objects(
        self, source: int, object_counts: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Early-terminating top-k expansion over per-node object counts.

        Expands from ``source`` until the ``k`` nearest objects are
        guaranteed settled, i.e. until the next bucket's minimum
        tentative distance exceeds the k-th best candidate distance.
        Returns the settled object-bearing nodes and their distances —
        a superset of the true top-k containing *every* object at
        distance <= the k-th distance, so downstream canonical
        ``(distance, object_id)`` sorting reproduces the ``heapq``
        expansion's answers exactly, ties included.
        """
        KERNEL_CALLS["topk"] += 1
        if k <= 0:
            return _EMPTY_I8, _EMPTY_F8
        nodes, dists, _ = self._search(
            [source], object_counts=object_counts, k=k
        )
        mask = object_counts[nodes] > 0
        return nodes[mask], dists[mask]

    def knn_batch(
        self,
        sources: Sequence[int],
        ks: Sequence[int],
        object_counts: np.ndarray,
        *,
        group_size: int = 16,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Answer many top-k queries via shared multi-source sweeps.

        The batch counterpart of :meth:`topk_objects`: ``sources[i]``
        and ``ks[i]`` describe one query, and the return value is one
        ``(nodes, dists)`` pair per query, aligned with the input.
        Each pair has the same contract as :meth:`topk_objects` — the
        settled object-bearing nodes, a superset of the true top-k
        containing every object at distance <= the k-th distance, with
        distances bit-identical to the per-query kernel — so canonical
        ``(distance, object_id)`` sorting downstream reproduces the
        per-query answers exactly.

        Execution: duplicate sources collapse to one search (served
        with the largest requested ``k``); the distinct sources are
        sorted (node-id order is the locality proxy on our generated
        networks) and chunked into groups of up to ``group_size``.
        One group runs as a *single* delta-stepping sweep over the
        flattened ``(row, node)`` product space — every bucket relaxes
        the concatenated frontiers of all group members in the same
        handful of numpy operations, amortizing the per-window
        interpreter cost that dominates small per-query searches.
        Each row keeps its own early-termination bound, so a finished
        member stops contributing frontier work while its neighbours
        keep expanding.

        Queries sharing a source may receive the *same* array objects;
        treat results as read-only.
        """
        KERNEL_CALLS["knn_batch"] += 1
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        src = np.asarray(sources, dtype=np.int64)
        kreq = np.asarray(ks, dtype=np.int64)
        if src.shape != kreq.shape or src.ndim != 1:
            raise ValueError("sources and ks must be 1-D and equal length")
        if src.size == 0:
            return []
        if src.size and (src.min() < 0 or src.max() >= self._num_nodes):
            raise IndexError(
                f"source out of range for graph with {self._num_nodes} nodes"
            )
        unique, inverse = np.unique(src, return_inverse=True)
        kmax = np.zeros(unique.shape, dtype=np.int64)
        np.maximum.at(kmax, inverse, kreq)
        per_unique: list[tuple[np.ndarray, np.ndarray]] = [
            (_EMPTY_I8, _EMPTY_F8)
        ] * len(unique)
        wanted = np.nonzero(kmax > 0)[0]
        for start in range(0, len(wanted), group_size):
            chunk = wanted[start:start + group_size]
            answers = self._batch_topk(
                unique[chunk], kmax[chunk], object_counts
            )
            for position, unique_index in enumerate(chunk.tolist()):
                per_unique[unique_index] = answers[position]
        return [per_unique[index] for index in inverse.tolist()]

    def expander(self, source: int) -> "IncrementalSSSP":
        """An incremental single-source search (IER's verification tool)."""
        KERNEL_CALLS["expander"] += 1
        return IncrementalSSSP(self, source)

    # ------------------------------------------------------------------
    # Core bucketed search
    # ------------------------------------------------------------------
    def _reset(self) -> np.ndarray:
        dist = self._dist
        touched = self._touched
        if touched is None or len(touched) * 8 > self._num_nodes:
            dist.fill(np.inf)
        else:
            dist[touched] = np.inf
        self._touched = None
        return dist

    def _search(
        self,
        sources: Sequence[int],
        *,
        max_distance: float = INFINITY,
        object_counts: np.ndarray | None = None,
        k: int = 0,
        track_owners: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Run the bucket loop; returns ``(nodes, dists, settled_bound)``.

        ``nodes``/``dists`` are every node settled before termination
        (some may exceed ``max_distance`` by less than one bucket; the
        public wrappers trim).  ``settled_bound`` is the pivot below
        which all distances are final — used by the incremental search.
        """
        dist = self._reset()
        owner = None
        if track_owners:
            owner = self._owner
            if owner is None:
                owner = self._owner = np.full(
                    self._num_nodes, _NO_OWNER, dtype=np.int64
                )
        src = np.unique(np.asarray(sources, dtype=np.int64))
        if src.size == 0 or self._num_nodes == 0:
            self._touched = _EMPTY_I8
            return _EMPTY_I8, _EMPTY_F8, 0.0
        dist[src] = 0.0
        if owner is not None:
            owner[src] = src
        delta = self._delta
        active_parts = [src]
        settled_parts: list[np.ndarray] = []
        object_parts: list[np.ndarray] = []
        touched_parts = [src]
        kth_bound = np.inf
        found = 0
        bound = 0.0
        while active_parts:
            active = (
                active_parts[0]
                if len(active_parts) == 1
                else _dedup(np.concatenate(active_parts))
            )
            active_dist = dist[active]
            # Drop nodes settled by an earlier bucket (they re-enter the
            # worklist only as stale duplicates, never with a better
            # distance, so a bound check filters them).
            live = active_dist >= bound
            active, active_dist = active[live], active_dist[live]
            if active.size == 0:
                break
            pivot = float(active_dist.min())
            if pivot > max_distance or (found >= k > 0 and pivot > kth_bound):
                break
            high = pivot + delta
            in_window = active_dist < high
            frontier = active[in_window]
            active_parts = [active[~in_window]]
            window_parts = [frontier]
            # Inner fixpoint: relax window nodes until no distance (or
            # owner) below `high` changes; positive weights guarantee no
            # candidate from outside the window can undercut it later.
            while frontier.size:
                changed = self._relax(frontier, dist, owner)
                if changed.size == 0:
                    break
                touched_parts.append(changed)
                inside = dist[changed] < high
                frontier = changed[inside]
                if frontier.size:
                    window_parts.append(frontier)
                spill = changed[~inside]
                if spill.size:
                    active_parts.append(spill)
            window = (
                window_parts[0]
                if len(window_parts) == 1
                else _dedup(np.concatenate(window_parts))
            )
            settled_parts.append(window)
            bound = high
            if k > 0 and window.size:
                counts = object_counts[window]
                bearing = window[counts > 0]
                if bearing.size:
                    object_parts.append(bearing)
                    found += int(counts.sum())
                if found >= k:
                    kth_bound = self._kth_distance(
                        object_parts, dist, object_counts, k
                    )
            if not active_parts[0].size and len(active_parts) == 1:
                break
        # Duplicates are harmless in the reset scatter; skip dedup.
        self._touched = np.concatenate(touched_parts)
        if settled_parts:
            nodes = np.concatenate(settled_parts)
            return nodes, dist[nodes].copy(), bound
        return _EMPTY_I8, _EMPTY_F8, bound

    def _relax(
        self,
        frontier: np.ndarray,
        dist: np.ndarray,
        owner: np.ndarray | None,
    ) -> np.ndarray:
        """Relax every out-edge of ``frontier``; return changed nodes."""
        indptr, indices, weights = self._indptr, self._indices, self._weights
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return _EMPTY_I8
        cum = np.cumsum(counts)
        edge_ids = np.arange(total, dtype=np.int64) + np.repeat(
            starts - (cum - counts), counts
        )
        targets = indices[edge_ids]
        cand = np.repeat(dist[frontier], counts) + weights[edge_ids]
        before = dist[targets]
        np.minimum.at(dist, targets, cand)
        changed = _dedup(targets[dist[targets] < before])
        if owner is None:
            return changed
        # Owner maintenance: a strictly-improved node forgets its owner;
        # then every candidate that ties the (new) distance competes and
        # the smallest source id wins — the heapq tuple-order tie-break.
        owner[changed] = _NO_OWNER
        owner_before = owner[targets]
        ties = cand == dist[targets]
        np.minimum.at(
            owner, targets[ties], np.repeat(owner[frontier], counts)[ties]
        )
        owner_changed = targets[owner[targets] < owner_before]
        if owner_changed.size == 0:
            return changed
        return _dedup(np.concatenate([changed, owner_changed]))

    # ------------------------------------------------------------------
    # Batched multi-query search (shared sweep over a source group)
    # ------------------------------------------------------------------
    def _batch_reset(self, size: int) -> np.ndarray:
        """A clean flat distance buffer of at least ``size`` entries."""
        dist = self._batch_dist
        if dist is None or len(dist) < size:
            dist = self._batch_dist = np.full(size, np.inf, dtype=np.float64)
            self._batch_touched = None
            return dist
        touched = self._batch_touched
        if touched is None or len(touched) * 8 > len(dist):
            dist.fill(np.inf)
        else:
            dist[touched] = np.inf
        self._batch_touched = None
        return dist

    def _batch_topk(
        self,
        sources: np.ndarray,
        ks: np.ndarray,
        object_counts: np.ndarray,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """One shared sweep answering ``len(sources)`` top-k queries.

        Runs the bucket loop of :meth:`_search` over the flattened
        ``(row, node)`` product space — row ``r`` owns flat ids
        ``[r*n, (r+1)*n)`` and evolves exactly like an independent
        :meth:`topk_objects` search, except that all rows share each
        window's vectorized relaxation.  Windows are aligned to the
        *global* minimum tentative distance, so a row may settle a few
        more nodes than its solo run would have; settled distances are
        bit-identical regardless (the window fixpoint argument is
        per-row), which is all the top-k contract needs.
        """
        n = self._num_nodes
        rows = len(sources)
        dist = self._batch_reset(rows * n)
        flat_src = np.arange(rows, dtype=np.int64) * n + sources
        dist[flat_src] = 0.0
        delta = self._delta
        active_parts = [flat_src]
        touched_parts = [flat_src]
        found = np.zeros(rows, dtype=np.int64)
        kth_bound = np.full(rows, np.inf, dtype=np.float64)
        done = ks <= 0
        #: Per row: settled object-bearing local node ids (duplicate-free
        #: — a node settles in exactly one window).
        row_objects: list[list[np.ndarray]] = [[] for _ in range(rows)]
        row_dirty = np.zeros(rows, dtype=bool)
        bound = 0.0
        while active_parts:
            active = (
                active_parts[0]
                if len(active_parts) == 1
                else _dedup(np.concatenate(active_parts))
            )
            active_dist = dist[active]
            live = active_dist >= bound
            active, active_dist = active[live], active_dist[live]
            if active.size and done.any():
                keep = ~done[active // n]
                active, active_dist = active[keep], active_dist[keep]
            if active.size == 0:
                break
            # Per-row early termination, the batched analogue of the
            # solo kernel's `pivot > kth_bound` break: a row is finished
            # once its own minimum tentative distance clears its k-th
            # candidate distance.
            ready = found >= ks
            if ready.any():
                row_min = np.full(rows, np.inf, dtype=np.float64)
                np.minimum.at(row_min, active // n, active_dist)
                finished = ready & ~done & (row_min > kth_bound)
                if finished.any():
                    done |= finished
                    if done.all():
                        break
                    keep = ~done[active // n]
                    active, active_dist = active[keep], active_dist[keep]
                    if active.size == 0:
                        break
            pivot = float(active_dist.min())
            high = pivot + delta
            in_window = active_dist < high
            frontier = active[in_window]
            active_parts = [active[~in_window]]
            window_parts = [frontier]
            while frontier.size:
                changed = self._relax_flat(frontier, dist)
                if changed.size == 0:
                    break
                touched_parts.append(changed)
                inside = dist[changed] < high
                frontier = changed[inside]
                if frontier.size:
                    window_parts.append(frontier)
                spill = changed[~inside]
                if spill.size:
                    active_parts.append(spill)
            window = (
                window_parts[0]
                if len(window_parts) == 1
                else _dedup(np.concatenate(window_parts))
            )
            bound = high
            if window.size:
                window_rows = window // n
                window_nodes = window - window_rows * n
                window_counts = object_counts[window_nodes]
                bearing = window_counts > 0
                if bearing.any():
                    bearing_rows = window_rows[bearing]
                    np.add.at(found, bearing_rows, window_counts[bearing])
                    bearing_nodes = window_nodes[bearing]
                    for row in _dedup(bearing_rows).tolist():
                        row_objects[row].append(
                            bearing_nodes[bearing_rows == row]
                        )
                        row_dirty[row] = True
                    refresh = np.nonzero(row_dirty & (found >= ks) & ~done)[0]
                    for row in refresh.tolist():
                        parts = row_objects[row]
                        nodes = (
                            parts[0] if len(parts) == 1
                            else np.concatenate(parts)
                        )
                        row_objects[row] = [nodes]
                        dists = dist[row * n + nodes]
                        order = np.argsort(dists, kind="stable")
                        cumulative = np.cumsum(object_counts[nodes][order])
                        position = int(np.searchsorted(cumulative, ks[row]))
                        kth_bound[row] = float(dists[order][position])
                        row_dirty[row] = False
            if not active_parts[0].size and len(active_parts) == 1:
                break
        self._batch_touched = np.concatenate(touched_parts)
        results: list[tuple[np.ndarray, np.ndarray]] = []
        for row in range(rows):
            parts = row_objects[row]
            if not parts:
                results.append((_EMPTY_I8, _EMPTY_F8))
                continue
            nodes = parts[0] if len(parts) == 1 else np.concatenate(parts)
            results.append((nodes, dist[row * n + nodes].copy()))
        return results

    def _relax_flat(self, frontier: np.ndarray, dist: np.ndarray) -> np.ndarray:
        """:meth:`_relax` over the flattened ``(row, node)`` space.

        ``frontier`` holds flat ids ``row*n + node``; edges come from
        the node part while candidates stay inside the row's slice, so
        one scatter-min relaxes every group member's frontier at once.
        """
        indptr, indices, weights = self._indptr, self._indices, self._weights
        n = self._num_nodes
        nodes = frontier % n
        starts = indptr[nodes]
        counts = indptr[nodes + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return _EMPTY_I8
        cum = np.cumsum(counts)
        edge_ids = np.arange(total, dtype=np.int64) + np.repeat(
            starts - (cum - counts), counts
        )
        targets = indices[edge_ids] + np.repeat(frontier - nodes, counts)
        cand = np.repeat(dist[frontier], counts) + weights[edge_ids]
        before = dist[targets]
        np.minimum.at(dist, targets, cand)
        return _dedup(targets[dist[targets] < before])

    @staticmethod
    def _kth_distance(
        object_parts: list[np.ndarray],
        dist: np.ndarray,
        object_counts: np.ndarray,
        k: int,
    ) -> float:
        """Distance of the k-th nearest object among settled nodes."""
        nodes = np.concatenate(object_parts)
        dists = dist[nodes]
        order = np.argsort(dists, kind="stable")
        cumulative = np.cumsum(object_counts[nodes][order])
        position = int(np.searchsorted(cumulative, k))
        return float(dists[order][position])

    @staticmethod
    def _finish(
        nodes: np.ndarray, dists: np.ndarray, max_distance: float
    ) -> tuple[np.ndarray, np.ndarray]:
        if math.isinf(max_distance):
            return nodes, dists
        mask = dists <= max_distance
        return nodes[mask], dists[mask]


class IncrementalSSSP:
    """A resumable single-source search over private buffers.

    IER refines Euclidean candidates with exact network distances, all
    from the *same* query location; instead of one A* per candidate,
    this object expands the bucketed search just far enough to settle
    each requested target and keeps the explored region for the next
    one.  Not thread-safe (it owns its buffers); build via
    :meth:`CSRKernels.expander`.
    """

    def __init__(self, kernels: CSRKernels, source: int) -> None:
        self._k = kernels
        n = kernels.num_nodes
        self._dist = np.full(n, np.inf, dtype=np.float64)
        if not 0 <= source < n:
            raise IndexError(f"node {source} out of range for graph with {n} nodes")
        self._dist[source] = 0.0
        self._active_parts: list[np.ndarray] = [
            np.asarray([source], dtype=np.int64)
        ]
        self._bound = 0.0  # distances below this are final
        self._exhausted = False

    def distance_to(self, target: int) -> float:
        """Exact network distance to ``target`` (``inf`` if unreachable)."""
        dist = self._dist
        while not (dist[target] < self._bound) and not self._exhausted:
            self._advance()
        d = float(dist[target])
        return d if d < math.inf else math.inf

    def settled_bound(self) -> float:
        """All distances strictly below this value are final."""
        return self._bound

    def _advance(self) -> None:
        """Settle one more bucket (mirrors ``CSRKernels._search``)."""
        kern = self._k
        dist = self._dist
        delta = kern.delta
        active = (
            self._active_parts[0]
            if len(self._active_parts) == 1
            else _dedup(np.concatenate(self._active_parts))
        )
        active_dist = dist[active]
        live = active_dist >= self._bound
        active, active_dist = active[live], active_dist[live]
        if active.size == 0:
            self._exhausted = True
            return
        pivot = float(active_dist.min())
        high = pivot + delta
        in_window = active_dist < high
        frontier = active[in_window]
        self._active_parts = [active[~in_window]]
        while frontier.size:
            changed = kern._relax(frontier, dist, None)
            if changed.size == 0:
                break
            inside = dist[changed] < high
            frontier = changed[inside]
            spill = changed[~inside]
            if spill.size:
                self._active_parts.append(spill)
        self._bound = high
        if len(self._active_parts) == 1 and not self._active_parts[0].size:
            self._exhausted = True

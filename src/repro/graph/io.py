"""Road-network serialization in the DIMACS shortest-path format.

The real datasets in the paper (NY, USA(E), USA(W)) are distributed in
the 9th DIMACS Implementation Challenge format: a ``.gr`` file holding
arcs and a ``.co`` file holding node coordinates.  We read and write that
format so users with the real data can run every experiment on it, and
so generated replicas can be cached on disk between benchmark runs.

DIMACS is 1-indexed and lists each undirected edge as two directed arcs;
this module converts to/from our 0-indexed undirected representation.

Parsing is streaming and batch-oriented: the file is consumed in chunks
of ``_CHUNK_LINES`` lines, each chunk of arc records is tokenized in one
pass, and the numeric columns land directly in numpy arrays pre-sized
from the ``p sp`` header's arc count — no per-line ``(u, v, w)`` tuple
is ever built, the whole file is never held in memory (peak residency is
one chunk plus the output arrays), and dedup/CSR construction run
vectorized in :meth:`RoadNetwork.from_edge_arrays`.  Malformed input
falls back to a scalar rescan of the offending chunk purely to report
the bad line number.  save → load → save output stays byte-identical
to the previous whole-file batch parser (pinned by tests), which this
replaces to make continental-scale ``.gr`` files (tens of millions of
arcs) loadable without a multi-GB line-list spike.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterator

import numpy as np

from .road_network import RoadNetwork


class FormatError(ValueError):
    """Raised when a DIMACS file is malformed."""


#: Lines per parse chunk.  Large enough that the per-chunk numpy
#: conversion dominates, small enough that a chunk of raw lines is a
#: few MB at most.
_CHUNK_LINES = 1 << 16


def _open_text(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="ascii")  # type: ignore[return-value]
    return open(path, mode, encoding="ascii")


def load_dimacs(
    gr_path: str | Path, co_path: str | Path | None = None, name: str | None = None
) -> RoadNetwork:
    """Load a network from DIMACS ``.gr`` (and optional ``.co``) files.

    Duplicate arcs (the forward/backward pair of an undirected edge) are
    collapsed by :class:`RoadNetwork` itself, keeping the minimum weight.
    """
    gr_path = Path(gr_path)
    declared_nodes = 0
    declared_arcs = 0
    # Output columns, pre-sized from the 'p sp' header the moment it is
    # seen (it precedes the arcs in well-formed files); _ensure grows
    # them only for files that under-declare.
    u_buf = np.empty(0, dtype=np.int64)
    v_buf = np.empty(0, dtype=np.int64)
    w_buf = np.empty(0, dtype=np.float64)
    count = 0

    def _ensure(extra: int) -> None:
        nonlocal u_buf, v_buf, w_buf
        needed = count + extra
        if needed <= len(u_buf):
            return
        capacity = max(needed, 2 * len(u_buf))
        u_buf = np.concatenate([u_buf[:count], np.empty(capacity - count, np.int64)])
        v_buf = np.concatenate([v_buf[:count], np.empty(capacity - count, np.int64)])
        w_buf = np.concatenate([w_buf[:count], np.empty(capacity - count, np.float64)])

    def _flush(arc_lines: list[str], arc_nos: list[int]) -> None:
        # One tokenization pass over the chunk's arc records at once.
        # Any shape mismatch — wrong field count, an "ab"-style record
        # type, field miscounts that happen to cancel out — sends us to
        # the scalar rescan for a line-numbered diagnostic.
        nonlocal count
        tokens = " ".join(arc_lines).split()
        if len(tokens) != 4 * len(arc_lines) or not np.all(
            np.asarray(tokens[0::4]) == "a"
        ):
            _rescan_arcs(gr_path, arc_lines, arc_nos)
        u = np.array(tokens[1::4], dtype=np.int64)
        v = np.array(tokens[2::4], dtype=np.int64)
        w = np.array(tokens[3::4], dtype=np.float64)
        keep = u != v  # real DIMACS data contains occasional self loops
        if not keep.all():
            u, v, w = u[keep], v[keep], w[keep]
        _ensure(len(u))
        u_buf[count : count + len(u)] = u
        v_buf[count : count + len(v)] = v
        w_buf[count : count + len(w)] = w
        count += len(u)

    pending: list[str] = []
    pending_nos: list[int] = []
    with _open_text(gr_path, "r") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if line[:1] == "a":
                pending.append(line)
                pending_nos.append(line_no)
                if len(pending) >= _CHUNK_LINES:
                    _flush(pending, pending_nos)
                    pending, pending_nos = [], []
                continue
            # The (few) non-arc records: problem line, comments, blanks.
            if not line or line[0] == "c":
                continue
            fields = line.split()
            if fields[0] == "p":
                if len(fields) != 4 or fields[1] != "sp":
                    raise FormatError(
                        f"{gr_path}:{line_no}: bad problem line {line!r}"
                    )
                declared_nodes = int(fields[2])
                declared_arcs = int(fields[3])
                _ensure(declared_arcs - count)
            else:
                raise FormatError(
                    f"{gr_path}:{line_no}: unknown record type {fields[0]!r}"
                )
    if pending:
        _flush(pending, pending_nos)

    if declared_nodes == 0 and count:
        raise FormatError(f"{gr_path}: missing 'p sp' problem line")
    if declared_arcs and count > declared_arcs:
        raise FormatError(
            f"{gr_path}: {count} arcs found, {declared_arcs} declared"
        )

    coordinates = None
    if co_path is not None:
        coordinates = _load_coordinates(Path(co_path), declared_nodes)

    return RoadNetwork.from_edge_arrays(
        declared_nodes,
        u_buf[:count] - 1,
        v_buf[:count] - 1,
        w_buf[:count],
        coordinates=coordinates,
        name=name or gr_path.stem,
    )


def _rescan_arcs(gr_path: Path, arc_lines: list[str], arc_nos: list[int]) -> None:
    """Scalar rescan of a malformed chunk: find and report the bad line."""
    for line_no, line in zip(arc_nos, arc_lines):
        fields = line.split()
        if fields[0] != "a":
            raise FormatError(
                f"{gr_path}:{line_no}: unknown record type {fields[0]!r}"
            )
        if len(fields) != 4:
            raise FormatError(f"{gr_path}:{line_no}: bad arc line {line!r}")
    raise FormatError(f"{gr_path}: malformed arc records")  # pragma: no cover


def _load_coordinates(co_path: Path, num_nodes: int) -> np.ndarray:
    coordinates = np.zeros((num_nodes, 2), dtype=np.float64)

    def _flush(vertex_lines: list[str], vertex_nos: list[int]) -> None:
        tokens = " ".join(vertex_lines).split()
        if len(tokens) != 4 * len(vertex_lines) or not np.all(
            np.asarray(tokens[0::4]) == "v"
        ):
            for line_no, line in zip(vertex_nos, vertex_lines):
                if len(line.split()) != 4 or not line.startswith("v "):
                    raise FormatError(
                        f"{co_path}:{line_no}: bad vertex line {line!r}"
                    )
            raise FormatError(  # pragma: no cover
                f"{co_path}: malformed vertex records"
            )
        node = np.array(tokens[1::4], dtype=np.int64) - 1
        bad = (node < 0) | (node >= num_nodes)
        if bad.any():
            at = int(np.argmax(bad))
            raise FormatError(
                f"{co_path}:{vertex_nos[at]}: node {int(node[at]) + 1} "
                "out of range"
            )
        coordinates[node, 0] = np.array(tokens[2::4], dtype=np.float64)
        coordinates[node, 1] = np.array(tokens[3::4], dtype=np.float64)

    pending: list[str] = []
    pending_nos: list[int] = []
    with _open_text(co_path, "r") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if line[:1] == "v":
                pending.append(line)
                pending_nos.append(line_no)
                if len(pending) >= _CHUNK_LINES:
                    _flush(pending, pending_nos)
                    pending, pending_nos = [], []
                continue
            if not line or line[0] == "c":
                continue
            if line.split(None, 1)[0] != "p":
                raise FormatError(
                    f"{co_path}:{line_no}: bad vertex line {line!r}"
                )
    if pending:
        _flush(pending, pending_nos)
    return coordinates


def save_dimacs(
    network: RoadNetwork, gr_path: str | Path, co_path: str | Path | None = None
) -> None:
    """Write a network as DIMACS ``.gr`` (+ optional ``.co``) files."""
    gr_path = Path(gr_path)
    with _open_text(gr_path, "w") as handle:
        handle.write(f"c generated by repro ({network.name})\n")
        handle.write(f"p sp {network.num_nodes} {2 * network.num_edges}\n")
        for edge in network.edges():
            weight = _format_weight(edge.weight)
            handle.write(f"a {edge.u + 1} {edge.v + 1} {weight}\n")
            handle.write(f"a {edge.v + 1} {edge.u + 1} {weight}\n")
    if co_path is not None:
        co_path = Path(co_path)
        with _open_text(co_path, "w") as handle:
            handle.write(f"c generated by repro ({network.name})\n")
            handle.write(f"p aux sp co {network.num_nodes}\n")
            for node in network.nodes():
                x, y = network.coordinate(node)
                handle.write(f"v {node + 1} {x:.6f} {y:.6f}\n")


def _format_weight(weight: float) -> str:
    if weight == int(weight):
        return str(int(weight))
    return f"{weight:.6f}"


def iter_edge_list(path: str | Path) -> Iterator[tuple[int, int, float]]:
    """Stream ``u v w`` whitespace-separated edge-list files (0-indexed).

    A convenience loader for ad-hoc data; blank lines and ``#`` comments
    are skipped.
    """
    path = Path(path)
    with _open_text(path, "r") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 3:
                raise FormatError(f"{path}:{line_no}: expected 'u v w', got {line!r}")
            yield int(fields[0]), int(fields[1]), float(fields[2])


def load_edge_list(path: str | Path, name: str | None = None) -> RoadNetwork:
    """Load a 0-indexed ``u v w`` edge-list file as a network."""
    path = Path(path)
    edges = list(iter_edge_list(path))
    num_nodes = 0
    for u, v, _ in edges:
        num_nodes = max(num_nodes, u + 1, v + 1)
    return RoadNetwork(num_nodes, edges, name=name or path.stem)

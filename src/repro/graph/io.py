"""Road-network serialization in the DIMACS shortest-path format.

The real datasets in the paper (NY, USA(E), USA(W)) are distributed in
the 9th DIMACS Implementation Challenge format: a ``.gr`` file holding
arcs and a ``.co`` file holding node coordinates.  We read and write that
format so users with the real data can run every experiment on it, and
so generated replicas can be cached on disk between benchmark runs.

DIMACS is 1-indexed and lists each undirected edge as two directed arcs;
this module converts to/from our 0-indexed undirected representation.

Parsing is batch-oriented: arc records are gathered as raw lines, the
whole batch is tokenized in one pass, and the numeric columns are
converted by ``np.array(tokens, dtype=...)`` — no per-line ``(u, v, w)``
tuple is ever built, and dedup/CSR construction run vectorized in
:meth:`RoadNetwork.from_edge_arrays`.  Malformed input falls back to a
scalar rescan purely to report the offending line number.  Round-trip
perf note (998k-arc generated ``.gr`` + ``.co``, warm min-of-3 on the
dev container): batch parse loads in ~1.8 s vs ~2.9 s for the per-line
scalar path (~1.6x), and defers the first-seen edge-dict build until
something actually iterates edges; save is unchanged and
save → load → save output stays byte-identical either way.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterator

import numpy as np

from .road_network import RoadNetwork


class FormatError(ValueError):
    """Raised when a DIMACS file is malformed."""


def _open_text(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="ascii")  # type: ignore[return-value]
    return open(path, mode, encoding="ascii")


def load_dimacs(
    gr_path: str | Path, co_path: str | Path | None = None, name: str | None = None
) -> RoadNetwork:
    """Load a network from DIMACS ``.gr`` (and optional ``.co``) files.

    Duplicate arcs (the forward/backward pair of an undirected edge) are
    collapsed by :class:`RoadNetwork` itself, keeping the minimum weight.
    """
    gr_path = Path(gr_path)
    declared_nodes = 0
    declared_arcs = 0
    with _open_text(gr_path, "r") as handle:
        lines = [raw.strip() for raw in handle.read().splitlines()]
    arc_lines = [line for line in lines if line[:1] == "a"]
    if len(arc_lines) != len(lines):
        # The (few) non-arc records: problem line, comments, blanks.
        for line_no, line in enumerate(lines, start=1):
            if line[:1] == "a" or not line or line[0] == "c":
                continue
            fields = line.split()
            if fields[0] == "p":
                if len(fields) != 4 or fields[1] != "sp":
                    raise FormatError(
                        f"{gr_path}:{line_no}: bad problem line {line!r}"
                    )
                declared_nodes = int(fields[2])
                declared_arcs = int(fields[3])
            else:
                raise FormatError(
                    f"{gr_path}:{line_no}: unknown record type {fields[0]!r}"
                )

    # One tokenization pass over all arc records at once.  Any shape
    # mismatch — wrong field count, an "ab"-style record type, field
    # miscounts that happen to cancel out — sends us to the scalar
    # rescan for a line-numbered diagnostic.
    tokens = " ".join(arc_lines).split()
    if len(tokens) != 4 * len(arc_lines) or (
        arc_lines and not np.all(np.asarray(tokens[0::4]) == "a")
    ):
        _rescan_arcs(gr_path, lines)
    u = np.array(tokens[1::4], dtype=np.int64)
    v = np.array(tokens[2::4], dtype=np.int64)
    w = np.array(tokens[3::4], dtype=np.float64)
    keep = u != v  # real DIMACS data contains occasional self loops
    u, v, w = u[keep], v[keep], w[keep]

    if declared_nodes == 0 and len(u):
        raise FormatError(f"{gr_path}: missing 'p sp' problem line")
    if declared_arcs and len(u) > declared_arcs:
        raise FormatError(
            f"{gr_path}: {len(u)} arcs found, {declared_arcs} declared"
        )

    coordinates = None
    if co_path is not None:
        coordinates = _load_coordinates(Path(co_path), declared_nodes)

    return RoadNetwork.from_edge_arrays(
        declared_nodes,
        u - 1,
        v - 1,
        w,
        coordinates=coordinates,
        name=name or gr_path.stem,
    )


def _rescan_arcs(gr_path: Path, lines: list[str]) -> None:
    """Scalar rescan of a malformed batch: find and report the bad line."""
    for line_no, line in enumerate(lines, start=1):
        if line[:1] != "a":
            continue
        fields = line.split()
        if fields[0] != "a":
            raise FormatError(
                f"{gr_path}:{line_no}: unknown record type {fields[0]!r}"
            )
        if len(fields) != 4:
            raise FormatError(f"{gr_path}:{line_no}: bad arc line {line!r}")
    raise FormatError(f"{gr_path}: malformed arc records")  # pragma: no cover


def _load_coordinates(co_path: Path, num_nodes: int) -> np.ndarray:
    with _open_text(co_path, "r") as handle:
        lines = [raw.strip() for raw in handle.read().splitlines()]
    vertex_lines = [line for line in lines if line[:1] == "v"]
    vertex_line_nos = [
        line_no
        for line_no, line in enumerate(lines, start=1)
        if line[:1] == "v"
    ]
    if len(vertex_lines) != len(lines):
        for line_no, line in enumerate(lines, start=1):
            if line[:1] == "v" or not line or line[0] == "c":
                continue
            if line.split(None, 1)[0] != "p":
                raise FormatError(
                    f"{co_path}:{line_no}: bad vertex line {line!r}"
                )

    tokens = " ".join(vertex_lines).split()
    if len(tokens) != 4 * len(vertex_lines) or (
        vertex_lines and not np.all(np.asarray(tokens[0::4]) == "v")
    ):
        for line_no, line in zip(vertex_line_nos, vertex_lines):
            if len(line.split()) != 4 or not line.startswith("v "):
                raise FormatError(
                    f"{co_path}:{line_no}: bad vertex line {line!r}"
                )
        raise FormatError(f"{co_path}: malformed vertex records")  # pragma: no cover
    node = np.array(tokens[1::4], dtype=np.int64) - 1
    bad = (node < 0) | (node >= num_nodes)
    if bad.any():
        at = int(np.argmax(bad))
        raise FormatError(
            f"{co_path}:{vertex_line_nos[at]}: node {int(node[at]) + 1} "
            "out of range"
        )
    coordinates = np.zeros((num_nodes, 2), dtype=np.float64)
    coordinates[node, 0] = np.array(tokens[2::4], dtype=np.float64)
    coordinates[node, 1] = np.array(tokens[3::4], dtype=np.float64)
    return coordinates


def save_dimacs(
    network: RoadNetwork, gr_path: str | Path, co_path: str | Path | None = None
) -> None:
    """Write a network as DIMACS ``.gr`` (+ optional ``.co``) files."""
    gr_path = Path(gr_path)
    with _open_text(gr_path, "w") as handle:
        handle.write(f"c generated by repro ({network.name})\n")
        handle.write(f"p sp {network.num_nodes} {2 * network.num_edges}\n")
        for edge in network.edges():
            weight = _format_weight(edge.weight)
            handle.write(f"a {edge.u + 1} {edge.v + 1} {weight}\n")
            handle.write(f"a {edge.v + 1} {edge.u + 1} {weight}\n")
    if co_path is not None:
        co_path = Path(co_path)
        with _open_text(co_path, "w") as handle:
            handle.write(f"c generated by repro ({network.name})\n")
            handle.write(f"p aux sp co {network.num_nodes}\n")
            for node in network.nodes():
                x, y = network.coordinate(node)
                handle.write(f"v {node + 1} {x:.6f} {y:.6f}\n")


def _format_weight(weight: float) -> str:
    if weight == int(weight):
        return str(int(weight))
    return f"{weight:.6f}"


def iter_edge_list(path: str | Path) -> Iterator[tuple[int, int, float]]:
    """Stream ``u v w`` whitespace-separated edge-list files (0-indexed).

    A convenience loader for ad-hoc data; blank lines and ``#`` comments
    are skipped.
    """
    path = Path(path)
    with _open_text(path, "r") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 3:
                raise FormatError(f"{path}:{line_no}: expected 'u v w', got {line!r}")
            yield int(fields[0]), int(fields[1]), float(fields[2])


def load_edge_list(path: str | Path, name: str | None = None) -> RoadNetwork:
    """Load a 0-indexed ``u v w`` edge-list file as a network."""
    path = Path(path)
    edges = list(iter_edge_list(path))
    num_nodes = 0
    for u, v, _ in edges:
        num_nodes = max(num_nodes, u + 1, v + 1)
    return RoadNetwork(num_nodes, edges, name=name or path.stem)

"""Shortest-path engines over :class:`~repro.graph.road_network.RoadNetwork`.

Every kNN solution in the paper is built on graph search:

* plain **Dijkstra** expansion (the index-free kNN baseline, and the tool
  used to build G-tree leaf distance matrices),
* **bounded** and **multi-source** variants (used by the partition-tree
  indexes to compute border-to-border distances),
* **bidirectional Dijkstra** and **A*** (used by IER and by tests as an
  independent oracle).

The classic engines work directly on the CSR lists so that the inner
loop is a tight ``heappush``/``heappop`` cycle with no generator
overhead.  On graphs of at least :data:`KERNEL_MIN_NODES` nodes,
:func:`dijkstra` and :func:`multi_source_dijkstra` delegate to the
vectorized bucket kernels in :mod:`repro.graph.kernels`, which return
bit-identical distances at a fraction of the cost; the ``heapq``
bodies are kept as the reference implementation (``*_heapq``) that the
property suite pins the kernels against.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Callable, Iterable, Iterator, Sequence

from .road_network import RoadNetwork

INFINITY = math.inf

#: Below this node count the pure-Python ``heapq`` loop wins (kernel
#: call overhead dominates on e.g. G-tree leaf subgraphs); at or above
#: it the vectorized kernels take over.
KERNEL_MIN_NODES = 2048


def dijkstra(
    network: RoadNetwork,
    source: int,
    max_distance: float = INFINITY,
    targets: Iterable[int] | None = None,
) -> dict[int, float]:
    """Single-source shortest-path distances.

    Parameters
    ----------
    network:
        The road network.
    source:
        Start node.
    max_distance:
        Stop expanding once the closest unsettled node is farther than
        this bound; nodes beyond the bound are absent from the result.
    targets:
        Optional set of target nodes; the search stops early once all of
        them are settled.

    Returns
    -------
    dict mapping each settled node to its network distance from ``source``.
    """
    if targets is None and network.num_nodes >= KERNEL_MIN_NODES:
        nodes, dists = network.kernels.sssp(source, max_distance=max_distance)
        return dict(zip(nodes.tolist(), dists.tolist()))
    return dijkstra_heapq(network, source, max_distance, targets)


def dijkstra_heapq(
    network: RoadNetwork,
    source: int,
    max_distance: float = INFINITY,
    targets: Iterable[int] | None = None,
) -> dict[int, float]:
    """The classic ``heapq`` engine behind :func:`dijkstra`.

    Exposed as the reference implementation the kernel property tests
    compare against, and used directly for small graphs and
    target-truncated searches.
    """
    offsets, adj_targets, adj_weights = network.csr
    pending = set(targets) if targets is not None else None
    dist: dict[int, float] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heappop(heap)
        if node in dist:
            continue
        if d > max_distance:
            break
        dist[node] = d
        if pending is not None:
            pending.discard(node)
            if not pending:
                break
        for idx in range(offsets[node], offsets[node + 1]):
            nxt = adj_targets[idx]
            if nxt not in dist:
                heappush(heap, (d + adj_weights[idx], nxt))
    return dist


def dijkstra_with_paths(
    network: RoadNetwork, source: int, max_distance: float = INFINITY
) -> tuple[dict[int, float], dict[int, int]]:
    """Like :func:`dijkstra` but also returns a predecessor map."""
    offsets, adj_targets, adj_weights = network.csr
    dist: dict[int, float] = {}
    parent: dict[int, int] = {}
    heap: list[tuple[float, int, int]] = [(0.0, source, source)]
    while heap:
        d, node, via = heappop(heap)
        if node in dist:
            continue
        if d > max_distance:
            break
        dist[node] = d
        parent[node] = via
        for idx in range(offsets[node], offsets[node + 1]):
            nxt = adj_targets[idx]
            if nxt not in dist:
                heappush(heap, (d + adj_weights[idx], nxt, node))
    return dist, parent


def reconstruct_path(parent: dict[int, int], source: int, target: int) -> list[int]:
    """Rebuild the node sequence from ``source`` to ``target``.

    Raises ``KeyError`` if ``target`` was not reached.
    """
    if target not in parent:
        raise KeyError(f"target {target} unreachable from {source}")
    path = [target]
    node = target
    while node != source:
        node = parent[node]
        path.append(node)
    path.reverse()
    return path


def shortest_path_distance(network: RoadNetwork, source: int, target: int) -> float:
    """Point-to-point distance via bidirectional Dijkstra.

    Returns ``math.inf`` when ``target`` is unreachable.
    """
    if source == target:
        return 0.0
    offsets, adj_targets, adj_weights = network.csr

    dist_f: dict[int, float] = {source: 0.0}
    dist_b: dict[int, float] = {target: 0.0}
    settled_f: set[int] = set()
    settled_b: set[int] = set()
    heap_f: list[tuple[float, int]] = [(0.0, source)]
    heap_b: list[tuple[float, int]] = [(0.0, target)]
    best = INFINITY

    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        # Expand the side with the smaller frontier radius.
        if heap_f[0][0] <= heap_b[0][0]:
            heap, dist, settled, other_dist = heap_f, dist_f, settled_f, dist_b
        else:
            heap, dist, settled, other_dist = heap_b, dist_b, settled_b, dist_f
        d, node = heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for idx in range(offsets[node], offsets[node + 1]):
            nxt = adj_targets[idx]
            nd = d + adj_weights[idx]
            if nd < dist.get(nxt, INFINITY):
                dist[nxt] = nd
                heappush(heap, (nd, nxt))
                if nxt in other_dist:
                    best = min(best, nd + other_dist[nxt])
    return best


def astar_distance(
    network: RoadNetwork,
    source: int,
    target: int,
    heuristic: Callable[[int], float] | None = None,
) -> float:
    """A* point-to-point distance.

    ``heuristic(node)`` must be an admissible lower bound on the distance
    from ``node`` to ``target``.  When omitted, the Euclidean distance
    between node coordinates is used (admissible whenever edge weights
    dominate Euclidean lengths, as produced by our generators).
    """
    if source == target:
        return 0.0
    if heuristic is None:
        tx, ty = network.coordinate(target)

        def heuristic(node: int, _tx: float = tx, _ty: float = ty) -> float:
            x, y = network.coordinate(node)
            return math.hypot(x - _tx, y - _ty)

    offsets, adj_targets, adj_weights = network.csr
    g_score: dict[int, float] = {source: 0.0}
    closed: set[int] = set()
    heap: list[tuple[float, float, int]] = [(heuristic(source), 0.0, source)]
    while heap:
        _, g, node = heappop(heap)
        if node == target:
            return g
        if node in closed:
            continue
        closed.add(node)
        for idx in range(offsets[node], offsets[node + 1]):
            nxt = adj_targets[idx]
            if nxt in closed:
                continue
            ng = g + adj_weights[idx]
            if ng < g_score.get(nxt, INFINITY):
                g_score[nxt] = ng
                heappush(heap, (ng + heuristic(nxt), ng, nxt))
    return INFINITY


def multi_source_dijkstra(
    network: RoadNetwork,
    sources: Sequence[int],
    max_distance: float = INFINITY,
) -> tuple[dict[int, float], dict[int, int]]:
    """Distances from the *nearest* of several sources.

    Returns ``(dist, owner)`` where ``owner[node]`` is the source that
    realizes ``dist[node]`` (smallest source id on ties).  Used by the
    partitioner's boundary growing and by V-tree's border list
    maintenance.
    """
    if network.num_nodes >= KERNEL_MIN_NODES:
        nodes, dists, owners = network.kernels.sssp_multi(
            sources, max_distance=max_distance, with_owners=True
        )
        node_list = nodes.tolist()
        return (
            dict(zip(node_list, dists.tolist())),
            dict(zip(node_list, owners.tolist())),
        )
    return multi_source_dijkstra_heapq(network, sources, max_distance)


def multi_source_dijkstra_heapq(
    network: RoadNetwork,
    sources: Sequence[int],
    max_distance: float = INFINITY,
) -> tuple[dict[int, float], dict[int, int]]:
    """The ``heapq`` reference engine behind :func:`multi_source_dijkstra`."""
    offsets, adj_targets, adj_weights = network.csr
    dist: dict[int, float] = {}
    owner: dict[int, int] = {}
    heap: list[tuple[float, int, int]] = [(0.0, s, s) for s in sources]
    while heap:
        d, node, src = heappop(heap)
        if node in dist:
            continue
        if d > max_distance:
            break
        dist[node] = d
        owner[node] = src
        for idx in range(offsets[node], offsets[node + 1]):
            nxt = adj_targets[idx]
            if nxt not in dist:
                heappush(heap, (d + adj_weights[idx], nxt, src))
    return dist, owner


def dijkstra_expansion(
    network: RoadNetwork, source: int
) -> Iterator[tuple[int, float]]:
    """Lazily yield ``(node, distance)`` in non-decreasing distance order.

    This is the primitive behind the Dijkstra kNN solution: the consumer
    pulls settled nodes one at a time and stops as soon as it has found
    ``k`` objects, so the graph is explored "just enough" (Section II).
    """
    offsets, adj_targets, adj_weights = network.csr
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        yield node, d
        for idx in range(offsets[node], offsets[node + 1]):
            nxt = adj_targets[idx]
            if nxt not in settled:
                heappush(heap, (d + adj_weights[idx], nxt))


def pairwise_distances(
    network: RoadNetwork, sources: Sequence[int], targets: Sequence[int]
) -> list[list[float]]:
    """Dense ``len(sources) x len(targets)`` network-distance matrix.

    Runs one truncated Dijkstra per source, each stopping after all
    targets are settled.  This is the workhorse for building border
    distance matrices in G-tree / V-tree.
    """
    target_list = list(targets)
    matrix: list[list[float]] = []
    for source in sources:
        dist = dijkstra(network, source, targets=target_list)
        matrix.append([dist.get(t, INFINITY) for t in target_list])
    return matrix


def eccentricity(network: RoadNetwork, node: int) -> float:
    """Greatest finite distance from ``node`` (diagnostic helper)."""
    dist = dijkstra(network, node)
    return max(dist.values(), default=0.0)

"""Road-network graph store.

A road network is modelled, exactly as in the paper, as an undirected
weighted graph whose nodes are road junctions and whose edges are road
segments.  The class below is the substrate shared by every kNN solution
in :mod:`repro.knn` — the paper notes (end of Section III) that the road
network index is *shared* by all cores while only the object set is
partitioned, so a single immutable :class:`RoadNetwork` instance backs
every worker in the MPR machinery.

The adjacency is stored in CSR (compressed sparse row) form twice over:

* contiguous **numpy arrays** (``int32`` indptr/indices, ``float64``
  weights and coordinates) built once at construction — the substrate
  for the vectorized kernels in :mod:`repro.graph.kernels` and for the
  zero-copy shared-memory publication in :mod:`repro.graph.shared`;
* plain **Python lists** mirroring the arrays, kept for the classic
  ``heapq`` engines whose inner loops index lists faster than arrays.

Networks built the normal way carry both representations; networks
attached from shared memory (:meth:`RoadNetwork.from_csr_arrays`) carry
only the arrays and materialize the list mirror lazily on first use, so
a worker that sticks to the kernel path never copies the graph at all.

Networks attached from a disk cache (:meth:`RoadNetwork.open_cache`) or
from shared memory go one step further: their list/dict mirrors are
*guarded* — touching ``csr``, ``neighbors``, ``edges`` or
``coordinates`` raises :class:`MirrorMaterializationError` instead of
silently spending O(n) time and memory turning a continental-scale
memmap into Python lists.  Call :meth:`RoadNetwork.allow_mirrors` to
opt in explicitly where the cost is intended.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cache import GraphCacheMeta
    from .kernels import CSRKernels


class MirrorMaterializationError(RuntimeError):
    """A guarded network was asked to build its O(n) Python mirrors.

    Raised by list/dict accessors (``csr``, ``neighbors``, ``edges``,
    ``coordinates``, …) on networks attached from a memmap cache or a
    shared-memory segment, where materializing Python containers would
    copy the whole graph into the process.  Kernel-backed callers should
    use :attr:`RoadNetwork.csr_arrays` / :attr:`RoadNetwork.coord_arrays`
    instead; callers that genuinely need lists opt in via
    :meth:`RoadNetwork.allow_mirrors`.
    """


@dataclass(frozen=True)
class Edge:
    """A single undirected road segment."""

    u: int
    v: int
    weight: float

    def endpoints(self) -> tuple[int, int]:
        return (self.u, self.v)


class RoadNetwork:
    """An immutable undirected weighted graph in CSR form.

    Parameters
    ----------
    num_nodes:
        Number of junctions; nodes are the integers ``0 .. num_nodes-1``.
    edges:
        Iterable of ``(u, v, weight)`` triples.  Parallel edges are
        collapsed to the minimum weight; self loops are rejected.
    coordinates:
        Optional ``(x, y)`` pair per node (used by IER's Euclidean lower
        bounds and by the generators).  When omitted, all coordinates
        default to ``(0.0, 0.0)``.
    name:
        Human-readable label (e.g. ``"BJ"``), carried into reports.
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[tuple[int, int, float]],
        coordinates: Sequence[tuple[float, float]] | None = None,
        name: str = "road-network",
    ) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
        self._num_nodes = num_nodes
        self._name = name

        best: dict[tuple[int, int], float] = {}
        for u, v, w in edges:
            self._check_endpoint(u)
            self._check_endpoint(v)
            if u == v:
                raise ValueError(f"self loop on node {u} is not allowed")
            if w <= 0:
                raise ValueError(f"edge ({u}, {v}) has non-positive weight {w}")
            key = (u, v) if u < v else (v, u)
            prior = best.get(key)
            if prior is None or w < prior:
                best[key] = float(w)

        degree = [0] * num_nodes
        for (u, v) in best:
            degree[u] += 1
            degree[v] += 1

        offsets = [0] * (num_nodes + 1)
        for node in range(num_nodes):
            offsets[node + 1] = offsets[node] + degree[node]
        targets = [0] * (2 * len(best))
        weights = [0.0] * (2 * len(best))
        cursor = offsets[:-1].copy()
        for (u, v), w in best.items():
            targets[cursor[u]] = v
            weights[cursor[u]] = w
            cursor[u] += 1
            targets[cursor[v]] = u
            weights[cursor[v]] = w
            cursor[v] += 1

        self._offsets: list[int] | None = offsets
        self._targets: list[int] | None = targets
        self._weights: list[float] | None = weights
        self._edge_set: dict[tuple[int, int], float] | None = best
        self._first_seen: tuple[np.ndarray, ...] | None = None

        if coordinates is None:
            self._coordinates: list[tuple[float, float]] | None = (
                [(0.0, 0.0)] * num_nodes
            )
        else:
            coords = [(float(x), float(y)) for x, y in coordinates]
            if len(coords) != num_nodes:
                raise ValueError(
                    f"expected {num_nodes} coordinate pairs, got {len(coords)}"
                )
            self._coordinates = coords

        self._indptr = np.asarray(offsets, dtype=np.int32)
        self._indices = np.asarray(targets, dtype=np.int32)
        self._weight_arr = np.asarray(weights, dtype=np.float64)
        self._coord_arr = np.asarray(
            self._coordinates, dtype=np.float64
        ).reshape(num_nodes, 2)
        self._mirrors_allowed = True
        self._init_runtime_state()

    def _init_runtime_state(self) -> None:
        """Per-instance, non-picklable bits (thread-local kernels, shm)."""
        self._tls = threading.local()
        #: Shared-memory publication token (see :mod:`repro.graph.shared`);
        #: when set, pickling this network ships the token, not the arrays.
        self._shared_meta = None
        #: Keep-alive reference to an attached SharedMemory segment.
        self._shm = None
        #: Disk-cache attach token (see :mod:`repro.graph.cache`); when
        #: set, pickling ships the token and receivers re-memmap files.
        self._cache_meta = None

    # ------------------------------------------------------------------
    # Alternative constructors (vectorized / zero-copy)
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_arrays(
        cls,
        num_nodes: int,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray,
        coordinates: np.ndarray | Sequence[tuple[float, float]] | None = None,
        name: str = "road-network",
    ) -> "RoadNetwork":
        """Vectorized constructor from parallel edge arrays.

        Produces a network *identical* to ``RoadNetwork(num_nodes,
        zip(u, v, w), ...)`` — same dedup (first-seen key order, minimum
        weight), same CSR neighbor order, same error behavior — but with
        all per-edge work done in numpy.  This is the batch path used by
        :func:`repro.graph.io.load_dimacs`.
        """
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
        u = np.ascontiguousarray(u, dtype=np.int64)
        v = np.ascontiguousarray(v, dtype=np.int64)
        w = np.ascontiguousarray(w, dtype=np.float64)
        if not (len(u) == len(v) == len(w)):
            raise ValueError("u, v, w arrays must have equal length")

        # Vectorized validation, reporting the first offender with the
        # same messages as the scalar constructor.
        bad = (u < 0) | (u >= num_nodes)
        if bad.any():
            node = int(u[int(np.argmax(bad))])
            raise IndexError(
                f"node {node} out of range for graph with {num_nodes} nodes"
            )
        bad = (v < 0) | (v >= num_nodes)
        if bad.any():
            node = int(v[int(np.argmax(bad))])
            raise IndexError(
                f"node {node} out of range for graph with {num_nodes} nodes"
            )
        loops = u == v
        if loops.any():
            node = int(u[int(np.argmax(loops))])
            raise ValueError(f"self loop on node {node} is not allowed")
        nonpos = w <= 0
        if nonpos.any():
            at = int(np.argmax(nonpos))
            raise ValueError(
                f"edge ({int(u[at])}, {int(v[at])}) has non-positive "
                f"weight {w[at]}"
            )

        # Dedup to first-seen (min(u,v), max(u,v)) keys with min weight.
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        key = lo * max(num_nodes, 1) + hi
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        first = np.empty(len(key_sorted), dtype=bool)
        if len(key_sorted):
            first[0] = True
            np.not_equal(key_sorted[1:], key_sorted[:-1], out=first[1:])
        group_starts = np.flatnonzero(first)
        if len(group_starts):
            w_min = np.minimum.reduceat(w[order], group_starts)
        else:
            w_min = np.empty(0, dtype=np.float64)
        first_pos = order[group_starts]  # first occurrence of each key
        seen_order = np.argsort(first_pos, kind="stable")
        edge_u = lo[first_pos][seen_order]
        edge_v = hi[first_pos][seen_order]
        edge_w = w_min[seen_order]

        # Interleave the two directed arcs of each edge so that a stable
        # sort by source reproduces the scalar constructor's per-node
        # neighbor order exactly.
        num_undirected = len(edge_u)
        src = np.empty(2 * num_undirected, dtype=np.int64)
        dst = np.empty(2 * num_undirected, dtype=np.int64)
        wt = np.empty(2 * num_undirected, dtype=np.float64)
        src[0::2], src[1::2] = edge_u, edge_v
        dst[0::2], dst[1::2] = edge_v, edge_u
        wt[0::2] = wt[1::2] = edge_w
        arc_order = np.argsort(src, kind="stable")

        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        if num_undirected:
            counts = np.bincount(src, minlength=num_nodes)
            np.cumsum(counts, out=indptr[1:])

        if coordinates is None:
            coord_arr = np.zeros((num_nodes, 2), dtype=np.float64)
        else:
            coord_arr = np.asarray(coordinates, dtype=np.float64)
            if coord_arr.shape != (num_nodes, 2):
                raise ValueError(
                    f"expected {num_nodes} coordinate pairs, "
                    f"got {len(coord_arr)}"
                )
        net = cls.from_csr_arrays(
            indptr.astype(np.int32),
            dst[arc_order].astype(np.int32),
            wt[arc_order],
            coordinates=coord_arr,
            name=name,
        )
        # Remember the first-seen dedup order so the edge dict (built
        # lazily on first use) iterates edges exactly as the scalar
        # constructor's would — save_dimacs round trips depend on it.
        net._first_seen = (edge_u, edge_v, edge_w)
        return net

    @classmethod
    def from_csr_arrays(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        coordinates: np.ndarray | None = None,
        name: str = "road-network",
        allow_mirrors: bool = True,
    ) -> "RoadNetwork":
        """Wrap existing CSR arrays without copying them.

        The arrays are adopted as-is (e.g. views into a shared-memory
        segment or a memmapped cache); the Python-list mirror and the
        edge dict are derived lazily on first use.  The caller is
        responsible for the arrays being a valid symmetric CSR
        adjacency.  With ``allow_mirrors=False`` the lazy mirrors are
        guarded: any accessor that would materialize O(n) Python
        containers raises :class:`MirrorMaterializationError` until
        :meth:`allow_mirrors` is called.
        """
        net = cls.__new__(cls)
        net._num_nodes = int(len(indptr) - 1)
        net._name = name
        net._indptr = np.asarray(indptr, dtype=np.int32)
        net._indices = np.asarray(indices, dtype=np.int32)
        net._weight_arr = np.asarray(weights, dtype=np.float64)
        if coordinates is None:
            net._coord_arr = np.zeros((net._num_nodes, 2), dtype=np.float64)
        else:
            net._coord_arr = np.asarray(coordinates, dtype=np.float64).reshape(
                net._num_nodes, 2
            )
        net._offsets = None
        net._targets = None
        net._weights = None
        net._edge_set = None
        net._first_seen = None
        net._coordinates = None
        net._mirrors_allowed = bool(allow_mirrors)
        net._init_runtime_state()
        return net

    # ------------------------------------------------------------------
    # Lazy mirrors
    # ------------------------------------------------------------------
    def allow_mirrors(self) -> "RoadNetwork":
        """Opt this network in to O(n) Python list/dict mirrors.

        Guarded networks (memmap-cache or shared-memory attached) raise
        :class:`MirrorMaterializationError` from list-backed accessors;
        calling this declares the materialization cost is intended (e.g.
        a ``heapq`` engine on a small attached graph).  Returns ``self``
        so it chains: ``network.allow_mirrors().csr``.
        """
        self._mirrors_allowed = True
        return self

    @property
    def mirrors_allowed(self) -> bool:
        """Whether O(n) Python mirrors may be materialized lazily."""
        return self._mirrors_allowed

    def _check_mirrors(self, what: str) -> None:
        if not self._mirrors_allowed:
            raise MirrorMaterializationError(
                f"materializing {what} on guarded network {self._name!r} "
                f"({self._num_nodes} nodes) would copy the whole graph "
                "into Python containers; use the csr_arrays/coord_arrays "
                "kernel path, or opt in via RoadNetwork.allow_mirrors()"
            )

    def _ensure_lists(self) -> tuple[list[int], list[int], list[float]]:
        if self._offsets is None:
            self._check_mirrors("CSR list mirrors")
            self._offsets = self._indptr.tolist()
            self._targets = self._indices.tolist()
            self._weights = self._weight_arr.tolist()
        return self._offsets, self._targets, self._weights  # type: ignore[return-value]

    def _edge_dict(self) -> dict[tuple[int, int], float]:
        if self._edge_set is None:
            self._check_mirrors("the edge dict")
            if self._first_seen is not None:
                edge_u, edge_v, edge_w = self._first_seen
                self._edge_set = dict(
                    zip(
                        zip(edge_u.tolist(), edge_v.tolist()),
                        edge_w.tolist(),
                    )
                )
            else:
                # Derive the undirected edge dict from CSR (each edge
                # appears twice); without a recorded first-seen order the
                # iteration order is CSR order.
                counts = np.diff(self._indptr.astype(np.int64))
                srcs = np.repeat(
                    np.arange(self._num_nodes, dtype=np.int64), counts
                )
                mask = srcs < self._indices
                self._edge_set = dict(
                    zip(
                        zip(srcs[mask].tolist(), self._indices[mask].tolist()),
                        self._weight_arr[mask].tolist(),
                    )
                )
        return self._edge_set

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each counted once)."""
        return len(self._indices) // 2

    def nodes(self) -> range:
        return range(self._num_nodes)

    def degree(self, node: int) -> int:
        self._check_endpoint(node)
        return int(self._indptr[node + 1] - self._indptr[node])

    def neighbors(self, node: int) -> Iterator[tuple[int, float]]:
        """Yield ``(neighbor, weight)`` pairs for ``node``."""
        self._check_endpoint(node)
        offsets, targets, weights = self._ensure_lists()
        start, end = offsets[node], offsets[node + 1]
        for idx in range(start, end):
            yield targets[idx], weights[idx]

    def neighbor_slices(self, node: int) -> tuple[list[int], list[float]]:
        """Return the raw CSR slices for ``node`` (hot-loop friendly)."""
        offsets, targets, weights = self._ensure_lists()
        start, end = offsets[node], offsets[node + 1]
        return targets[start:end], weights[start:end]

    @property
    def csr(self) -> tuple[list[int], list[int], list[float]]:
        """The raw ``(offsets, targets, weights)`` lists, shared not copied.

        Exposed for the classic ``heapq`` shortest-path engines, whose
        inner loops index Python lists directly.  The numpy counterpart
        is :attr:`csr_arrays`.
        """
        return self._ensure_lists()

    @property
    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The contiguous ``(indptr, indices, weights)`` numpy arrays.

        ``indptr``/``indices`` are ``int32``, ``weights`` ``float64``.
        These are the arrays the vectorized kernels run on and the exact
        buffers published to workers via shared memory — treat them as
        immutable.
        """
        return self._indptr, self._indices, self._weight_arr

    @property
    def coord_arrays(self) -> np.ndarray:
        """Node coordinates as a contiguous ``(num_nodes, 2)`` float64 array."""
        return self._coord_arr

    @property
    def kernels(self) -> "CSRKernels":
        """A per-thread :class:`~repro.graph.kernels.CSRKernels` instance.

        Kernels reuse preallocated distance/bucket buffers across calls,
        so one instance must never be driven from two threads; this
        property hands every thread its own instance over the same
        (shared, immutable) CSR arrays.
        """
        kern = getattr(self._tls, "kernels", None)
        if kern is None:
            from .kernels import CSRKernels

            kern = CSRKernels(self._indptr, self._indices, self._weight_arr)
            self._tls.kernels = kern
        return kern

    def edges(self) -> Iterator[Edge]:
        for (u, v), w in self._edge_dict().items():
            yield Edge(u, v, w)

    def has_edge(self, u: int, v: int) -> bool:
        key = (u, v) if u < v else (v, u)
        return key in self._edge_dict()

    def edge_weight(self, u: int, v: int) -> float:
        key = (u, v) if u < v else (v, u)
        try:
            return self._edge_dict()[key]
        except KeyError:
            raise KeyError(f"no edge between {u} and {v}") from None

    def coordinate(self, node: int) -> tuple[float, float]:
        self._check_endpoint(node)
        if self._coordinates is not None:
            return self._coordinates[node]
        return (float(self._coord_arr[node, 0]), float(self._coord_arr[node, 1]))

    @property
    def coordinates(self) -> list[tuple[float, float]]:
        if self._coordinates is None:
            self._check_mirrors("the coordinate list")
            self._coordinates = [
                (float(x), float(y)) for x, y in self._coord_arr.tolist()
            ]
        return list(self._coordinates)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def connected_components(self) -> list[list[int]]:
        """Connected components as lists of nodes (BFS, iterative)."""
        seen = [False] * self._num_nodes
        components: list[list[int]] = []
        offsets, targets, _ = self._ensure_lists()
        for root in range(self._num_nodes):
            if seen[root]:
                continue
            seen[root] = True
            component = [root]
            frontier = [root]
            while frontier:
                node = frontier.pop()
                for idx in range(offsets[node], offsets[node + 1]):
                    nxt = targets[idx]
                    if not seen[nxt]:
                        seen[nxt] = True
                        component.append(nxt)
                        frontier.append(nxt)
            components.append(component)
        return components

    def is_connected(self) -> bool:
        if self._num_nodes <= 1:
            return True
        return len(self.connected_components()) == 1

    def largest_component_subgraph(self) -> "RoadNetwork":
        """Return the subgraph induced by the largest connected component.

        Node ids are compacted to ``0 .. len(component)-1``; the mapping is
        deterministic (sorted by original id).
        """
        components = self.connected_components()
        if not components:
            return RoadNetwork(0, [], name=self._name)
        largest = sorted(max(components, key=len))
        return self.induced_subgraph(largest)

    def induced_subgraph(self, nodes: Sequence[int]) -> "RoadNetwork":
        """Subgraph induced by ``nodes`` with ids compacted in given order."""
        remap = {node: idx for idx, node in enumerate(nodes)}
        if len(remap) != len(nodes):
            raise ValueError("duplicate nodes in induced_subgraph")
        sub_edges = []
        for (u, v), w in self._edge_dict().items():
            iu, iv = remap.get(u), remap.get(v)
            if iu is not None and iv is not None:
                sub_edges.append((iu, iv, w))
        coords = [self.coordinate(node) for node in nodes]
        return RoadNetwork(len(nodes), sub_edges, coordinates=coords, name=self._name)

    def average_degree(self) -> float:
        if self._num_nodes == 0:
            return 0.0
        return 2.0 * self.num_edges / self._num_nodes

    def total_weight(self) -> float:
        return sum(self._edge_dict().values())

    # ------------------------------------------------------------------
    # Disk cache (memmap tier; see :mod:`repro.graph.cache`)
    # ------------------------------------------------------------------
    def save_cache(self, directory) -> "GraphCacheMeta":
        """Write this network's CSR arrays as a memmappable disk cache.

        See :func:`repro.graph.cache.save_cache`.  Build once, then
        :meth:`open_cache` attaches in O(1) regardless of graph size.
        """
        from .cache import save_cache

        return save_cache(self, directory)

    @classmethod
    def open_cache(
        cls, directory, *, verify: bool = False
    ) -> "RoadNetwork":
        """Attach a cache written by :meth:`save_cache` via ``np.memmap``.

        O(1) in graph size: only the manifest is read eagerly; array
        pages fault in on demand.  The returned network is mirror-
        guarded and re-pickles as a tiny attach token, so handing it to
        :class:`~repro.mpr.ProcessPoolService` lets every worker map the
        same files instead of copying segments.
        """
        from .cache import open_cache

        return open_cache(directory, verify=verify)

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __reduce__(self):
        if self._shared_meta is not None:
            # Published to shared memory: ship the (tiny) token; the
            # receiving process re-attaches zero-copy.
            from .shared import attach_shared_graph

            return (attach_shared_graph, (self._shared_meta,))
        if self._cache_meta is not None:
            # Attached from a disk cache: ship the token; the receiver
            # re-memmaps the same files in O(1).
            from .cache import attach_cached_graph

            return (attach_cached_graph, (self._cache_meta,))
        state = self.__dict__.copy()
        for transient in ("_tls", "_shared_meta", "_shm", "_cache_meta"):
            state.pop(transient, None)
        return (_rebuild_network, (state,))

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoadNetwork(name={self._name!r}, nodes={self._num_nodes}, "
            f"edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoadNetwork):
            return NotImplemented
        if self._num_nodes != other._num_nodes:
            return False
        if not (self._mirrors_allowed and other._mirrors_allowed):
            # Guarded side(s): compare the canonical CSR arrays instead
            # of materializing O(n) dict mirrors.  Attached copies are
            # byte-identical to their source, so this stays an
            # equivalence for every graph this repo constructs.
            return (
                np.array_equal(self._indptr, other._indptr)
                and np.array_equal(self._indices, other._indices)
                and np.array_equal(self._weight_arr, other._weight_arr)
                and np.array_equal(self._coord_arr, other._coord_arr)
            )
        return (
            self._edge_dict() == other._edge_dict()
            and self.coordinates == other.coordinates
        )

    def __hash__(self) -> int:  # frozen enough for dict keys by identity
        return id(self)

    def _check_endpoint(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise IndexError(
                f"node {node} out of range for graph with {self._num_nodes} nodes"
            )


def _rebuild_network(state: dict) -> RoadNetwork:
    """Unpickle helper: restore state and recreate the transient bits."""
    net = RoadNetwork.__new__(RoadNetwork)
    net.__dict__.update(state)
    net._init_runtime_state()
    return net

"""Road-network graph store.

A road network is modelled, exactly as in the paper, as an undirected
weighted graph whose nodes are road junctions and whose edges are road
segments.  The class below is the substrate shared by every kNN solution
in :mod:`repro.knn` — the paper notes (end of Section III) that the road
network index is *shared* by all cores while only the object set is
partitioned, so a single immutable :class:`RoadNetwork` instance backs
every worker in the MPR machinery.

The adjacency is stored in CSR (compressed sparse row) form using plain
Python lists of primitives, which keeps Dijkstra inner loops cheap and
the memory footprint predictable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True)
class Edge:
    """A single undirected road segment."""

    u: int
    v: int
    weight: float

    def endpoints(self) -> tuple[int, int]:
        return (self.u, self.v)


class RoadNetwork:
    """An immutable undirected weighted graph in CSR form.

    Parameters
    ----------
    num_nodes:
        Number of junctions; nodes are the integers ``0 .. num_nodes-1``.
    edges:
        Iterable of ``(u, v, weight)`` triples.  Parallel edges are
        collapsed to the minimum weight; self loops are rejected.
    coordinates:
        Optional ``(x, y)`` pair per node (used by IER's Euclidean lower
        bounds and by the generators).  When omitted, all coordinates
        default to ``(0.0, 0.0)``.
    name:
        Human-readable label (e.g. ``"BJ"``), carried into reports.
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[tuple[int, int, float]],
        coordinates: Sequence[tuple[float, float]] | None = None,
        name: str = "road-network",
    ) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
        self._num_nodes = num_nodes
        self._name = name

        best: dict[tuple[int, int], float] = {}
        for u, v, w in edges:
            self._check_endpoint(u)
            self._check_endpoint(v)
            if u == v:
                raise ValueError(f"self loop on node {u} is not allowed")
            if w <= 0:
                raise ValueError(f"edge ({u}, {v}) has non-positive weight {w}")
            key = (u, v) if u < v else (v, u)
            prior = best.get(key)
            if prior is None or w < prior:
                best[key] = float(w)

        degree = [0] * num_nodes
        for (u, v) in best:
            degree[u] += 1
            degree[v] += 1

        offsets = [0] * (num_nodes + 1)
        for node in range(num_nodes):
            offsets[node + 1] = offsets[node] + degree[node]
        targets = [0] * (2 * len(best))
        weights = [0.0] * (2 * len(best))
        cursor = offsets[:-1].copy()
        for (u, v), w in best.items():
            targets[cursor[u]] = v
            weights[cursor[u]] = w
            cursor[u] += 1
            targets[cursor[v]] = u
            weights[cursor[v]] = w
            cursor[v] += 1

        self._offsets = offsets
        self._targets = targets
        self._weights = weights
        self._edge_set = best

        if coordinates is None:
            self._coordinates: list[tuple[float, float]] = [(0.0, 0.0)] * num_nodes
        else:
            coords = [(float(x), float(y)) for x, y in coordinates]
            if len(coords) != num_nodes:
                raise ValueError(
                    f"expected {num_nodes} coordinate pairs, got {len(coords)}"
                )
            self._coordinates = coords

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each counted once)."""
        return len(self._edge_set)

    def nodes(self) -> range:
        return range(self._num_nodes)

    def degree(self, node: int) -> int:
        self._check_endpoint(node)
        return self._offsets[node + 1] - self._offsets[node]

    def neighbors(self, node: int) -> Iterator[tuple[int, float]]:
        """Yield ``(neighbor, weight)`` pairs for ``node``."""
        self._check_endpoint(node)
        start, end = self._offsets[node], self._offsets[node + 1]
        targets, weights = self._targets, self._weights
        for idx in range(start, end):
            yield targets[idx], weights[idx]

    def neighbor_slices(self, node: int) -> tuple[list[int], list[float]]:
        """Return the raw CSR slices for ``node`` (hot-loop friendly)."""
        start, end = self._offsets[node], self._offsets[node + 1]
        return self._targets[start:end], self._weights[start:end]

    @property
    def csr(self) -> tuple[list[int], list[int], list[float]]:
        """The raw ``(offsets, targets, weights)`` arrays, shared not copied.

        Exposed for the shortest-path engines, whose inner loops index the
        arrays directly rather than paying generator overhead.
        """
        return self._offsets, self._targets, self._weights

    def edges(self) -> Iterator[Edge]:
        for (u, v), w in self._edge_set.items():
            yield Edge(u, v, w)

    def has_edge(self, u: int, v: int) -> bool:
        key = (u, v) if u < v else (v, u)
        return key in self._edge_set

    def edge_weight(self, u: int, v: int) -> float:
        key = (u, v) if u < v else (v, u)
        try:
            return self._edge_set[key]
        except KeyError:
            raise KeyError(f"no edge between {u} and {v}") from None

    def coordinate(self, node: int) -> tuple[float, float]:
        self._check_endpoint(node)
        return self._coordinates[node]

    @property
    def coordinates(self) -> list[tuple[float, float]]:
        return list(self._coordinates)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def connected_components(self) -> list[list[int]]:
        """Connected components as lists of nodes (BFS, iterative)."""
        seen = [False] * self._num_nodes
        components: list[list[int]] = []
        offsets, targets = self._offsets, self._targets
        for root in range(self._num_nodes):
            if seen[root]:
                continue
            seen[root] = True
            component = [root]
            frontier = [root]
            while frontier:
                node = frontier.pop()
                for idx in range(offsets[node], offsets[node + 1]):
                    nxt = targets[idx]
                    if not seen[nxt]:
                        seen[nxt] = True
                        component.append(nxt)
                        frontier.append(nxt)
            components.append(component)
        return components

    def is_connected(self) -> bool:
        if self._num_nodes <= 1:
            return True
        return len(self.connected_components()) == 1

    def largest_component_subgraph(self) -> "RoadNetwork":
        """Return the subgraph induced by the largest connected component.

        Node ids are compacted to ``0 .. len(component)-1``; the mapping is
        deterministic (sorted by original id).
        """
        components = self.connected_components()
        if not components:
            return RoadNetwork(0, [], name=self._name)
        largest = sorted(max(components, key=len))
        return self.induced_subgraph(largest)

    def induced_subgraph(self, nodes: Sequence[int]) -> "RoadNetwork":
        """Subgraph induced by ``nodes`` with ids compacted in given order."""
        remap = {node: idx for idx, node in enumerate(nodes)}
        if len(remap) != len(nodes):
            raise ValueError("duplicate nodes in induced_subgraph")
        sub_edges = []
        for (u, v), w in self._edge_set.items():
            iu, iv = remap.get(u), remap.get(v)
            if iu is not None and iv is not None:
                sub_edges.append((iu, iv, w))
        coords = [self._coordinates[node] for node in nodes]
        return RoadNetwork(len(nodes), sub_edges, coordinates=coords, name=self._name)

    def average_degree(self) -> float:
        if self._num_nodes == 0:
            return 0.0
        return 2.0 * self.num_edges / self._num_nodes

    def total_weight(self) -> float:
        return sum(self._edge_set.values())

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoadNetwork(name={self._name!r}, nodes={self._num_nodes}, "
            f"edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoadNetwork):
            return NotImplemented
        return (
            self._num_nodes == other._num_nodes
            and self._edge_set == other._edge_set
            and self._coordinates == other._coordinates
        )

    def __hash__(self) -> int:  # frozen enough for dict keys by identity
        return id(self)

    def _check_endpoint(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise IndexError(
                f"node {node} out of range for graph with {self._num_nodes} nodes"
            )

"""Road-network substrate: graph store, generators, I/O, search, partitioning.

The package top level re-exports the *public* surface only.  Kernel
internals — the vectorized CSR kernels, the heapq reference searches
they are validated against, and their activation threshold — live in
:mod:`repro.graph.kernels` and :mod:`repro.graph.shortest_path`; import
them from those modules directly.
"""

from .road_network import Edge, MirrorMaterializationError, RoadNetwork
from .cache import (
    CacheError,
    CHCacheMeta,
    GraphCacheMeta,
    attach_cached_ch,
    attach_cached_graph,
    cache_has_ch,
    cache_info,
    load_cached_ch,
    open_cache,
    save_cache,
    save_ch_cache,
)
from .ch import (
    CHKernels,
    ContractionHierarchy,
    build_core_labels,
    calibrate_ch_cutoff,
)
from .generators import (
    DEFAULT_SCALE,
    TABLE1_NETWORKS,
    NetworkSpec,
    generate_pois,
    grid_network,
    random_geometric_network,
    ring_radial_network,
    scaled_replica,
)
from .io import FormatError, load_dimacs, load_edge_list, save_dimacs
from .shared import (
    SharedGraph,
    SharedGraphMeta,
    attach_shared_graph,
    publish_shared_graph,
)
from .metrics import (
    NetworkMetrics,
    compute_metrics,
    cut_fraction,
    degree_histogram,
    estimate_diameter,
)
from .partition import border_nodes, cut_edges, part_sizes, partition_graph
from .routing import Route, detour_factor, route_length, routes_to_neighbors, shortest_route
from .spatial import NodeLocator
from .shortest_path import (
    INFINITY,
    astar_distance,
    dijkstra,
    dijkstra_expansion,
    dijkstra_with_paths,
    multi_source_dijkstra,
    pairwise_distances,
    reconstruct_path,
    shortest_path_distance,
)

__all__ = [
    "Edge",
    "MirrorMaterializationError",
    "RoadNetwork",
    "CacheError",
    "CHCacheMeta",
    "GraphCacheMeta",
    "attach_cached_ch",
    "attach_cached_graph",
    "cache_has_ch",
    "cache_info",
    "load_cached_ch",
    "open_cache",
    "save_cache",
    "save_ch_cache",
    "CHKernels",
    "ContractionHierarchy",
    "build_core_labels",
    "calibrate_ch_cutoff",
    "DEFAULT_SCALE",
    "TABLE1_NETWORKS",
    "NetworkSpec",
    "generate_pois",
    "grid_network",
    "random_geometric_network",
    "ring_radial_network",
    "scaled_replica",
    "FormatError",
    "load_dimacs",
    "load_edge_list",
    "save_dimacs",
    "SharedGraph",
    "SharedGraphMeta",
    "attach_shared_graph",
    "publish_shared_graph",
    "NetworkMetrics",
    "compute_metrics",
    "cut_fraction",
    "degree_histogram",
    "estimate_diameter",
    "Route",
    "detour_factor",
    "route_length",
    "routes_to_neighbors",
    "shortest_route",
    "NodeLocator",
    "border_nodes",
    "cut_edges",
    "part_sizes",
    "partition_graph",
    "INFINITY",
    "astar_distance",
    "dijkstra",
    "dijkstra_expansion",
    "dijkstra_with_paths",
    "multi_source_dijkstra",
    "pairwise_distances",
    "reconstruct_path",
    "shortest_path_distance",
]

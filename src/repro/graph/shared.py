"""Zero-copy shared-memory publication of road-network CSR arrays.

MPR's premise (end of Section III) is that the road-network index is
*shared* by all cores while only the object set is partitioned.  For
the process pool that sharing used to be realized by ``fork``
copy-on-write at best and by pickling the whole graph per worker under
``spawn`` at worst.  This module makes the sharing literal: the CSR
arrays are copied once into a :class:`multiprocessing.shared_memory`
segment, and every worker — forked, spawned, or respawned after a
crash — maps the same pages read-only.

Lifecycle
---------
* :func:`publish_shared_graph` copies a network's arrays into a fresh
  segment and stamps the network with a small *token*
  (:class:`SharedGraphMeta`).  From then on, pickling that network (or
  any solution holding it) ships the token instead of the arrays — see
  ``RoadNetwork.__reduce__``.
* :func:`attach_shared_graph` (run in the receiving process during
  unpickling) maps the segment and wraps the views via
  ``RoadNetwork.from_csr_arrays`` — no bytes are copied.  Attached
  arrays are marked read-only; attachers never unlink.
* The publisher — in practice :class:`repro.mpr.ProcessPoolService`'s
  close path — calls :meth:`SharedGraph.close`, which unlinks the
  segment and removes the token so later pickles fall back to by-value.
  A ``weakref.finalize`` guard unlinks on interpreter exit if the owner
  forgot, so crashed benchmarks do not leak ``/dev/shm`` segments.

The segment layout is four aligned regions (indptr ``int32``, indices
``int32``, weights ``float64``, coordinates ``float64``) described
entirely by the token, so attaching needs no handshake with the
publisher.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from .road_network import RoadNetwork

__all__ = [
    "SharedGraph",
    "SharedGraphMeta",
    "attach_shared_graph",
    "publish_shared_graph",
]

_ALIGN = 8


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class SharedGraphMeta:
    """The picklable token describing one published graph segment."""

    shm_name: str
    num_nodes: int
    num_arcs: int  # directed arcs = 2 * undirected edges
    name: str
    owner_pid: int  # publisher's pid: attaches elsewhere must untrack

    def _layout(self) -> tuple[tuple[int, int, int, int], int]:
        """Byte offsets of (indptr, indices, weights, coords) + total."""
        indptr_off = 0
        indices_off = _aligned(indptr_off + 4 * (self.num_nodes + 1))
        weights_off = _aligned(indices_off + 4 * self.num_arcs)
        coords_off = _aligned(weights_off + 8 * self.num_arcs)
        total = _aligned(coords_off + 16 * self.num_nodes)
        return (indptr_off, indices_off, weights_off, coords_off), total


class SharedGraph:
    """Owner-side handle for one published network (create → unlink)."""

    def __init__(self, network: RoadNetwork) -> None:
        indptr, indices, weights = network.csr_arrays
        coords = network.coord_arrays
        meta = SharedGraphMeta(
            shm_name="",  # patched below once the segment exists
            num_nodes=network.num_nodes,
            num_arcs=len(indices),
            name=network.name,
            owner_pid=os.getpid(),
        )
        (_, _, _, _), total = meta._layout()
        self._shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        self.meta = SharedGraphMeta(
            shm_name=self._shm.name,
            num_nodes=meta.num_nodes,
            num_arcs=meta.num_arcs,
            name=meta.name,
            owner_pid=meta.owner_pid,
        )
        offsets, _ = self.meta._layout()
        views = _views(self._shm, self.meta, offsets, writeable=True)
        views[0][:] = indptr
        views[1][:] = indices
        views[2][:] = weights
        views[3][:] = coords
        self._network_ref = weakref.ref(network)
        network._shared_meta = self.meta
        self._closed = False
        # Safety net: unlink at interpreter exit if the owner never
        # closed (e.g. a benchmark that crashed mid-run).
        self._finalizer = weakref.finalize(
            self, _cleanup_segment, self._shm
        )

    def close(self) -> None:
        """Unlink the segment and strip the token off the network.

        Idempotent.  After this, pickling the network falls back to
        by-value and no new worker can attach; workers already mapped
        keep their (anonymous, now unlinked) pages until they exit.
        """
        if self._closed:
            return
        self._closed = True
        network = self._network_ref()
        if network is not None and network._shared_meta is self.meta:
            network._shared_meta = None
        self._finalizer.detach()
        _cleanup_segment(self._shm)


def publish_shared_graph(network: RoadNetwork) -> SharedGraph:
    """Copy ``network``'s CSR arrays into shared memory and tag it.

    Returns the owning handle; call :meth:`SharedGraph.close` when the
    last consumer is gone.  Publishing an already-published network
    raises — one token slot per instance keeps ownership unambiguous.
    """
    if network._shared_meta is not None:
        raise RuntimeError(
            f"network {network.name!r} is already published to shared memory"
        )
    return SharedGraph(network)


def attach_shared_graph(meta: SharedGraphMeta) -> RoadNetwork:
    """Map a published segment and wrap it as a zero-copy RoadNetwork.

    This is the unpickle hook of a published network: it runs inside
    worker processes.  The returned network holds the mapping open for
    its lifetime and re-pickles as the same token (so nested spawns
    keep working); it never unlinks the segment.
    """
    shm = _open_attached(meta.shm_name, borrower=os.getpid() != meta.owner_pid)
    offsets, _ = meta._layout()
    indptr, indices, weights, coords = _views(shm, meta, offsets, writeable=False)
    # Mirror-guarded: a worker that tried to build Python lists over the
    # shared pages would silently copy the whole graph per process.
    network = RoadNetwork.from_csr_arrays(
        indptr, indices, weights, coordinates=coords, name=meta.name,
        allow_mirrors=False,
    )
    network._shm = shm  # keep the mapping alive as long as the network
    network._shared_meta = meta
    return network


def _views(
    shm: shared_memory.SharedMemory,
    meta: SharedGraphMeta,
    offsets: tuple[int, int, int, int],
    writeable: bool,
) -> tuple[np.ndarray, ...]:
    indptr_off, indices_off, weights_off, coords_off = offsets
    buf = shm.buf
    indptr = np.frombuffer(
        buf, dtype=np.int32, count=meta.num_nodes + 1, offset=indptr_off
    )
    indices = np.frombuffer(
        buf, dtype=np.int32, count=meta.num_arcs, offset=indices_off
    )
    weights = np.frombuffer(
        buf, dtype=np.float64, count=meta.num_arcs, offset=weights_off
    )
    coords = np.frombuffer(
        buf, dtype=np.float64, count=2 * meta.num_nodes, offset=coords_off
    ).reshape(meta.num_nodes, 2)
    views = (indptr, indices, weights, coords)
    for view in views:
        view.flags.writeable = writeable
    return views


class _AttachedSharedMemory(shared_memory.SharedMemory):
    """Attach-side segment handle with a shutdown-tolerant finalizer.

    An attached network holds numpy views over the buffer for its whole
    lifetime, so when the inherited finalizer fires at interpreter
    shutdown its ``close()`` can find the exports still alive and spray
    ``BufferError`` noise on every worker's stderr.  The mapping dies
    with the process either way, so swallow that one error.
    """

    def __del__(self) -> None:
        try:
            super().__del__()
        except BufferError:  # pragma: no cover - GC-order dependent
            pass


def _open_attached(name: str, borrower: bool) -> shared_memory.SharedMemory:
    """Open an existing segment, without tracker registration if borrowing.

    Before Python 3.13 (``track=False``), every attach registers the
    segment with ``multiprocessing.resource_tracker``, which unlinks it
    when the attaching process exits — exactly wrong for workers that
    merely borrow the publisher's segment (a dying worker would yank
    the graph out from under its siblings).  The registration must be
    *suppressed*, not undone afterwards: the tracker process is shared
    with the publisher, so a borrower's unregister message would erase
    the publisher's own entry and void the leak safety net.
    """
    if not borrower:
        return _AttachedSharedMemory(name=name)
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        original = resource_tracker.register
    except Exception:
        return _AttachedSharedMemory(name=name)

    def _skip_shared_memory(name_: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original(name_, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return _AttachedSharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _cleanup_segment(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except OSError:  # pragma: no cover - already torn down
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - raced with another owner
        pass

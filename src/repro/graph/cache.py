"""Disk-backed memmap cache of road-network CSR arrays.

The shared-memory tier in :mod:`repro.graph.shared` makes one in-memory
graph visible to every pool worker, but the publisher still pays a full
copy into the segment per run, and the graph must fit (and be rebuilt)
in RAM each time.  At continental scale — USA-road-d is ~24M nodes and
~58M arcs — that build/copy dominates startup.  This module is the
build-once/attach-forever tier below it:

* :func:`save_cache` writes a network's four canonical arrays
  (``indptr``/``indices``/``weights``/``coords``) as raw ``.npy`` files
  plus a JSON manifest carrying sizes and a SHA-256 content hash.
* :func:`open_cache` attaches via ``np.load(..., mmap_mode="r")`` in
  O(1) regardless of graph size: only the manifest is read eagerly,
  array pages fault in on demand, and the page cache is shared by every
  process on the host that maps the same files.
* The attached network is stamped with a tiny :class:`GraphCacheMeta`
  token, so pickling it — e.g. handing a solution to
  :class:`~repro.mpr.ProcessPoolService` — ships the token and each
  worker re-memmaps the files via :func:`attach_cached_graph` instead
  of copying segments.  This works identically under fork, spawn, and
  respawn-after-crash, and across unrelated processes on one host.

Attached networks are mirror-guarded (see
:class:`~repro.graph.road_network.MirrorMaterializationError`): code
must stay on the kernel/array path or opt in to the O(n) list mirrors
explicitly.

Integrity: ``open_cache(..., verify=True)`` re-hashes the array files
and rejects mismatches; the default attach does O(1) structural checks
(manifest schema, file sizes, array shapes/dtypes) only, which is what
makes worker attach latency independent of graph size.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .road_network import RoadNetwork

__all__ = [
    "CacheError",
    "GraphCacheMeta",
    "attach_cached_graph",
    "cache_info",
    "open_cache",
    "save_cache",
]

FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"

#: The four canonical arrays, in hashing order: (manifest key, filename).
ARRAY_FILES: tuple[tuple[str, str], ...] = (
    ("indptr", "indptr.npy"),
    ("indices", "indices.npy"),
    ("weights", "weights.npy"),
    ("coords", "coords.npy"),
)

_HASH_CHUNK = 1 << 22  # 4 MiB read chunks while hashing


class CacheError(RuntimeError):
    """A graph cache directory is missing, incomplete, or corrupt."""


@dataclass(frozen=True)
class GraphCacheMeta:
    """The picklable token describing one on-disk graph cache.

    Shipped instead of the arrays when a cache-attached network is
    pickled; :func:`attach_cached_graph` turns it back into a memmapped
    network in the receiving process.
    """

    directory: str
    name: str
    num_nodes: int
    num_arcs: int  # directed arcs = 2 * undirected edges
    content_hash: str


def save_cache(network: "RoadNetwork", directory: str | os.PathLike) -> GraphCacheMeta:
    """Write ``network``'s CSR arrays into ``directory`` as a cache.

    Creates the directory if needed and overwrites any previous cache in
    it.  The manifest is written last, so a crash mid-save leaves a
    directory :func:`open_cache` rejects rather than a silently-corrupt
    cache.  Returns the attach token (also reconstructible later from
    the directory alone via :func:`open_cache`).
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    indptr, indices, weights = network.csr_arrays
    coords = network.coord_arrays
    arrays = {
        "indptr": np.ascontiguousarray(indptr),
        "indices": np.ascontiguousarray(indices),
        "weights": np.ascontiguousarray(weights),
        "coords": np.ascontiguousarray(coords),
    }
    manifest_path = path / MANIFEST_NAME
    manifest_path.unlink(missing_ok=True)  # invalidate the old cache first
    files: dict[str, dict] = {}
    for key, filename in ARRAY_FILES:
        np.save(path / filename, arrays[key])
        files[key] = {
            "file": filename,
            "bytes": (path / filename).stat().st_size,
            "dtype": str(arrays[key].dtype),
            "shape": list(arrays[key].shape),
        }
    manifest = {
        "format_version": FORMAT_VERSION,
        "name": network.name,
        "num_nodes": network.num_nodes,
        "num_arcs": int(len(indices)),
        "files": files,
        "content_hash": _content_hash(path),
    }
    tmp = path / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2) + "\n")
    os.replace(tmp, manifest_path)
    return GraphCacheMeta(
        directory=str(path.resolve()),
        name=network.name,
        num_nodes=network.num_nodes,
        num_arcs=int(len(indices)),
        content_hash=manifest["content_hash"],
    )


def open_cache(
    directory: str | os.PathLike, *, verify: bool = False
) -> "RoadNetwork":
    """Attach a cache written by :func:`save_cache` via ``np.memmap``.

    O(1) in graph size by default: reads the manifest, checks file
    sizes and array shapes/dtypes, and maps the files read-only.  With
    ``verify=True`` the SHA-256 content hash is recomputed over the
    array files (an O(bytes) full-file read) and mismatches raise
    :class:`CacheError`.
    """
    from .road_network import RoadNetwork

    path = Path(directory)
    manifest = _read_manifest(path)
    if verify:
        actual = _content_hash(path)
        if actual != manifest["content_hash"]:
            raise CacheError(
                f"{path}: content hash mismatch "
                f"(manifest {manifest['content_hash'][:12]}…, "
                f"files {actual[:12]}…); the cache is corrupt or was "
                "modified after save_cache"
            )
    arrays = {}
    for key, _ in ARRAY_FILES:
        arrays[key] = _load_memmap(path / manifest["files"][key]["file"])
    num_nodes = int(manifest["num_nodes"])
    num_arcs = int(manifest["num_arcs"])
    _check_shape(path, "indptr", arrays["indptr"], (num_nodes + 1,), "i")
    _check_shape(path, "indices", arrays["indices"], (num_arcs,), "i")
    _check_shape(path, "weights", arrays["weights"], (num_arcs,), "f")
    _check_shape(path, "coords", arrays["coords"], (num_nodes, 2), "f")
    network = RoadNetwork.from_csr_arrays(
        arrays["indptr"],
        arrays["indices"],
        arrays["weights"],
        coordinates=arrays["coords"],
        name=str(manifest["name"]),
        allow_mirrors=False,
    )
    network._cache_meta = GraphCacheMeta(
        directory=str(path.resolve()),
        name=str(manifest["name"]),
        num_nodes=num_nodes,
        num_arcs=num_arcs,
        content_hash=str(manifest["content_hash"]),
    )
    return network


def attach_cached_graph(meta: GraphCacheMeta) -> "RoadNetwork":
    """Re-attach a cache from its token (the unpickle hook).

    Runs inside pool workers when a cache-backed network arrives.  O(1):
    the token's content hash is compared against the manifest's recorded
    hash (a string compare, not a re-hash), so a cache rewritten between
    pickle and unpickle is rejected instead of silently swapping graphs
    under the worker.
    """
    network = open_cache(meta.directory, verify=False)
    recorded = network._cache_meta.content_hash
    if recorded != meta.content_hash:
        raise CacheError(
            f"{meta.directory}: cache was rewritten since the attach "
            f"token was issued (token {meta.content_hash[:12]}…, "
            f"manifest {recorded[:12]}…)"
        )
    return network


def cache_info(directory: str | os.PathLike) -> dict:
    """Summarize a cache directory (for ``repro.cli graph-cache``).

    Returns the manifest augmented with per-file and total on-disk
    byte counts; raises :class:`CacheError` on a bad cache.
    """
    path = Path(directory)
    manifest = _read_manifest(path)
    total = 0
    for key, _ in ARRAY_FILES:
        entry = manifest["files"][key]
        size = (path / entry["file"]).stat().st_size
        entry["bytes_on_disk"] = size
        total += size
    manifest["total_bytes"] = total
    manifest["directory"] = str(path.resolve())
    return manifest


def _read_manifest(path: Path) -> dict:
    manifest_path = path / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text())
    except FileNotFoundError:
        raise CacheError(
            f"{path}: not a graph cache (no {MANIFEST_NAME}); "
            "build one with RoadNetwork.save_cache or "
            "`repro.cli graph-cache build`"
        ) from None
    except json.JSONDecodeError as exc:
        raise CacheError(f"{manifest_path}: invalid manifest: {exc}") from None
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise CacheError(
            f"{manifest_path}: unsupported format_version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    for field in ("name", "num_nodes", "num_arcs", "files", "content_hash"):
        if field not in manifest:
            raise CacheError(f"{manifest_path}: manifest missing {field!r}")
    for key, _ in ARRAY_FILES:
        entry = manifest["files"].get(key)
        if not isinstance(entry, dict) or "file" not in entry:
            raise CacheError(f"{manifest_path}: manifest missing file entry {key!r}")
        file_path = path / entry["file"]
        if not file_path.exists():
            raise CacheError(f"{path}: missing array file {entry['file']!r}")
        expected = entry.get("bytes")
        actual = file_path.stat().st_size
        if expected is not None and actual != expected:
            raise CacheError(
                f"{file_path}: size changed since save_cache "
                f"({actual} bytes on disk, {expected} in manifest)"
            )
    return manifest


def _content_hash(path: Path) -> str:
    """SHA-256 over the raw bytes of the array files, in fixed order."""
    digest = hashlib.sha256()
    for _, filename in ARRAY_FILES:
        with open(path / filename, "rb") as handle:
            while True:
                chunk = handle.read(_HASH_CHUNK)
                if not chunk:
                    break
                digest.update(chunk)
    return digest.hexdigest()


def _load_memmap(file_path: Path) -> np.ndarray:
    try:
        return np.load(file_path, mmap_mode="r")
    except ValueError:
        # Zero-length arrays cannot be mmapped on some platforms; they
        # are tiny, so an eager load preserves O(1) attach in spirit.
        return np.load(file_path)
    except OSError as exc:
        raise CacheError(f"{file_path}: cannot map array file: {exc}") from None


def _check_shape(
    path: Path, key: str, array: np.ndarray, shape: tuple, kind: str
) -> None:
    if array.shape != shape:
        raise CacheError(
            f"{path}: array {key!r} has shape {array.shape}, "
            f"manifest implies {shape}"
        )
    if array.dtype.kind != kind:
        raise CacheError(
            f"{path}: array {key!r} has dtype {array.dtype}, "
            f"expected kind {kind!r}"
        )

"""Disk-backed memmap cache of road-network CSR arrays.

The shared-memory tier in :mod:`repro.graph.shared` makes one in-memory
graph visible to every pool worker, but the publisher still pays a full
copy into the segment per run, and the graph must fit (and be rebuilt)
in RAM each time.  At continental scale — USA-road-d is ~24M nodes and
~58M arcs — that build/copy dominates startup.  This module is the
build-once/attach-forever tier below it:

* :func:`save_cache` writes a network's four canonical arrays
  (``indptr``/``indices``/``weights``/``coords``) as raw ``.npy`` files
  plus a JSON manifest carrying sizes and a SHA-256 content hash.
* :func:`open_cache` attaches via ``np.load(..., mmap_mode="r")`` in
  O(1) regardless of graph size: only the manifest is read eagerly,
  array pages fault in on demand, and the page cache is shared by every
  process on the host that maps the same files.
* The attached network is stamped with a tiny :class:`GraphCacheMeta`
  token, so pickling it — e.g. handing a solution to
  :class:`~repro.mpr.ProcessPoolService` — ships the token and each
  worker re-memmaps the files via :func:`attach_cached_graph` instead
  of copying segments.  This works identically under fork, spawn, and
  respawn-after-crash, and across unrelated processes on one host.

Attached networks are mirror-guarded (see
:class:`~repro.graph.road_network.MirrorMaterializationError`): code
must stay on the kernel/array path or opt in to the O(n) list mirrors
explicitly.

Integrity: ``open_cache(..., verify=True)`` re-hashes the array files
and rejects mismatches; the default attach does O(1) structural checks
(manifest schema, file sizes, array shapes/dtypes) only, which is what
makes worker attach latency independent of graph size.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .ch import ContractionHierarchy
    from .road_network import RoadNetwork

__all__ = [
    "CacheError",
    "CHCacheMeta",
    "GraphCacheMeta",
    "attach_cached_ch",
    "attach_cached_graph",
    "cache_has_ch",
    "cache_info",
    "load_cached_ch",
    "open_cache",
    "save_cache",
    "save_ch_cache",
]

FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"

#: The four canonical arrays, in hashing order: (manifest key, filename).
ARRAY_FILES: tuple[tuple[str, str], ...] = (
    ("indptr", "indptr.npy"),
    ("indices", "indices.npy"),
    ("weights", "weights.npy"),
    ("coords", "coords.npy"),
)

#: Contraction-hierarchy artifacts, in hashing order.  Written by
#: :func:`save_ch_cache` next to the graph arrays; referenced from the
#: manifest's ``"ch"`` section so :func:`save_cache` rewriting the
#: manifest automatically invalidates a hierarchy built on the old
#: graph.
CH_ARRAY_FILES: tuple[tuple[str, str, str], ...] = (
    ("rank", "ch_rank.npy", "i"),
    ("up_indptr", "ch_up_indptr.npy", "i"),
    ("up_indices", "ch_up_indices.npy", "i"),
    ("up_weights", "ch_up_weights.npy", "f"),
    ("down_indptr", "ch_down_indptr.npy", "i"),
    ("down_indices", "ch_down_indices.npy", "i"),
    ("down_weights", "ch_down_weights.npy", "f"),
    ("shortcut_u", "ch_shortcut_u.npy", "i"),
    ("shortcut_v", "ch_shortcut_v.npy", "i"),
    ("shortcut_w", "ch_shortcut_w.npy", "f"),
)

#: Optional prebuilt hub labels for the top-ranked core (present when
#: the hierarchy was saved with ``label_core > 0``).
CH_LABEL_FILES: tuple[tuple[str, str, str], ...] = (
    ("label_indptr", "ch_label_indptr.npy", "i"),
    ("label_hubs", "ch_label_hubs.npy", "i"),
    ("label_dists", "ch_label_dists.npy", "f"),
)

_HASH_CHUNK = 1 << 22  # 4 MiB read chunks while hashing


class CacheError(RuntimeError):
    """A graph cache directory is missing, incomplete, or corrupt."""


@dataclass(frozen=True)
class GraphCacheMeta:
    """The picklable token describing one on-disk graph cache.

    Shipped instead of the arrays when a cache-attached network is
    pickled; :func:`attach_cached_graph` turns it back into a memmapped
    network in the receiving process.
    """

    directory: str
    name: str
    num_nodes: int
    num_arcs: int  # directed arcs = 2 * undirected edges
    content_hash: str


@dataclass(frozen=True)
class CHCacheMeta:
    """The picklable token for one on-disk contraction hierarchy.

    Shipped instead of the hierarchy arrays when a cache-backed
    :class:`~repro.graph.ch.ContractionHierarchy` is pickled;
    :func:`attach_cached_ch` re-memmaps graph and hierarchy in the
    receiving process in O(1).
    """

    directory: str
    num_nodes: int
    num_shortcuts: int
    exact: bool
    label_core: int
    content_hash: str  # over the CH artifact files
    graph_hash: str  # the graph content hash the CH was built against


def save_cache(network: "RoadNetwork", directory: str | os.PathLike) -> GraphCacheMeta:
    """Write ``network``'s CSR arrays into ``directory`` as a cache.

    Creates the directory if needed and overwrites any previous cache in
    it.  The manifest is written last, so a crash mid-save leaves a
    directory :func:`open_cache` rejects rather than a silently-corrupt
    cache.  Returns the attach token (also reconstructible later from
    the directory alone via :func:`open_cache`).
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    indptr, indices, weights = network.csr_arrays
    coords = network.coord_arrays
    arrays = {
        "indptr": np.ascontiguousarray(indptr),
        "indices": np.ascontiguousarray(indices),
        "weights": np.ascontiguousarray(weights),
        "coords": np.ascontiguousarray(coords),
    }
    manifest_path = path / MANIFEST_NAME
    manifest_path.unlink(missing_ok=True)  # invalidate the old cache first
    # Any hierarchy in the directory was built on the previous graph;
    # the fresh manifest carries no "ch" section, so drop the orphans.
    for _, filename, _ in CH_ARRAY_FILES + CH_LABEL_FILES:
        (path / filename).unlink(missing_ok=True)
    files: dict[str, dict] = {}
    for key, filename in ARRAY_FILES:
        np.save(path / filename, arrays[key])
        files[key] = {
            "file": filename,
            "bytes": (path / filename).stat().st_size,
            "dtype": str(arrays[key].dtype),
            "shape": list(arrays[key].shape),
        }
    manifest = {
        "format_version": FORMAT_VERSION,
        "name": network.name,
        "num_nodes": network.num_nodes,
        "num_arcs": int(len(indices)),
        "files": files,
        "content_hash": _content_hash(path),
    }
    _write_manifest(path, manifest)
    return GraphCacheMeta(
        directory=str(path.resolve()),
        name=network.name,
        num_nodes=network.num_nodes,
        num_arcs=int(len(indices)),
        content_hash=manifest["content_hash"],
    )


def open_cache(
    directory: str | os.PathLike, *, verify: bool = False
) -> "RoadNetwork":
    """Attach a cache written by :func:`save_cache` via ``np.memmap``.

    O(1) in graph size by default: reads the manifest, checks file
    sizes and array shapes/dtypes, and maps the files read-only.  With
    ``verify=True`` the SHA-256 content hash is recomputed over the
    array files (an O(bytes) full-file read) and mismatches raise
    :class:`CacheError`.
    """
    from .road_network import RoadNetwork

    path = Path(directory)
    manifest = _read_manifest(path)
    if verify:
        actual = _content_hash(path)
        if actual != manifest["content_hash"]:
            raise CacheError(
                f"{path}: content hash mismatch "
                f"(manifest {manifest['content_hash'][:12]}…, "
                f"files {actual[:12]}…); the cache is corrupt or was "
                "modified after save_cache"
            )
    arrays = {}
    for key, _ in ARRAY_FILES:
        arrays[key] = _load_memmap(path / manifest["files"][key]["file"])
    num_nodes = int(manifest["num_nodes"])
    num_arcs = int(manifest["num_arcs"])
    _check_shape(path, "indptr", arrays["indptr"], (num_nodes + 1,), "i")
    _check_shape(path, "indices", arrays["indices"], (num_arcs,), "i")
    _check_shape(path, "weights", arrays["weights"], (num_arcs,), "f")
    _check_shape(path, "coords", arrays["coords"], (num_nodes, 2), "f")
    network = RoadNetwork.from_csr_arrays(
        arrays["indptr"],
        arrays["indices"],
        arrays["weights"],
        coordinates=arrays["coords"],
        name=str(manifest["name"]),
        allow_mirrors=False,
    )
    network._cache_meta = GraphCacheMeta(
        directory=str(path.resolve()),
        name=str(manifest["name"]),
        num_nodes=num_nodes,
        num_arcs=num_arcs,
        content_hash=str(manifest["content_hash"]),
    )
    return network


def attach_cached_graph(meta: GraphCacheMeta) -> "RoadNetwork":
    """Re-attach a cache from its token (the unpickle hook).

    Runs inside pool workers when a cache-backed network arrives.  O(1):
    the token's content hash is compared against the manifest's recorded
    hash (a string compare, not a re-hash), so a cache rewritten between
    pickle and unpickle is rejected instead of silently swapping graphs
    under the worker.
    """
    network = open_cache(meta.directory, verify=False)
    recorded = network._cache_meta.content_hash
    if recorded != meta.content_hash:
        raise CacheError(
            f"{meta.directory}: cache was rewritten since the attach "
            f"token was issued (token {meta.content_hash[:12]}…, "
            f"manifest {recorded[:12]}…)"
        )
    return network


def cache_info(directory: str | os.PathLike) -> dict:
    """Summarize a cache directory (for ``repro.cli graph-cache``).

    Returns the manifest augmented with per-file and total on-disk
    byte counts; raises :class:`CacheError` on a bad cache.
    """
    path = Path(directory)
    manifest = _read_manifest(path)
    total = 0
    for key, _ in ARRAY_FILES:
        entry = manifest["files"][key]
        size = (path / entry["file"]).stat().st_size
        entry["bytes_on_disk"] = size
        total += size
    manifest["total_bytes"] = total
    manifest["directory"] = str(path.resolve())
    ch_section = manifest.get("ch")
    if isinstance(ch_section, dict):
        ch_total = 0
        for entry in ch_section.get("files", {}).values():
            file_path = path / entry["file"]
            size = file_path.stat().st_size if file_path.exists() else 0
            entry["bytes_on_disk"] = size
            ch_total += size
        ch_section["total_bytes"] = ch_total
        ch_section["stale"] = ch_section.get("graph_hash") != manifest.get(
            "content_hash"
        )
    return manifest


# ----------------------------------------------------------------------
# Contraction-hierarchy artifacts
# ----------------------------------------------------------------------
def save_ch_cache(
    ch: "ContractionHierarchy",
    directory: str | os.PathLike,
    *,
    label_core: int = 0,
) -> CHCacheMeta:
    """Persist ``ch`` into an existing graph cache directory.

    Writes the rank vector, both CSR halves, and the shortcut triples
    as ``ch_*.npy`` files next to the graph arrays, then rewrites the
    manifest with a ``"ch"`` section recording sizes, a content hash
    over the artifact files, and the graph content hash the hierarchy
    belongs to.  A later :func:`save_cache` into the same directory
    drops the section (and the files), so a hierarchy can never
    silently outlive its graph.

    With ``label_core > 0``, hub labels for the ``label_core``
    top-ranked nodes (closed upward) are prebuilt via
    :func:`~repro.graph.ch.build_core_labels` and persisted too;
    :func:`load_cached_ch` hands them to every :class:`CHKernels` as a
    shared static label store.

    The hierarchy must have been built on the graph cached in
    ``directory``.  Returns the attach token and stamps it on ``ch``,
    so pickling ``ch`` from now on ships the token.
    """
    path = Path(directory)
    manifest = _read_manifest(path)
    n = len(ch.rank)
    if int(manifest["num_nodes"]) != n:
        raise CacheError(
            f"{path}: cached graph has {manifest['num_nodes']} nodes, "
            f"hierarchy was built on {n}; save the matching graph first"
        )
    net_meta = getattr(ch.network, "_cache_meta", None)
    if net_meta is not None and net_meta.content_hash != manifest["content_hash"]:
        raise CacheError(
            f"{path}: hierarchy was built on a different graph than the "
            f"cache now holds (network {net_meta.content_hash[:12]}…, "
            f"manifest {manifest['content_hash'][:12]}…)"
        )
    arrays: dict[str, np.ndarray] = {
        "rank": np.ascontiguousarray(ch.rank, dtype=np.int64),
        "up_indptr": np.ascontiguousarray(ch.up_indptr, dtype=np.int64),
        "up_indices": np.ascontiguousarray(ch.up_indices, dtype=np.int64),
        "up_weights": np.ascontiguousarray(ch.up_weights, dtype=np.float64),
        "down_indptr": np.ascontiguousarray(ch.down_indptr, dtype=np.int64),
        "down_indices": np.ascontiguousarray(ch.down_indices, dtype=np.int64),
        "down_weights": np.ascontiguousarray(ch.down_weights, dtype=np.float64),
        "shortcut_u": np.ascontiguousarray(ch.shortcut_u, dtype=np.int64),
        "shortcut_v": np.ascontiguousarray(ch.shortcut_v, dtype=np.int64),
        "shortcut_w": np.ascontiguousarray(ch.shortcut_w, dtype=np.float64),
    }
    label_core = int(label_core)
    file_specs = list(CH_ARRAY_FILES)
    if label_core > 0:
        from .ch import build_core_labels

        label_indptr, label_hubs, label_dists = build_core_labels(
            ch, label_core
        )
        arrays["label_indptr"] = np.ascontiguousarray(
            label_indptr, dtype=np.int64
        )
        arrays["label_hubs"] = np.ascontiguousarray(label_hubs, dtype=np.int64)
        arrays["label_dists"] = np.ascontiguousarray(
            label_dists, dtype=np.float64
        )
        file_specs += list(CH_LABEL_FILES)

    # Invalidate any previous hierarchy first: rewrite the manifest
    # without a "ch" section, then write the files, then commit the new
    # section — a crash mid-save leaves a cache whose graph still loads
    # and whose hierarchy is simply absent.
    stale = dict(manifest)
    stale.pop("ch", None)
    _write_manifest(path, stale)
    for _, filename, _ in CH_ARRAY_FILES + CH_LABEL_FILES:
        if not any(filename == f for _, f, _ in file_specs):
            (path / filename).unlink(missing_ok=True)
    files: dict[str, dict] = {}
    for key, filename, _ in file_specs:
        np.save(path / filename, arrays[key])
        files[key] = {
            "file": filename,
            "bytes": (path / filename).stat().st_size,
            "dtype": str(arrays[key].dtype),
            "shape": list(arrays[key].shape),
        }
    content_hash = _hash_files(path, [f for _, f, _ in file_specs])
    manifest = dict(stale)
    manifest["ch"] = {
        "files": files,
        "exact": bool(ch.exact),
        "builder": str(getattr(ch, "builder", "unknown")),
        "num_shortcuts": int(len(ch.shortcut_u)),
        "label_core": label_core,
        "content_hash": content_hash,
        "graph_hash": str(manifest["content_hash"]),
    }
    _write_manifest(path, manifest)
    meta = CHCacheMeta(
        directory=str(path.resolve()),
        num_nodes=n,
        num_shortcuts=int(len(ch.shortcut_u)),
        exact=bool(ch.exact),
        label_core=label_core,
        content_hash=content_hash,
        graph_hash=str(manifest["content_hash"]),
    )
    ch._cache_meta = meta
    return meta


def load_cached_ch(
    network: "RoadNetwork", *, verify: bool = False
) -> "ContractionHierarchy":
    """Attach the persisted hierarchy of a cache-attached ``network``.

    O(1) in hierarchy size by default: reads the manifest's ``"ch"``
    section, checks that it belongs to the graph the manifest currently
    describes (a hash string compare), checks file sizes and shapes,
    and memmaps the arrays.  ``verify=True`` re-hashes the artifact
    files.  Raises :class:`CacheError` when the directory holds no
    hierarchy or a stale one.
    """
    from .ch import ContractionHierarchy
    from .kernels import KERNEL_CALLS

    net_meta = getattr(network, "_cache_meta", None)
    if net_meta is None:
        raise CacheError(
            "network is not cache-attached; open it with open_cache() "
            "before loading its hierarchy"
        )
    path = Path(net_meta.directory)
    manifest = _read_manifest(path)
    section = manifest.get("ch")
    if not isinstance(section, dict):
        raise CacheError(
            f"{path}: cache has no persisted hierarchy; build one with "
            "save_ch_cache or `repro.cli graph-cache build --ch`"
        )
    if section.get("graph_hash") != manifest["content_hash"]:
        raise CacheError(
            f"{path}: persisted hierarchy belongs to an older graph "
            f"(built on {str(section.get('graph_hash'))[:12]}…, cache "
            f"now holds {manifest['content_hash'][:12]}…); rebuild it"
        )
    label_core = int(section.get("label_core", 0))
    file_specs = list(CH_ARRAY_FILES)
    if label_core > 0:
        file_specs += list(CH_LABEL_FILES)
    for key, filename, kind in file_specs:
        entry = section.get("files", {}).get(key)
        if not isinstance(entry, dict) or "file" not in entry:
            raise CacheError(f"{path}: ch section missing file entry {key!r}")
        file_path = path / entry["file"]
        if not file_path.exists():
            raise CacheError(f"{path}: missing ch array file {entry['file']!r}")
        expected = entry.get("bytes")
        if expected is not None and file_path.stat().st_size != expected:
            raise CacheError(
                f"{file_path}: size changed since save_ch_cache "
                f"({file_path.stat().st_size} bytes on disk, "
                f"{expected} in manifest)"
            )
    if verify:
        actual = _hash_files(path, [entry[1] for entry in file_specs])
        if actual != section["content_hash"]:
            raise CacheError(
                f"{path}: ch content hash mismatch "
                f"(manifest {section['content_hash'][:12]}…, files "
                f"{actual[:12]}…); the artifacts were modified after "
                "save_ch_cache"
            )
    arrays: dict[str, np.ndarray] = {}
    n = int(manifest["num_nodes"])
    for key, filename, kind in file_specs:
        array = _load_memmap(path / section["files"][key]["file"])
        expected_shape = tuple(section["files"][key].get("shape", array.shape))
        _check_shape(path, key, array, expected_shape, kind)
        arrays[key] = array
    _check_shape(path, "rank", arrays["rank"], (n,), "i")
    _check_shape(path, "up_indptr", arrays["up_indptr"], (n + 1,), "i")
    _check_shape(path, "down_indptr", arrays["down_indptr"], (n + 1,), "i")
    static_labels = None
    if label_core > 0:
        _check_shape(path, "label_indptr", arrays["label_indptr"], (n + 1,), "i")
        static_labels = (
            arrays["label_indptr"],
            arrays["label_hubs"],
            arrays["label_dists"],
        )
    ch = ContractionHierarchy.from_arrays(
        network,
        rank=arrays["rank"],
        up_indptr=arrays["up_indptr"],
        up_indices=arrays["up_indices"],
        up_weights=arrays["up_weights"],
        down_indptr=arrays["down_indptr"],
        down_indices=arrays["down_indices"],
        down_weights=arrays["down_weights"],
        shortcut_u=arrays["shortcut_u"],
        shortcut_v=arrays["shortcut_v"],
        shortcut_w=arrays["shortcut_w"],
        exact=bool(section.get("exact", False)),
        builder=str(section.get("builder", "cached")),
        static_labels=static_labels,
    )
    ch._cache_meta = CHCacheMeta(
        directory=str(path.resolve()),
        num_nodes=n,
        num_shortcuts=int(section.get("num_shortcuts", len(ch.shortcut_u))),
        exact=bool(section.get("exact", False)),
        label_core=label_core,
        content_hash=str(section["content_hash"]),
        graph_hash=str(section["graph_hash"]),
    )
    KERNEL_CALLS["ch.cache_attach"] += 1
    return ch


def attach_cached_ch(meta: CHCacheMeta) -> "ContractionHierarchy":
    """Re-attach a persisted hierarchy from its token (unpickle hook).

    Runs inside pool workers when a cache-backed hierarchy arrives:
    re-memmaps the graph, then the hierarchy, and rejects the attach if
    either was rewritten since the token was issued (string compares
    against the manifest, no re-hash — O(1) like the graph attach).
    """
    network = open_cache(meta.directory, verify=False)
    if network._cache_meta.content_hash != meta.graph_hash:
        raise CacheError(
            f"{meta.directory}: graph was rewritten since the CH attach "
            f"token was issued (token {meta.graph_hash[:12]}…, manifest "
            f"{network._cache_meta.content_hash[:12]}…)"
        )
    ch = load_cached_ch(network, verify=False)
    if ch._cache_meta.content_hash != meta.content_hash:
        raise CacheError(
            f"{meta.directory}: hierarchy was rewritten since the attach "
            f"token was issued (token {meta.content_hash[:12]}…, "
            f"manifest {ch._cache_meta.content_hash[:12]}…)"
        )
    return ch


def cache_has_ch(directory: str | os.PathLike) -> bool:
    """True when ``directory`` holds a hierarchy for its current graph."""
    try:
        manifest = _read_manifest(Path(directory))
    except CacheError:
        return False
    section = manifest.get("ch")
    return (
        isinstance(section, dict)
        and section.get("graph_hash") == manifest.get("content_hash")
    )


def _write_manifest(path: Path, manifest: dict) -> None:
    tmp = path / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2) + "\n")
    os.replace(tmp, path / MANIFEST_NAME)


def _read_manifest(path: Path) -> dict:
    manifest_path = path / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text())
    except FileNotFoundError:
        raise CacheError(
            f"{path}: not a graph cache (no {MANIFEST_NAME}); "
            "build one with RoadNetwork.save_cache or "
            "`repro.cli graph-cache build`"
        ) from None
    except json.JSONDecodeError as exc:
        raise CacheError(f"{manifest_path}: invalid manifest: {exc}") from None
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise CacheError(
            f"{manifest_path}: unsupported format_version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    for field in ("name", "num_nodes", "num_arcs", "files", "content_hash"):
        if field not in manifest:
            raise CacheError(f"{manifest_path}: manifest missing {field!r}")
    for key, _ in ARRAY_FILES:
        entry = manifest["files"].get(key)
        if not isinstance(entry, dict) or "file" not in entry:
            raise CacheError(f"{manifest_path}: manifest missing file entry {key!r}")
        file_path = path / entry["file"]
        if not file_path.exists():
            raise CacheError(f"{path}: missing array file {entry['file']!r}")
        expected = entry.get("bytes")
        actual = file_path.stat().st_size
        if expected is not None and actual != expected:
            raise CacheError(
                f"{file_path}: size changed since save_cache "
                f"({actual} bytes on disk, {expected} in manifest)"
            )
    return manifest


def _content_hash(path: Path) -> str:
    """SHA-256 over the raw bytes of the array files, in fixed order."""
    return _hash_files(path, [f for _, f in ARRAY_FILES])


def _hash_files(path: Path, filenames: list[str]) -> str:
    """SHA-256 over the raw bytes of ``filenames``, in the given order."""
    digest = hashlib.sha256()
    for filename in filenames:
        with open(path / filename, "rb") as handle:
            while True:
                chunk = handle.read(_HASH_CHUNK)
                if not chunk:
                    break
                digest.update(chunk)
    return digest.hexdigest()


def _load_memmap(file_path: Path) -> np.ndarray:
    try:
        return np.load(file_path, mmap_mode="r")
    except ValueError:
        # Zero-length arrays cannot be mmapped on some platforms; they
        # are tiny, so an eager load preserves O(1) attach in spirit.
        return np.load(file_path)
    except OSError as exc:
        raise CacheError(f"{file_path}: cannot map array file: {exc}") from None


def _check_shape(
    path: Path, key: str, array: np.ndarray, shape: tuple, kind: str
) -> None:
    if array.shape != shape:
        raise CacheError(
            f"{path}: array {key!r} has shape {array.shape}, "
            f"manifest implies {shape}"
        )
    if array.dtype.kind != kind:
        raise CacheError(
            f"{path}: array {key!r} has dtype {array.dtype}, "
            f"expected kind {kind!r}"
        )

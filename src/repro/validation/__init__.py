"""Standing model-validation: Eq. 5/7 vs simulator and live pool."""

from .harness import (
    DEFAULT_LIVE_GRID,
    DEFAULT_SIM_GRID,
    CellVerdict,
    GridSpec,
    ThroughputVerdict,
    ToleranceSpec,
    ValidationReport,
    run_validation,
    validate_live,
    validate_simulator,
    write_report,
)
from .reconfig_soak import SoakReport, run_reconfig_soak

__all__ = [
    "DEFAULT_LIVE_GRID",
    "DEFAULT_SIM_GRID",
    "CellVerdict",
    "GridSpec",
    "ThroughputVerdict",
    "ToleranceSpec",
    "ValidationReport",
    "SoakReport",
    "run_reconfig_soak",
    "run_validation",
    "validate_live",
    "validate_simulator",
    "write_report",
]

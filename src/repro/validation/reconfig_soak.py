"""Reconfiguration soak: automatic shape changes under a live stream.

The standing validation harness checks that the Eq. 5/7 model predicts
the pool; this gate checks that acting on the model *live* is safe.  It
runs a short non-stationary workload (query-heavy → update-heavy →
query-heavy, the paper's taxi-peak drift in miniature) through a real
:class:`~repro.mpr.process_executor.ProcessPoolService` while a
:class:`~repro.mpr.reconfig.ReconfigManager` watches the router
counters over synthetic time and triggers ``(x, y, z)`` transitions on
its own.  The run passes only when

* at least ``min_auto_changes`` transitions completed with an
  ``auto``-triggered :class:`~repro.mpr.reconfig.ReconfigEvent`,
* zero queries were dropped (every query id drained an answer),
* every answer equals the serial oracle bit-for-bit, and
* every query retained a complete telemetry trace.

Synthetic time makes the workload drift deterministic: each phase's
arrivals are folded into the manager's :class:`~repro.mpr.controller.
RateEstimator` as one counter delta over a fixed-width window, so the
estimated rates — and therefore the controller's decisions — do not
depend on wall-clock scheduling.  The transitions themselves still run
against real processes with real queries in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..graph.generators import grid_network
from ..knn.calibration import paper_profile
from ..knn.dijkstra_knn import DijkstraKNN
from ..mpr.analysis import MachineSpec
from ..mpr.config import MPRConfig
from ..mpr.controller import RateEstimator
from ..mpr.process_executor import ProcessPoolService
from ..mpr.reconfig import ReconfigManager, ReconfigPolicy
from ..mpr.executor import run_serial_reference
from ..objects.tasks import DeleteTask, InsertTask, QueryTask, Task
from ..obs import Telemetry

__all__ = ["SoakReport", "run_reconfig_soak"]

#: Phase schedule: (label, queries, updates).  The counts double as the
#: synthetic arrival rates — each phase is folded into the estimator as
#: one window of ``window`` seconds, so 300 queries over a 0.01 s
#: window reads as a 30k q/s flash crowd, flipping the V-tree/BJ model
#: between its replication-heavy and partition-heavy optima.
DEFAULT_PHASES: tuple[tuple[str, int, int], ...] = (
    ("query-heavy", 300, 1),
    ("update-heavy", 10, 200),
    ("query-heavy", 300, 1),
)


@dataclass
class SoakReport:
    """Outcome of one soak run (JSON-ready via :meth:`to_dict`)."""

    phases: list[dict[str, Any]]
    transitions: list[dict[str, Any]]
    auto_changes: int
    queries: int
    answered: int
    dropped: int
    mismatches: int
    incomplete_traces: int
    transition_p50_ms: float | None
    transition_p95_ms: float | None
    inflight_at_cutover_mean: float | None
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "phases": list(self.phases),
            "transitions": list(self.transitions),
            "auto_changes": self.auto_changes,
            "queries": self.queries,
            "answered": self.answered,
            "dropped": self.dropped,
            "mismatches": self.mismatches,
            "incomplete_traces": self.incomplete_traces,
            "transition_p50_ms": self.transition_p50_ms,
            "transition_p95_ms": self.transition_p95_ms,
            "inflight_at_cutover_mean": self.inflight_at_cutover_mean,
            "violations": list(self.violations),
        }


def _percentile(values: Sequence[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def run_reconfig_soak(
    *,
    phases: Sequence[tuple[str, int, int]] = DEFAULT_PHASES,
    min_auto_changes: int = 2,
    batch_size: int = 8,
    window: float = 0.01,
    telemetry: Telemetry | None = None,
) -> SoakReport:
    """Run the soak; see the module docstring for the pass criteria.

    Each phase submits half its stream, polls the manager (so any
    transition begins with queries genuinely in flight), submits the
    rest, and drains.  Answers accumulate across phases and are
    compared against one serial reference replay of the full stream.
    """
    network = grid_network(10, 10)
    base = DijkstraKNN(network)
    objects = {i: (i * 7 + 3) % network.num_nodes for i in range(40)}
    if telemetry is None:
        telemetry = Telemetry()
    pool = ProcessPoolService(
        base, MPRConfig(2, 2, 1), objects,
        batch_size=batch_size, telemetry=telemetry,
    )
    # The decision model: V-tree/BJ on a small machine gives two far
    # apart optima — partition-heavy under updates, replication-heavy
    # under a query flood — so the drift below forces real switches.
    manager = ReconfigManager(
        pool,
        paper_profile("V-tree", "BJ"),
        MachineSpec(total_cores=5),
        policy=ReconfigPolicy(
            improvement_threshold=0.05,
            cooldown=0.0,
            recalibrate=False,
            warm_timeout=30.0,
            retire_timeout=30.0,
        ),
        estimator=RateEstimator(window=window, alpha=1.0),
    )

    tasks: list[Task] = []
    answers: dict[int, Any] = {}
    phase_rows: list[dict[str, Any]] = []
    clock = 0.0
    query_id = 0
    object_id = 10_000
    live_objects = set(objects)
    now = 0.0
    try:
        pool.start()
        manager.poll(now=now)  # baseline the counter deltas
        for label, num_queries, num_updates in phases:
            phase_tasks: list[Task] = []
            total = max(num_queries + num_updates, 1)
            for position in range(total):
                make_query = (
                    position * num_queries // total
                    != (position + 1) * num_queries // total
                )
                if make_query:
                    phase_tasks.append(QueryTask(
                        clock, query_id,
                        (query_id * 37 + 5) % network.num_nodes, 5,
                    ))
                    query_id += 1
                else:
                    if position % 3 == 2 and len(live_objects) > 5:
                        victim = sorted(live_objects)[0]
                        phase_tasks.append(DeleteTask(clock, victim))
                        live_objects.discard(victim)
                    else:
                        phase_tasks.append(InsertTask(
                            clock, object_id,
                            (object_id * 13) % network.num_nodes,
                        ))
                        live_objects.add(object_id)
                        object_id += 1
                clock += 0.0001
            tasks.extend(phase_tasks)
            half = len(phase_tasks) // 2
            for task in phase_tasks[:half]:
                pool.submit(task)
            # Capture the first-half counter delta into the open window
            # (mid-window: no fold, so no decision on these counts yet),
            # then close the window — the decision fires with the first
            # half still in flight.
            manager.poll(now=now + window / 2)
            event = manager.poll(now=now + window)
            for task in phase_tasks[half:]:
                pool.submit(task)
            answers.update(pool.drain())
            # Capture and fold the second half into its own window so
            # it cannot dilute the next phase's rates; its mix equals
            # the first half's, so the fold decides nothing new.
            manager.poll(now=now + 1.5 * window)
            tail = manager.poll(now=now + 2 * window)
            if event is None:
                event = tail
            now += 2 * window
            phase_rows.append({
                "label": label,
                "queries": num_queries,
                "updates": num_updates,
                "config": [pool.config.x, pool.config.y, pool.config.z],
                "transition": event.to_dict() if event is not None else None,
            })
        history = list(pool.reconfig_history)
    finally:
        pool.close()

    oracle = run_serial_reference(base, objects, tasks)
    dropped = sum(1 for qid in oracle if qid not in answers)
    mismatches = sum(
        1
        for qid, expected in oracle.items()
        if qid in answers and list(answers[qid]) != list(expected)
    )
    incomplete_traces = 0
    for qid in oracle:
        trace = telemetry.trace(qid)
        if trace is None or not trace.stage_spans("execute"):
            incomplete_traces += 1

    completed = [event for event in history if event.outcome == "completed"]
    auto_changes = sum(
        1 for event in completed if event.trigger.startswith("auto")
    )
    warm_ms = [
        event.phases["warm"] * 1e3
        for event in completed
        if "warm" in event.phases
    ]
    inflight = [
        event.inflight_at_cutover
        for event in completed
        if event.inflight_at_cutover is not None
    ]
    report = SoakReport(
        phases=phase_rows,
        transitions=[event.to_dict() for event in history],
        auto_changes=auto_changes,
        queries=len(oracle),
        answered=len(answers),
        dropped=dropped,
        mismatches=mismatches,
        incomplete_traces=incomplete_traces,
        transition_p50_ms=_percentile(warm_ms, 0.50) if warm_ms else None,
        transition_p95_ms=_percentile(warm_ms, 0.95) if warm_ms else None,
        inflight_at_cutover_mean=(
            sum(inflight) / len(inflight) if inflight else None
        ),
    )
    if auto_changes < min_auto_changes:
        report.violations.append(
            f"only {auto_changes} automatic shape changes completed "
            f"(needed {min_auto_changes}); history="
            f"{[(e.trigger, e.outcome) for e in history]}"
        )
    if dropped:
        report.violations.append(f"{dropped} queries dropped")
    if mismatches:
        report.violations.append(
            f"{mismatches} answers differ from the serial oracle"
        )
    if incomplete_traces:
        report.violations.append(
            f"{incomplete_traces} queries lack a complete trace"
        )
    rolled_back = [e for e in history if e.outcome == "rolled_back"]
    if rolled_back:
        report.violations.append(
            f"{len(rolled_back)} transitions rolled back under a "
            "fault-free soak"
        )
    return report

"""The standing model-validation harness: Fig. 4/5 as a regression contract.

The paper's Figures 4 and 5 argue that the analytical model (Eq. 5's
``Rq``, Eq. 7's ``λ̂q``) tracks measurement closely enough to drive
``(x, y, z)`` selection.  The seed repo only ever compared the model
against the simulator, in one-off benches; this module makes the claim
a *standing contract*: sweep a ``(λq, λu, x, y, z)`` grid on both the
discrete-event simulator and the live process pool, compare model
against measurement cell by cell under declared tolerances, and emit a
machine-readable verdict that CI snapshots and `tests/test_validation.py`
enforces.

Tolerance semantics (see :class:`ToleranceSpec`): a cell is *enforced*
only when the model itself predicts the cell is comfortably under
capacity (finite ``Rq``, modeled worker utilization below the cap) —
near saturation the M/G/1 expectation has unbounded variance and no
finite run converges to it, which is exactly why the paper reports
"Overload" there instead of a number.  Over-capacity cells are still
recorded (informational) so drift is visible.

Live-pool measurement notes:

* Tasks are *paced* through :func:`repro.workload.replay_timed` so the
  pool genuinely experiences the cell's arrival rates (``run()`` would
  submit as fast as the loop spins).
* Mean response is assembled from per-stage telemetry histograms
  (queue_wait + execute + dispatch, + merge when ``x > 1``) rather than
  the end-to-end ``response`` stage: both executors record the final
  merge at drain time, which would charge the whole replay's tail wait
  to early queries.
* The model is calibrated from the *same run*'s telemetry
  (:func:`repro.knn.calibration.profile_from_telemetry` +
  :func:`repro.sim.machine_spec_from_telemetry`) and fed the realized
  arrival rates, so the comparison is measurement vs. model — not
  measurement vs. hand-tuned constants.
* The live tolerance carries an absolute slack term on top of the
  multiplicative factor: on a busy or single-core host, IPC transit
  and OS scheduling jitter put a few milliseconds under ``queue_wait``
  that no queueing model of the *application* predicts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..graph.generators import grid_network
from ..harness import format_table
from ..knn.calibration import paper_profile, profile_from_telemetry
from ..knn.dijkstra_knn import DijkstraKNN
from ..mpr.analysis import (
    MachineSpec,
    Workload,
    max_throughput_closed_form,
    response_time,
)
from ..mpr.api import build_executor
from ..mpr.config import MPRConfig
from ..mpr.results import envelope_answers
from ..obs import Telemetry
from ..sim.measurement import (
    find_max_throughput,
    machine_spec_from_telemetry,
    measure_response_time,
)
from ..workload.generator import generate_workload
from ..workload.replay import replay_timed

__all__ = [
    "DEFAULT_LIVE_GRID",
    "DEFAULT_SIM_GRID",
    "CellVerdict",
    "GridSpec",
    "ThroughputVerdict",
    "ToleranceSpec",
    "ValidationReport",
    "run_validation",
    "validate_live",
    "validate_simulator",
    "write_report",
]


@dataclass(frozen=True)
class ToleranceSpec:
    """Declared accuracy contract between model and measurement.

    ``sim_rq_factor`` bounds the two-sided ratio between the
    simulator's mean ``Rq`` and Eq. 5 (a factor of 2 means "same order,
    both directions").  ``live_rq_factor``/``live_rq_slack`` bound the
    live pool the same way, plus an absolute slack (seconds) absorbing
    IPC transit and OS scheduling jitter the application-level model
    does not see.  ``throughput_rel`` bounds the relative error between
    Eq. 7's ``λ̂q`` and the simulator's throughput search.
    ``utilization_cap`` is the modeled worker-utilization ceiling below
    which a cell is *enforced* — a failed enforced cell fails the whole
    validation run.
    """

    sim_rq_factor: float = 2.0
    live_rq_factor: float = 3.0
    live_rq_slack: float = 0.005
    throughput_rel: float = 0.35
    utilization_cap: float = 0.75

    def __post_init__(self) -> None:
        if self.sim_rq_factor < 1.0 or self.live_rq_factor < 1.0:
            raise ValueError("ratio factors must be >= 1")
        if self.live_rq_slack < 0:
            raise ValueError("slack must be non-negative")
        if not 0.0 < self.utilization_cap < 1.0:
            raise ValueError("utilization_cap must be in (0, 1)")
        if self.throughput_rel <= 0:
            raise ValueError("throughput_rel must be positive")

    def to_dict(self) -> dict[str, float]:
        return {
            "sim_rq_factor": self.sim_rq_factor,
            "live_rq_factor": self.live_rq_factor,
            "live_rq_slack": self.live_rq_slack,
            "throughput_rel": self.throughput_rel,
            "utilization_cap": self.utilization_cap,
        }


@dataclass(frozen=True)
class GridSpec:
    """One validation sweep: the cross product of rates and configs."""

    lambda_qs: tuple[float, ...]
    lambda_us: tuple[float, ...]
    configs: tuple[MPRConfig, ...]
    duration: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.lambda_qs or not self.lambda_us or not self.configs:
            raise ValueError("grid axes must be non-empty")
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    @property
    def num_cells(self) -> int:
        return len(self.lambda_qs) * len(self.lambda_us) * len(self.configs)


#: Simulator sweep: paper-parity Dijkstra profile on the 19-core
#: machine; λq chosen so (1,1,1) spans light load to ~0.7 utilization.
DEFAULT_SIM_GRID = GridSpec(
    lambda_qs=(300.0, 600.0, 900.0),
    lambda_us=(2_000.0, 8_000.0),
    configs=(MPRConfig(1, 1, 1), MPRConfig(2, 2, 1), MPRConfig(4, 2, 1)),
    duration=2.0,
    seed=7,
)

#: Live-pool sweep: small enough to finish in CI's slow lane, rates
#: low enough that a single-core host keeps every cell under capacity.
DEFAULT_LIVE_GRID = GridSpec(
    lambda_qs=(30.0, 60.0, 90.0),
    lambda_us=(20.0,),
    configs=(MPRConfig(1, 1, 1), MPRConfig(2, 1, 1), MPRConfig(2, 2, 1)),
    duration=2.0,
    seed=7,
)


@dataclass(frozen=True)
class CellVerdict:
    """Model-vs-measurement outcome for one ``(λq, λu, x, y, z)`` cell."""

    backend: str  # "sim" | "live"
    lambda_q: float
    lambda_u: float
    x: int
    y: int
    z: int
    model_rq: float
    measured_rq: float
    measured_p95: float
    utilization: float
    under_capacity: bool
    within_tolerance: bool
    detail: str = ""
    #: Live cells: answers whose QueryResult status was not OK (shed,
    #: degraded, or lost); the sim backend has no answer objects.
    anomalies: int = 0

    @property
    def ratio(self) -> float:
        """measured / model (inf when the model predicts overload)."""
        if self.model_rq <= 0 or math.isinf(self.model_rq):
            return math.inf
        return self.measured_rq / self.model_rq

    @property
    def enforced(self) -> bool:
        return self.under_capacity

    @property
    def passed(self) -> bool:
        """Enforced cells must be within tolerance; others always pass."""
        return self.within_tolerance if self.enforced else True

    def to_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "lambda_q": self.lambda_q,
            "lambda_u": self.lambda_u,
            "x": self.x,
            "y": self.y,
            "z": self.z,
            "model_rq": self.model_rq,
            "measured_rq": self.measured_rq,
            "measured_p95": self.measured_p95,
            "ratio": None if math.isinf(self.ratio) else self.ratio,
            "utilization": self.utilization,
            "under_capacity": self.under_capacity,
            "within_tolerance": self.within_tolerance,
            "enforced": self.enforced,
            "passed": self.passed,
            "detail": self.detail,
            "anomalies": self.anomalies,
        }


@dataclass(frozen=True)
class ThroughputVerdict:
    """Eq. 7 ``λ̂q`` vs the simulator's throughput search, per config."""

    lambda_u: float
    x: int
    y: int
    z: int
    model_lambda_hat: float
    measured_lambda_hat: float
    relative_error: float
    within_tolerance: bool
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.within_tolerance

    def to_dict(self) -> dict[str, Any]:
        return {
            "lambda_u": self.lambda_u,
            "x": self.x,
            "y": self.y,
            "z": self.z,
            "model_lambda_hat": self.model_lambda_hat,
            "measured_lambda_hat": self.measured_lambda_hat,
            "relative_error": self.relative_error,
            "within_tolerance": self.within_tolerance,
            "passed": self.passed,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ValidationReport:
    """Everything one validation run produced."""

    cells: tuple[CellVerdict, ...]
    throughput: tuple[ThroughputVerdict, ...]
    tolerances: ToleranceSpec
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(c.passed for c in self.cells) and all(
            t.passed for t in self.throughput
        )

    def cells_for(self, backend: str) -> tuple[CellVerdict, ...]:
        return tuple(c for c in self.cells if c.backend == backend)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "tolerances": self.tolerances.to_dict(),
            "meta": self.meta,
            "cells": [c.to_dict() for c in self.cells],
            "throughput": [t.to_dict() for t in self.throughput],
        }

    def format_table(self) -> str:
        def fmt_seconds(value: float) -> str:
            return "overload" if math.isinf(value) else f"{value * 1e6:,.0f} us"

        rows = []
        for cell in self.cells:
            rows.append([
                cell.backend,
                f"{cell.lambda_q:g}",
                f"{cell.lambda_u:g}",
                f"({cell.x},{cell.y},{cell.z})",
                fmt_seconds(cell.model_rq),
                fmt_seconds(cell.measured_rq),
                "-" if math.isinf(cell.ratio) else f"{cell.ratio:.2f}",
                f"{cell.utilization:.2f}",
                "yes" if cell.enforced else "info",
                "ok" if cell.passed else "FAIL",
            ])
        text = format_table(
            ["backend", "λq", "λu", "(x,y,z)", "model Rq", "measured Rq",
             "ratio", "util", "enforced", "verdict"],
            rows,
            title="Model validation: Eq. 5 Rq vs measurement",
        )
        if self.throughput:
            rows = [
                [
                    f"{t.lambda_u:g}",
                    f"({t.x},{t.y},{t.z})",
                    f"{t.model_lambda_hat:,.0f}/s",
                    f"{t.measured_lambda_hat:,.0f}/s",
                    f"{t.relative_error:.2f}",
                    "ok" if t.passed else "FAIL",
                ]
                for t in self.throughput
            ]
            text += "\n\n" + format_table(
                ["λu", "(x,y,z)", "Eq.7 λ̂q", "sim λ̂q", "rel err", "verdict"],
                rows,
                title="Model validation: Eq. 7 max throughput vs simulator",
            )
        verdict = "PASS" if self.ok else "FAIL"
        enforced = sum(1 for c in self.cells if c.enforced)
        text += (
            f"\n\nvalidation {verdict}: {len(self.cells)} cells "
            f"({enforced} enforced), {len(self.throughput)} throughput checks"
        )
        return text


def _worker_utilization(
    config: MPRConfig, lambda_q: float, lambda_u: float, tq: float, tu: float
) -> float:
    return (
        config.worker_query_rate(lambda_q) * tq
        + config.worker_update_rate(lambda_u) * tu
    )


def _ratio_within(measured: float, model: float, factor: float, slack: float = 0.0) -> bool:
    """Two-sided tolerance: each within ``factor``× (+ slack) of the other."""
    if math.isinf(model) or math.isinf(measured):
        return False
    return (
        measured <= model * factor + slack
        and model <= measured * factor + slack
    )


# ----------------------------------------------------------------------
# Simulator backend
# ----------------------------------------------------------------------
def validate_simulator(
    grid: GridSpec = DEFAULT_SIM_GRID,
    tolerances: ToleranceSpec = ToleranceSpec(),
    profile=None,
    machine: MachineSpec | None = None,
    rq_bound: float = 0.1,
    check_throughput: bool = True,
) -> tuple[list[CellVerdict], list[ThroughputVerdict]]:
    """Sweep the grid on the discrete-event simulator.

    Each cell simulates the cell's stream and compares the measured
    mean ``Rq`` against Eq. 5; optionally each config additionally runs
    the paper's throughput search and compares against Eq. 7.
    """
    if profile is None:
        profile = paper_profile("Dijkstra")
    if machine is None:
        machine = MachineSpec(total_cores=19)

    cells: list[CellVerdict] = []
    for lambda_q in grid.lambda_qs:
        for lambda_u in grid.lambda_us:
            for config in grid.configs:
                model = response_time(
                    config, Workload(lambda_q, lambda_u), profile, machine
                )
                measurement = measure_response_time(
                    config, profile, machine, lambda_q, lambda_u,
                    duration=grid.duration, seed=grid.seed,
                )
                measured = (
                    math.inf if measurement.overloaded
                    else measurement.mean_response_time
                )
                utilization = _worker_utilization(
                    config, lambda_q, lambda_u, profile.tq, profile.tu
                )
                under = (
                    not math.isinf(model)
                    and utilization <= tolerances.utilization_cap
                )
                within = _ratio_within(measured, model, tolerances.sim_rq_factor)
                detail = ""
                if under and not within:
                    detail = (
                        f"sim mean Rq {measured:.6f}s vs model {model:.6f}s "
                        f"outside factor {tolerances.sim_rq_factor}"
                    )
                cells.append(CellVerdict(
                    backend="sim",
                    lambda_q=lambda_q, lambda_u=lambda_u,
                    x=config.x, y=config.y, z=config.z,
                    model_rq=model, measured_rq=measured,
                    measured_p95=measurement.p95_response_time,
                    utilization=utilization,
                    under_capacity=under, within_tolerance=within,
                    detail=detail,
                ))

    throughput: list[ThroughputVerdict] = []
    if check_throughput:
        lambda_u = grid.lambda_us[0]
        for config in grid.configs:
            model_hat = max_throughput_closed_form(
                config, lambda_u, profile, machine, rq_bound
            )
            measured_hat = find_max_throughput(
                config, profile, machine, lambda_u,
                rq_bound=rq_bound, duration=min(grid.duration, 0.5),
                seed=grid.seed,
            )
            if model_hat <= 0 and measured_hat <= 0:
                rel, within, detail = 0.0, True, "both zero"
            elif model_hat <= 0:
                rel, within = math.inf, False
                detail = "model says infeasible, simulator disagrees"
            else:
                rel = abs(measured_hat - model_hat) / model_hat
                within = rel <= tolerances.throughput_rel
                detail = "" if within else (
                    f"sim λ̂q {measured_hat:,.0f} vs Eq.7 {model_hat:,.0f} "
                    f"(rel err {rel:.2f} > {tolerances.throughput_rel})"
                )
            throughput.append(ThroughputVerdict(
                lambda_u=lambda_u,
                x=config.x, y=config.y, z=config.z,
                model_lambda_hat=model_hat,
                measured_lambda_hat=measured_hat,
                relative_error=rel, within_tolerance=within, detail=detail,
            ))
    return cells, throughput


# ----------------------------------------------------------------------
# Live process-pool backend
# ----------------------------------------------------------------------
def _stage_mean(telemetry: Telemetry, stage: str) -> float:
    histogram = telemetry.histogram(stage)
    if histogram is None or histogram.count == 0:
        return 0.0
    return histogram.mean


def _stage_p95(telemetry: Telemetry, stage: str) -> float:
    stats = telemetry.stage_stats(stage)
    return float(stats.get("p95", 0.0)) if stats else 0.0


def validate_live(
    grid: GridSpec = DEFAULT_LIVE_GRID,
    tolerances: ToleranceSpec = ToleranceSpec(),
    network=None,
    num_objects: int = 48,
    k: int = 5,
    total_cores: int = 19,
) -> list[CellVerdict]:
    """Sweep the grid on the live process pool.

    Per cell: generate the cell's stream, pace it through a fresh pool
    (``batch_size=1`` so no batcher fill latency pollutes the stage
    timings), calibrate profile + machine from the run's own telemetry,
    and compare the stage-assembled mean response against Eq. 5 at the
    realized rates.
    """
    if network is None:
        network = grid_network(12, 12, seed=3)

    cells: list[CellVerdict] = []
    for lambda_q in grid.lambda_qs:
        for lambda_u in grid.lambda_us:
            workload = generate_workload(
                network,
                num_objects=num_objects,
                lambda_q=lambda_q,
                lambda_u=lambda_u,
                duration=grid.duration,
                k=k,
                seed=grid.seed,
            )
            realized_lq = workload.num_queries / grid.duration
            realized_lu = workload.num_updates / grid.duration
            for config in grid.configs:
                telemetry = Telemetry()
                solution = DijkstraKNN(network)
                executor = build_executor(
                    config, solution, workload.initial_objects,
                    mode="process", telemetry=telemetry, batch_size=1,
                )
                try:
                    answers = replay_timed(executor, workload.tasks)
                finally:
                    executor.close()
                anomalies = sum(
                    1 for result in envelope_answers(answers).values()
                    if not result.ok
                )

                profile = profile_from_telemetry(telemetry, "live-dijkstra")
                machine = machine_spec_from_telemetry(
                    telemetry, total_cores=total_cores
                )
                model = response_time(
                    config, Workload(realized_lq, realized_lu), profile, machine
                )
                measured = (
                    _stage_mean(telemetry, "queue_wait")
                    + _stage_mean(telemetry, "execute")
                    + _stage_mean(telemetry, "dispatch")
                )
                if config.x > 1:
                    measured += _stage_mean(telemetry, "merge")
                measured_p95 = (
                    _stage_p95(telemetry, "queue_wait")
                    + _stage_p95(telemetry, "execute")
                )
                utilization = _worker_utilization(
                    config, realized_lq, realized_lu, profile.tq, profile.tu
                )
                under = (
                    not math.isinf(model)
                    and utilization <= tolerances.utilization_cap
                )
                within = _ratio_within(
                    measured, model,
                    tolerances.live_rq_factor, tolerances.live_rq_slack,
                )
                detail = ""
                if under and not within:
                    detail = (
                        f"live mean Rq {measured:.6f}s vs model {model:.6f}s "
                        f"outside factor {tolerances.live_rq_factor} "
                        f"(+{tolerances.live_rq_slack}s slack)"
                    )
                cells.append(CellVerdict(
                    backend="live",
                    lambda_q=realized_lq, lambda_u=realized_lu,
                    x=config.x, y=config.y, z=config.z,
                    model_rq=model, measured_rq=measured,
                    measured_p95=measured_p95,
                    utilization=utilization,
                    under_capacity=under, within_tolerance=within,
                    detail=detail,
                    anomalies=anomalies,
                ))
    return cells


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
def run_validation(
    sim_grid: GridSpec = DEFAULT_SIM_GRID,
    live_grid: GridSpec = DEFAULT_LIVE_GRID,
    tolerances: ToleranceSpec = ToleranceSpec(),
    include_sim: bool = True,
    include_live: bool = True,
) -> ValidationReport:
    """Run the full validation sweep and assemble the report."""
    cells: list[CellVerdict] = []
    throughput: list[ThroughputVerdict] = []
    if include_sim:
        sim_cells, sim_tp = validate_simulator(sim_grid, tolerances)
        cells.extend(sim_cells)
        throughput.extend(sim_tp)
    if include_live:
        cells.extend(validate_live(live_grid, tolerances))
    meta = {
        "sim_grid": {
            "lambda_qs": list(sim_grid.lambda_qs),
            "lambda_us": list(sim_grid.lambda_us),
            "configs": [[c.x, c.y, c.z] for c in sim_grid.configs],
            "duration": sim_grid.duration,
            "seed": sim_grid.seed,
        } if include_sim else None,
        "live_grid": {
            "lambda_qs": list(live_grid.lambda_qs),
            "lambda_us": list(live_grid.lambda_us),
            "configs": [[c.x, c.y, c.z] for c in live_grid.configs],
            "duration": live_grid.duration,
            "seed": live_grid.seed,
        } if include_live else None,
    }
    return ValidationReport(
        cells=tuple(cells), throughput=tuple(throughput),
        tolerances=tolerances, meta=meta,
    )


def write_report(report: ValidationReport, directory: str | Path) -> tuple[Path, Path]:
    """Persist ``validation.json`` + ``validation.txt`` under a directory."""
    import json

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    json_path = directory / "validation.json"
    txt_path = directory / "validation.txt"
    json_path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
    txt_path.write_text(report.format_table() + "\n")
    return json_path, txt_path

"""Fixed-bucket log-scale latency histograms.

Per-stage latencies span five orders of magnitude (sub-μs no-op spans
to multi-second drains), so equal-width bins are useless and exact
sample retention is too heavy for a telemetry hot path.  A
:class:`LogHistogram` keeps a *fixed* array of geometrically spaced
buckets — constant memory regardless of sample count, O(1) recording —
plus exact count/sum/sum-of-squares moments, which is everything the
calibration feedback (mean, variance) and the SLO reporting
(p50/p95/p99) need.

The layout mirrors what serving systems export to their metrics
pipelines (Prometheus-style exponential buckets): ``buckets_per_decade``
buckets per power of ten between ``lo`` and ``hi`` seconds, with
underflow/overflow buckets at the ends.  Percentiles interpolate
geometrically inside the winning bucket and are clamped to the observed
``[min, max]`` so tiny sample counts never report a bucket edge wider
than reality.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["LogHistogram"]


class LogHistogram:
    """Log-scale histogram of non-negative durations (seconds).

    Parameters
    ----------
    lo, hi:
        Bucketed range.  Samples below ``lo`` land in the underflow
        bucket, above ``hi`` in the overflow bucket; both still count
        toward the exact moments.
    buckets_per_decade:
        Resolution: relative bucket width is ``10 ** (1/n)`` (~33% for
        the default 8), plenty for percentile reporting.
    """

    __slots__ = (
        "_lo", "_hi", "_bpd", "_log_lo", "_num_buckets", "_counts",
        "count", "total", "sum_squares", "min_value", "max_value",
    )

    def __init__(
        self,
        lo: float = 1e-7,
        hi: float = 1e3,
        buckets_per_decade: int = 8,
    ) -> None:
        if lo <= 0 or hi <= lo:
            raise ValueError("need 0 < lo < hi")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self._lo = lo
        self._hi = hi
        self._bpd = buckets_per_decade
        self._log_lo = math.log10(lo)
        decades = math.log10(hi) - self._log_lo
        self._num_buckets = int(math.ceil(decades * buckets_per_decade))
        # [0] underflow, [1 .. n] bucketed range, [n + 1] overflow.
        self._counts = [0] * (self._num_buckets + 2)
        self.count = 0
        self.total = 0.0
        self.sum_squares = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, value: float, count: int = 1) -> None:
        """Add ``count`` observations of ``value`` seconds."""
        if count < 1:
            return
        self.count += count
        self.total += value * count
        self.sum_squares += value * value * count
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        self._counts[self._index(value)] += count

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def _index(self, value: float) -> int:
        if value < self._lo:
            return 0
        if value >= self._hi:
            return self._num_buckets + 1
        index = int((math.log10(value) - self._log_lo) * self._bpd) + 1
        # Guard float edge cases at bucket boundaries.
        return min(max(index, 1), self._num_buckets)

    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram with the same layout into this one."""
        if (other._lo, other._hi, other._bpd) != (self._lo, self._hi, self._bpd):
            raise ValueError("cannot merge histograms with different layouts")
        self.count += other.count
        self.total += other.total
        self.sum_squares += other.sum_squares
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the recorded samples (exact)."""
        if self.count < 2:
            return 0.0
        mean = self.mean
        return max(self.sum_squares / self.count - mean * mean, 0.0)

    def _edges(self, index: int) -> tuple[float, float]:
        """(low, high) bounds of bucket ``index`` in the bucketed range."""
        low = 10.0 ** (self._log_lo + (index - 1) / self._bpd)
        high = 10.0 ** (self._log_lo + index / self._bpd)
        return low, high

    def percentile(self, quantile: float) -> float:
        """Approximate quantile in seconds (``0 <= quantile <= 1``)."""
        return self.percentiles((quantile,))[0]

    def percentiles(self, quantiles: Sequence[float]) -> list[float]:
        """Approximate several quantiles in one cumulative pass."""
        for quantile in quantiles:
            if not 0.0 <= quantile <= 1.0:
                raise ValueError(f"quantile {quantile} outside [0, 1]")
        if self.count == 0:
            return [0.0] * len(quantiles)
        order = sorted(range(len(quantiles)), key=lambda i: quantiles[i])
        results = [0.0] * len(quantiles)
        cumulative = 0
        position = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            while position < len(order):
                slot = order[position]
                rank = quantiles[slot] * self.count
                if rank > cumulative:
                    break
                results[slot] = self._bucket_value(index)
                position += 1
            if position == len(order):
                break
        return results

    def _bucket_value(self, index: int) -> float:
        """Representative value of a bucket, clamped to observed range."""
        if index == 0:
            value = self._lo
        elif index == self._num_buckets + 1:
            value = self._hi
        else:
            low, high = self._edges(index)
            value = math.sqrt(low * high)  # geometric midpoint
        return min(max(value, self.min_value), self.max_value)

    def nonzero_buckets(self) -> list[tuple[float, int]]:
        """(bucket upper edge, count) for every populated bucket."""
        rows: list[tuple[float, int]] = []
        for index, bucket_count in enumerate(self._counts):
            if not bucket_count:
                continue
            if index == 0:
                edge = self._lo
            elif index == self._num_buckets + 1:
                edge = math.inf
            else:
                edge = self._edges(index)[1]
            rows.append((edge, bucket_count))
        return rows

    def to_dict(self) -> dict[str, float | int]:
        """JSON-ready summary (counts, moments, headline percentiles)."""
        p50, p95, p99 = self.percentiles((0.50, 0.95, 0.99))
        return {
            "count": self.count,
            "mean": self.mean,
            "variance": self.variance,
            "min": self.min_value if self.count else 0.0,
            "max": self.max_value if self.count else 0.0,
            "p50": p50,
            "p95": p95,
            "p99": p99,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LogHistogram(count={self.count}, mean={self.mean:.3g}, "
            f"p99={self.percentile(0.99):.3g})"
        )

"""Per-query distributed tracing and per-stage metrics.

The paper's optimizer picks ``(x, y, z)`` from a measured profile, but
an operator of the running system needs to see where one query's
latency actually goes: routing in the parent (``dispatch``), sitting in
a w-queue (``queue_wait``), executing ``A.Q`` on a worker
(``execute``), the a-core's merge (``merge``), and the result's trip
back to the parent (``ack``).  This module is that visibility layer:

* :class:`Span` — one timed stage, optionally attributed to a worker;
* :class:`QueryTrace` — the stitched span tree of one query across
  every worker that served it (workers stamp monotonic timings into
  their result pipes; the parent assembles them here);
* :class:`Telemetry` — the handle executors record into: a fixed-bucket
  log-scale :class:`~repro.obs.histogram.LogHistogram` per stage,
  named counters, and a bounded trace store.

Cross-process clocks: spans are stamped with ``time.monotonic()``,
which on the platforms the pool supports reads a system-wide clock
(``CLOCK_MONOTONIC``), so parent and worker timestamps are directly
comparable without calibration.

Cost when disabled: executors hold :data:`NULL_TELEMETRY` (or any
``Telemetry`` with ``enabled=False``) and guard every stamp with a
single ``if telemetry.enabled`` branch; no span objects, no locks, no
timestamps are taken on that path.  ``tests/test_telemetry_overhead.py``
pins the overhead against a frozen copy of the pre-telemetry executor.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from .histogram import LogHistogram

__all__ = [
    "NULL_TELEMETRY",
    "QueryTrace",
    "Span",
    "Telemetry",
    "TRACE_STAGES",
]

#: The canonical per-query pipeline stages, in causal order.
TRACE_STAGES = ("dispatch", "queue_wait", "execute", "merge", "ack")

#: Stages recorded per worker (a query fans out to ``x`` workers; each
#: contributes one of these).  ``dispatch`` and ``merge`` happen once
#: per query in the parent.
_PER_WORKER_STAGES = frozenset({"queue_wait", "execute", "ack"})


@dataclass(frozen=True)
class Span:
    """One timed stage of one task's journey.

    ``start`` is a ``time.monotonic()`` timestamp (seconds); ``worker``
    is the serving ``(layer, row, column)`` worker id for the stages
    that happen on a worker, ``None`` for parent-side stages.
    """

    stage: str
    start: float
    duration: float
    worker: tuple[int, int, int] | None = None

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class QueryTrace:
    """The stitched span tree of one query.

    A query routed to ``x`` workers is complete when the parent holds
    its ``dispatch`` and ``merge`` spans plus ``queue_wait``/
    ``execute``/``ack`` from every expected worker.  Replayed batches
    (worker respawn) re-report spans for the same ``(stage, worker)``
    slot; the last report wins, so traces stay complete and
    duplicate-free across faults.
    """

    query_id: int
    expected_workers: tuple[tuple[int, int, int], ...] = ()
    spans: list[Span] = field(default_factory=list)

    def add(self, span: Span) -> None:
        """Insert a span, replacing a prior span of the same slot."""
        for index, existing in enumerate(self.spans):
            if existing.stage == span.stage and existing.worker == span.worker:
                self.spans[index] = span
                return
        self.spans.append(span)

    def stage_spans(self, stage: str) -> list[Span]:
        return [span for span in self.spans if span.stage == stage]

    def stage_seconds(self, stage: str) -> float:
        return sum(span.duration for span in self.stage_spans(stage))

    def is_complete(self) -> bool:
        """Does the trace cover the whole pipeline for every worker?"""
        have = {(span.stage, span.worker) for span in self.spans}
        if ("dispatch", None) not in have or ("merge", None) not in have:
            return False
        return all(
            (stage, worker) in have
            for worker in self.expected_workers
            for stage in _PER_WORKER_STAGES
        )

    @property
    def response_time(self) -> float:
        """End-to-end latency spanned by the recorded spans."""
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)

    def to_dict(self) -> dict[str, Any]:
        return {
            "query_id": self.query_id,
            "complete": self.is_complete(),
            "response_time": self.response_time,
            "spans": [
                {
                    "stage": span.stage,
                    "start": span.start,
                    "duration": span.duration,
                    "worker": list(span.worker) if span.worker else None,
                }
                for span in sorted(self.spans, key=lambda s: s.start)
            ],
        }


class _ActiveSpan:
    """Context manager that records its wall time on exit."""

    __slots__ = ("_telemetry", "_stage", "_query_id", "_worker", "_start")

    def __init__(self, telemetry, stage, query_id, worker):
        self._telemetry = telemetry
        self._stage = stage
        self._query_id = query_id
        self._worker = worker

    def __enter__(self) -> "_ActiveSpan":
        self._start = time.monotonic()
        return self

    def __exit__(self, *exc_info) -> None:
        self._telemetry.record(
            self._stage,
            time.monotonic() - self._start,
            start=self._start,
            query_id=self._query_id,
            worker=self._worker,
        )


class _NullSpan:
    """The do-nothing span handed out while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Telemetry:
    """The recording handle executors carry.

    One instance aggregates any number of runs: per-stage latency
    histograms (fixed log-scale buckets, p50/p95/p99 export), named
    counters, and up to ``max_traces`` per-query span trees (later
    queries still feed the histograms; only the trace store is
    bounded).  Thread-safe — the threaded executor's workers and the
    pool's parent-side supervisor record concurrently.

    The disabled form (``Telemetry(enabled=False)``, or the shared
    :data:`NULL_TELEMETRY`) accepts every call as a no-op so call sites
    need exactly one branch, on :attr:`enabled`, to stay off the hot
    path entirely.
    """

    def __init__(self, enabled: bool = True, max_traces: int = 2048) -> None:
        if max_traces < 0:
            raise ValueError("max_traces must be >= 0")
        self.enabled = enabled
        self._max_traces = max_traces
        self._lock = threading.Lock()
        self._stages: dict[str, LogHistogram] = {}
        self._counters: dict[str, int] = {}
        self._traces: dict[int, QueryTrace] = {}
        self._traces_dropped = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(
        self,
        stage: str,
        *,
        query_id: int | None = None,
        worker: tuple[int, int, int] | None = None,
    ):
        """A context manager timing a block into ``stage``."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, stage, query_id, worker)

    def record(
        self,
        stage: str,
        duration: float,
        *,
        start: float | None = None,
        query_id: int | None = None,
        worker: tuple[int, int, int] | None = None,
        count: int = 1,
    ) -> None:
        """Record a finished stage; attach it to a trace if one exists."""
        if not self.enabled:
            return
        with self._lock:
            histogram = self._stages.get(stage)
            if histogram is None:
                histogram = self._stages[stage] = LogHistogram()
            histogram.record(duration, count)
            if query_id is not None:
                trace = self._traces.get(query_id)
                if trace is not None:
                    trace.add(
                        Span(stage, start if start is not None else 0.0,
                             duration, worker)
                    )

    def count(self, name: str, value: int = 1) -> None:
        """Bump a named counter."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def begin_trace(
        self,
        query_id: int,
        expected_workers: Sequence[tuple[int, int, int]] = (),
    ) -> None:
        """Open the span tree for a query (called at submit time)."""
        if not self.enabled:
            return
        with self._lock:
            if query_id in self._traces:
                return
            if len(self._traces) >= self._max_traces:
                self._traces_dropped += 1
                return
            self._traces[query_id] = QueryTrace(
                query_id, tuple(tuple(w) for w in expected_workers)
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stage_names(self) -> list[str]:
        """Recorded stages, canonical pipeline order first."""
        with self._lock:
            seen = list(self._stages)
        ordered = [s for s in TRACE_STAGES if s in seen]
        ordered.extend(sorted(s for s in seen if s not in TRACE_STAGES))
        return ordered

    def histogram(self, stage: str) -> LogHistogram | None:
        with self._lock:
            return self._stages.get(stage)

    def stage_stats(self, stage: str) -> dict[str, float | int]:
        """Count/mean/percentile summary of one stage ({} if unseen)."""
        histogram = self.histogram(stage)
        return histogram.to_dict() if histogram is not None else {}

    @property
    def counters(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def trace(self, query_id: int) -> QueryTrace | None:
        with self._lock:
            return self._traces.get(query_id)

    def traces(self) -> list[QueryTrace]:
        """All retained traces, by query id."""
        with self._lock:
            return [self._traces[qid] for qid in sorted(self._traces)]

    @property
    def traces_dropped(self) -> int:
        return self._traces_dropped

    def summary(self) -> dict[str, Any]:
        """JSON-ready snapshot of stages, counters, and trace health."""
        traces = self.traces()
        return {
            "stages": {
                stage: self.stage_stats(stage) for stage in self.stage_names()
            },
            "counters": self.counters,
            "traces": {
                "retained": len(traces),
                "complete": sum(t.is_complete() for t in traces),
                "dropped": self._traces_dropped,
            },
        }

    def iter_stage_rows(self) -> Iterator[tuple[str, Mapping[str, float | int]]]:
        """(stage, stats) rows for report renderers."""
        for stage in self.stage_names():
            yield stage, self.stage_stats(stage)

    def clear(self) -> None:
        """Drop all recorded data (the handle stays usable)."""
        with self._lock:
            self._stages.clear()
            self._counters.clear()
            self._traces.clear()
            self._traces_dropped = 0


#: Shared disabled handle: the default for every executor, so the
#: no-telemetry hot path is one attribute load and one branch.
NULL_TELEMETRY = Telemetry(enabled=False, max_traces=0)

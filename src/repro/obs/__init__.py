"""repro.obs — per-query tracing and per-stage latency metrics.

The observability layer of the reproduction: executors record
``dispatch → queue_wait → execute → merge → ack`` spans into a
:class:`Telemetry` handle (near-zero-cost when disabled), which stitches
them into per-query :class:`QueryTrace` trees and aggregates fixed-
bucket log-scale :class:`LogHistogram`\\ s with p50/p95/p99 export.
Standalone by design: this package imports nothing from the rest of
``repro``, so any layer may depend on it.
"""

from .histogram import LogHistogram
from .telemetry import NULL_TELEMETRY, TRACE_STAGES, QueryTrace, Span, Telemetry

__all__ = [
    "LogHistogram",
    "NULL_TELEMETRY",
    "QueryTrace",
    "Span",
    "TRACE_STAGES",
    "Telemetry",
]

"""The moving-object set ``M`` (taxis, Pokémons, bikes).

Objects live on network nodes.  Every kNN solution keeps its own object
bookkeeping, but the canonical mutable set below is used by workload
generation, by the reference (oracle) kNN, and by tests checking the
partition/replication invariants of the core matrix.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator

from ..graph.road_network import RoadNetwork


class ObjectSet:
    """A mutable mapping of object ids to node locations.

    Maintains both directions — ``object -> node`` and the per-node
    bucket ``node -> {objects}`` — so kNN scans and update handling are
    both O(1) per step.
    """

    def __init__(self, locations: dict[int, int] | None = None) -> None:
        self._location: dict[int, int] = {}
        self._bucket: dict[int, set[int]] = {}
        self._next_id = 0
        if locations:
            for object_id, node in locations.items():
                self.insert(object_id, node)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def random_on_network(
        cls,
        network: RoadNetwork,
        count: int,
        seed: int = 0,
        candidate_nodes: Iterable[int] | None = None,
    ) -> "ObjectSet":
        """Place ``count`` objects uniformly on the network's nodes.

        This mirrors the paper's setup ("we randomly select m nodes in the
        network at each of which an object is created and placed").  Pass
        ``candidate_nodes`` (e.g. POIs) to restrict placement sites.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        rng = random.Random(seed)
        nodes = list(candidate_nodes) if candidate_nodes is not None else None
        if nodes is not None and not nodes and count > 0:
            raise ValueError("candidate_nodes is empty but count > 0")
        objects = cls()
        for object_id in range(count):
            if nodes is not None:
                node = rng.choice(nodes)
            else:
                node = rng.randrange(network.num_nodes)
            objects.insert(object_id, node)
        return objects

    # ------------------------------------------------------------------
    # Mutations (the A.I / A.D semantics of the paper)
    # ------------------------------------------------------------------
    def insert(self, object_id: int, node: int) -> None:
        if object_id in self._location:
            raise KeyError(f"object {object_id} already present")
        self._location[object_id] = node
        self._bucket.setdefault(node, set()).add(object_id)
        if object_id >= self._next_id:
            self._next_id = object_id + 1

    def delete(self, object_id: int) -> int:
        """Remove an object, returning the node it was at."""
        try:
            node = self._location.pop(object_id)
        except KeyError:
            raise KeyError(f"object {object_id} not present") from None
        bucket = self._bucket[node]
        bucket.discard(object_id)
        if not bucket:
            del self._bucket[node]
        return node

    def move(self, object_id: int, new_node: int) -> tuple[int, int]:
        """Relocate an object; returns ``(old_node, new_node)``.

        Semantically a delete followed by an insert, exactly how the
        paper says kNN solutions process a location change.
        """
        old_node = self.delete(object_id)
        self.insert(object_id, new_node)
        return old_node, new_node

    def fresh_id(self) -> int:
        """An object id never used before (for RU-mode inserts)."""
        object_id = self._next_id
        self._next_id += 1
        return object_id

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def location_of(self, object_id: int) -> int:
        try:
            return self._location[object_id]
        except KeyError:
            raise KeyError(f"object {object_id} not present") from None

    def objects_at(self, node: int) -> frozenset[int]:
        return frozenset(self._bucket.get(node, ()))

    def occupied_nodes(self) -> Iterator[int]:
        return iter(self._bucket)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._location

    def __len__(self) -> int:
        return len(self._location)

    def __iter__(self) -> Iterator[int]:
        return iter(self._location)

    def items(self) -> Iterator[tuple[int, int]]:
        """Yield ``(object_id, node)`` pairs."""
        return iter(self._location.items())

    def snapshot(self) -> dict[int, int]:
        """An immutable-by-copy view of ``object -> node``."""
        return dict(self._location)

    def copy(self) -> "ObjectSet":
        clone = ObjectSet()
        clone._location = dict(self._location)
        clone._bucket = {node: set(bucket) for node, bucket in self._bucket.items()}
        clone._next_id = self._next_id
        return clone

    def random_object(self, rng: random.Random) -> int:
        """A uniformly random present object (for RU-mode deletes).

        O(n) worst case but amortized cheap via reservoir over the dict —
        we simply materialize keys; workloads are generated once, so this
        is off the hot path.
        """
        if not self._location:
            raise KeyError("object set is empty")
        return rng.choice(list(self._location))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ObjectSet(size={len(self._location)})"

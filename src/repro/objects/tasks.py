"""Task types: the single stream of kNN queries and object updates.

Section III models the system input as "a single stream of kNN queries
and object updates with stochastic arrivals".  A task is either a
query, an object insert, or an object delete; an object *movement*
(taxi-hailing mode) is encoded — as the paper prescribes — as a delete
immediately followed by an insert that share a ``movement_id``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Union


class TaskKind(Enum):
    QUERY = "query"
    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True, order=True)
class QueryTask:
    """A kNN query issued from ``location`` asking for ``k`` objects.

    ``deadline`` is this query's latency SLO in seconds, measured from
    the moment the executor accepts it (wall clock, not stream time).
    ``None`` falls back to the executor's configured default; with the
    resilience layer enabled, a query past its deadline is hedged to a
    different replica row instead of waiting on recovery.

    ``tenant`` names the originating tenant for the serving tier's
    weighted fairness (``repro.serve.fairness``); it never affects
    routing or answers, only scheduling order at the server edge.
    """

    arrival_time: float
    query_id: int
    location: int
    k: int
    deadline: float | None = field(default=None, compare=False)
    tenant: str | None = field(default=None, compare=False)

    kind: TaskKind = field(default=TaskKind.QUERY, compare=False)


@dataclass(frozen=True, order=True)
class InsertTask:
    """Insert ``object_id`` at ``location``.

    ``movement_id`` links the delete/insert pair of a TH-mode movement;
    standalone RU-mode inserts leave it ``None``.
    """

    arrival_time: float
    object_id: int
    location: int
    movement_id: int | None = None

    kind: TaskKind = field(default=TaskKind.INSERT, compare=False)


@dataclass(frozen=True, order=True)
class DeleteTask:
    """Delete ``object_id`` from wherever it currently is."""

    arrival_time: float
    object_id: int
    movement_id: int | None = None

    kind: TaskKind = field(default=TaskKind.DELETE, compare=False)


Task = Union[QueryTask, InsertTask, DeleteTask]
UpdateTask = Union[InsertTask, DeleteTask]


def is_query(task: Task) -> bool:
    return task.kind is TaskKind.QUERY


def is_update(task: Task) -> bool:
    return task.kind is not TaskKind.QUERY


def count_kinds(tasks: list[Task]) -> dict[TaskKind, int]:
    """Tally of task kinds in a stream (workload diagnostics)."""
    counts = {kind: 0 for kind in TaskKind}
    for task in tasks:
        counts[task.kind] += 1
    return counts


def validate_stream(tasks: list[Task]) -> None:
    """Sanity-check a task stream.

    Raises ``ValueError`` when arrival times are not non-decreasing, when
    a delete targets an object that does not exist at that point, or when
    an insert reuses a live object id.  Used by workload tests and by the
    executors' debug mode.
    """
    last_time = float("-inf")
    live: set[int] = set()
    for position, task in enumerate(tasks):
        if task.arrival_time < last_time:
            raise ValueError(
                f"task #{position} arrives at {task.arrival_time} before "
                f"predecessor at {last_time}"
            )
        last_time = task.arrival_time
        if task.kind is TaskKind.INSERT:
            if task.object_id in live:
                raise ValueError(
                    f"task #{position} inserts live object {task.object_id}"
                )
            live.add(task.object_id)
        elif task.kind is TaskKind.DELETE:
            if task.object_id not in live:
                raise ValueError(
                    f"task #{position} deletes unknown object {task.object_id}"
                )
            live.discard(task.object_id)


def seed_stream_with_objects(tasks: list[Task], initial_objects: set[int]) -> None:
    """Variant of :func:`validate_stream` aware of pre-placed objects."""
    last_time = float("-inf")
    live = set(initial_objects)
    for position, task in enumerate(tasks):
        if task.arrival_time < last_time:
            raise ValueError(
                f"task #{position} arrives at {task.arrival_time} before "
                f"predecessor at {last_time}"
            )
        last_time = task.arrival_time
        if task.kind is TaskKind.INSERT:
            if task.object_id in live:
                raise ValueError(
                    f"task #{position} inserts live object {task.object_id}"
                )
            live.add(task.object_id)
        elif task.kind is TaskKind.DELETE:
            if task.object_id not in live:
                raise ValueError(
                    f"task #{position} deletes unknown object {task.object_id}"
                )
            live.discard(task.object_id)

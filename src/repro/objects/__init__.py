"""Moving objects and the query/update task stream."""

from .object_set import ObjectSet
from .tasks import (
    DeleteTask,
    InsertTask,
    QueryTask,
    Task,
    TaskKind,
    UpdateTask,
    count_kinds,
    is_query,
    is_update,
    seed_stream_with_objects,
    validate_stream,
)

__all__ = [
    "ObjectSet",
    "DeleteTask",
    "InsertTask",
    "QueryTask",
    "Task",
    "TaskKind",
    "UpdateTask",
    "count_kinds",
    "is_query",
    "is_update",
    "seed_stream_with_objects",
    "validate_stream",
]

"""Index-free Dijkstra kNN — the paper's update-friendly baseline.

"To answer a kNN query from a query point q, we run Dijkstra from q and
explore the graph just enough to locate the k closest objects to q.
Dijkstra does not use an elaborate index and therefore has very low
object update costs." (Section II)

The only bookkeeping is the per-node object bucket, so inserts and
deletes are O(1); queries pay an incremental Dijkstra expansion —
executed by the early-terminating top-k kernel
(:meth:`repro.graph.kernels.CSRKernels.topk_objects`), which settles
distance buckets with vectorized relaxation instead of popping a heap
node at a time and returns exactly the answers the classic expansion
produced (``tests/test_kernels.py`` pins the equivalence).

Long-range routing: pass a :class:`~repro.graph.ch.ContractionHierarchy`
to route queries whose plain expansion would settle a large fraction of
the graph (sparse objects, large ``k``) to the CH engine's hub-label
path instead.  Auto-routing only engages on integral-weight networks
(``ch.exact``), where CH distances are bit-identical to the kernels, so
answers never change — only the time to produce them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..graph.road_network import RoadNetwork
from ..objects.object_set import ObjectSet
from .base import KNNSolution, Neighbor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.ch import ContractionHierarchy

#: Fallback expected-settled-node crossover for routing to the CH path,
#: used when the measured calibration cannot run (no hierarchy, inexact
#: weights, empty graph).  With ``ch_cutoff=None`` (the default) routed
#: solutions measure the real crossover on their own graph via
#: :func:`repro.graph.ch.calibrate_ch_cutoff` at the first routing
#: decision and cache it; pass an explicit value to skip the probe.
DEFAULT_CH_CUTOFF = 4096.0


def _calibrated_cutoff(network: RoadNetwork, ch) -> float:
    """Resolve an automatic cutoff: measure when possible, else default."""
    if ch is None or not ch.exact or network.num_nodes == 0:
        return DEFAULT_CH_CUTOFF
    from ..graph.ch import calibrate_ch_cutoff

    try:
        measured = float(calibrate_ch_cutoff(network, ch, samples=3))
    except Exception:  # pragma: no cover - probe must never break queries
        return DEFAULT_CH_CUTOFF
    if not np.isfinite(measured) or measured <= 0:
        return DEFAULT_CH_CUTOFF
    return measured


class DijkstraKNN(KNNSolution):
    """Plain Dijkstra-expansion kNN over per-node object buckets."""

    name = "Dijkstra"

    def __init__(
        self,
        network: RoadNetwork,
        objects: Mapping[int, int] | None = None,
        *,
        ch: "ContractionHierarchy | None" = None,
        ch_cutoff: float | None = None,
    ) -> None:
        self._network = network
        self._objects = ObjectSet(dict(objects) if objects else None)
        if ch is not None and ch.network is not network:
            raise ValueError(
                "contraction hierarchy was built over a different network"
            )
        self._ch = ch
        # None = auto: measure the crossover on first routing decision.
        self._ch_cutoff = None if ch_cutoff is None else float(ch_cutoff)
        # Per-node object counts for the top-k kernel; derived data,
        # built lazily on first query and maintained incrementally.
        self._counts: np.ndarray | None = None

    def _route_kernels(self, k: int):
        """Pick the engine for this query: plain kernels or the CH path.

        The plain top-k expansion settles ≈ ``k * num_nodes / objects``
        nodes on uniform objects; past the cutoff the CH sweep+join is
        cheaper.  Only exact (integral-weight) hierarchies are routed
        to, keeping answers bit-identical either way.
        """
        ch = self._ch
        if ch is None or not ch.exact:
            return self._network.kernels
        total = len(self._objects)
        if total == 0:
            return self._network.kernels
        expected_settled = k * self._network.num_nodes / total
        if expected_settled >= self.ch_cutoff:
            return ch.kernels
        return self._network.kernels

    @property
    def ch_cutoff(self) -> float:
        """The routing crossover, measuring it on first use if needed."""
        if self._ch_cutoff is None:
            self._ch_cutoff = _calibrated_cutoff(self._network, self._ch)
        return self._ch_cutoff

    def _object_counts(self) -> np.ndarray:
        if self._counts is None:
            counts = np.zeros(self._network.num_nodes, dtype=np.int32)
            for node in self._objects.snapshot().values():
                counts[node] += 1
            self._counts = counts
        return self._counts

    # ------------------------------------------------------------------
    # KNNSolution interface
    # ------------------------------------------------------------------
    def query(self, location: int, k: int) -> list[Neighbor]:
        if k <= 0:
            return []
        nodes, dists = self._route_kernels(k).topk_objects(
            location, self._object_counts(), k
        )
        found = [
            Neighbor(distance, object_id)
            for node, distance in zip(nodes.tolist(), dists.tolist())
            for object_id in self._objects.objects_at(node)
        ]
        found.sort()
        return found[:k]

    def query_batch(self, locations, ks) -> list[list[Neighbor]]:
        locations = list(locations)
        ks = list(ks)
        if len(locations) != len(ks):
            raise ValueError("locations and ks must have equal length")
        if not locations:
            return []
        batched = self._route_kernels(max(ks)).knn_batch(
            locations, ks, self._object_counts()
        )
        answers: list[list[Neighbor]] = []
        for k, (nodes, dists) in zip(ks, batched):
            if k <= 0:
                answers.append([])
                continue
            found = [
                Neighbor(distance, object_id)
                for node, distance in zip(nodes.tolist(), dists.tolist())
                for object_id in self._objects.objects_at(node)
            ]
            found.sort()
            answers.append(found[:k])
        return answers

    def insert(self, object_id: int, location: int) -> None:
        self._objects.insert(object_id, location)
        if self._counts is not None:
            self._counts[location] += 1

    def delete(self, object_id: int) -> None:
        node = self._objects.delete(object_id)
        if self._counts is not None:
            self._counts[node] -= 1

    def spawn(self, objects: Mapping[int, int]) -> "DijkstraKNN":
        return DijkstraKNN(
            self._network, objects, ch=self._ch, ch_cutoff=self._ch_cutoff
        )

    def object_locations(self) -> dict[int, int]:
        return self._objects.snapshot()

    # ------------------------------------------------------------------
    # Pickling: the counts vector is derived data (4 bytes/node); drop
    # it so spawned workers ship only the object map + the graph token.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_counts"] = None
        return state

    # ------------------------------------------------------------------
    # Extras
    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        return self._network

"""Index-free Dijkstra kNN — the paper's update-friendly baseline.

"To answer a kNN query from a query point q, we run Dijkstra from q and
explore the graph just enough to locate the k closest objects to q.
Dijkstra does not use an elaborate index and therefore has very low
object update costs." (Section II)

The only bookkeeping is the per-node object bucket, so inserts and
deletes are O(1); queries pay an incremental Dijkstra expansion.
"""

from __future__ import annotations

from typing import Mapping

from ..graph.road_network import RoadNetwork
from ..graph.shortest_path import dijkstra_expansion
from ..objects.object_set import ObjectSet
from .base import KNNSolution, Neighbor


class DijkstraKNN(KNNSolution):
    """Plain Dijkstra-expansion kNN over per-node object buckets."""

    name = "Dijkstra"

    def __init__(
        self, network: RoadNetwork, objects: Mapping[int, int] | None = None
    ) -> None:
        self._network = network
        self._objects = ObjectSet(dict(objects) if objects else None)

    # ------------------------------------------------------------------
    # KNNSolution interface
    # ------------------------------------------------------------------
    def query(self, location: int, k: int) -> list[Neighbor]:
        if k <= 0:
            return []
        found: list[Neighbor] = []
        kth_distance = float("inf")
        for node, distance in dijkstra_expansion(self._network, location):
            if len(found) >= k and distance > kth_distance:
                break
            bucket = self._objects.objects_at(node)
            for object_id in bucket:
                found.append(Neighbor(distance, object_id))
            if len(found) >= k:
                found.sort()
                kth_distance = found[k - 1].distance
        found.sort()
        return found[:k]

    def insert(self, object_id: int, location: int) -> None:
        self._objects.insert(object_id, location)

    def delete(self, object_id: int) -> None:
        self._objects.delete(object_id)

    def spawn(self, objects: Mapping[int, int]) -> "DijkstraKNN":
        return DijkstraKNN(self._network, objects)

    def object_locations(self) -> dict[int, int]:
        return self._objects.snapshot()

    # ------------------------------------------------------------------
    # Extras
    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        return self._network

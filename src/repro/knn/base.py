"""The single-threaded kNN solution interface of the paper.

Section IV-A: "We assume that a kNN solution A provides three
interfaces, namely, A.Q(l, k) (query the k closest objects from location
l), A.I(o, l) (insert object o at location l), and A.D(o) (delete object
o)."  Every solution in this package implements exactly that interface
(:class:`KNNSolution`), which is all the MPR machinery ever calls — the
"extremely lightweight wrapper" the paper advertises.

Additionally, MPR partitions the *object set* across worker cores while
sharing the road-network index (end of Section III).  :meth:`spawn`
realizes this: it creates a sibling instance over the same immutable
network-side index but holding only a given subset of objects.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Sequence


@dataclass(frozen=True, order=True)
class Neighbor:
    """One kNN answer entry.

    Ordering is ``(distance, object_id)`` so result lists are canonical
    and ties are broken deterministically, which lets tests compare
    answers across solutions and schemes bit-for-bit.
    """

    distance: float
    object_id: int


def canonical_knn(candidates: Mapping[int, float] | Sequence[Neighbor], k: int) -> list[Neighbor]:
    """Best ``k`` of a candidate pool in canonical order.

    ``k`` may exceed the pool (the whole pool is returned, sorted) but
    must be non-negative: a negative ``k`` would silently slice from
    the *end* of the pool and return the worst candidates.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if isinstance(candidates, Mapping):
        pool = [Neighbor(distance, object_id) for object_id, distance in candidates.items()]
    else:
        pool = list(candidates)
    pool.sort()
    return pool[:k]


class PartialResult(list):
    """A degraded kNN answer: the top-k over the *surviving* columns.

    When every replica of some partition columns is down (crash loop,
    circuit breaker open), the resilience layer answers with the merge
    of the columns that did respond instead of blocking forever.  The
    result behaves exactly like a ``list[Neighbor]`` — comparisons,
    iteration, and slicing all work — but carries the ``(layer,
    column)`` cells whose objects it could not see, so callers can tell
    a degraded answer from a complete one.
    """

    __slots__ = ("missing_columns",)

    def __init__(
        self,
        neighbors: Sequence[Neighbor] = (),
        missing_columns: Sequence[tuple[int, int]] = (),
    ) -> None:
        super().__init__(neighbors)
        #: The ``(layer, column)`` cells with no live replica.
        self.missing_columns: tuple[tuple[int, int], ...] = tuple(
            missing_columns
        )

    @property
    def complete(self) -> bool:
        return not self.missing_columns

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"PartialResult({list(self)!r}, "
            f"missing_columns={self.missing_columns!r})"
        )


def merge_partial_results(
    partials: Sequence[Sequence[Neighbor]],
    k: int,
    *,
    missing_columns: Sequence[tuple[int, int]] = (),
) -> list[Neighbor]:
    """Aggregate per-partition kNN answers into the global top-k.

    This is the a-core's merge (Algorithm 3): each worker of a row
    returns at most ``k`` neighbors over its partition; their union
    contains the true top-k because partitions cover ``M`` disjointly.

    ``missing_columns`` names ``(layer, column)`` cells that could not
    contribute (no live replica); when non-empty the merge degrades
    gracefully, returning a :class:`PartialResult` flagged with those
    cells instead of a plain list — the answer is the true top-k of
    the *surviving* partitions only.
    """
    best: dict[int, float] = {}
    for partial in partials:
        for neighbor in partial:
            prior = best.get(neighbor.object_id)
            if prior is None or neighbor.distance < prior:
                best[neighbor.object_id] = neighbor.distance
    merged = canonical_knn(best, k)
    if missing_columns:
        return PartialResult(merged, missing_columns)
    return merged


class KNNSolution(ABC):
    """Abstract single-threaded kNN solution over a fixed road network."""

    #: Short display name ("Dijkstra", "V-tree", "TOAIN", ...)
    name: str = "abstract"

    # -- the paper's three interfaces ----------------------------------
    @abstractmethod
    def query(self, location: int, k: int) -> list[Neighbor]:
        """Return the ``k`` nearest objects to ``location`` canonically."""

    @abstractmethod
    def insert(self, object_id: int, location: int) -> None:
        """Insert ``object_id`` at node ``location``."""

    @abstractmethod
    def delete(self, object_id: int) -> None:
        """Delete ``object_id``."""

    # -- MPR integration ------------------------------------------------
    @abstractmethod
    def spawn(self, objects: Mapping[int, int]) -> "KNNSolution":
        """A sibling instance holding ``objects``, sharing the network index.

        Workers of an MPR core matrix each call this once with their
        partition ``M[i][j]``; the expensive network-side structures
        (partition tree, contraction hierarchy) are shared, mirroring the
        paper's shared road-network index.
        """

    @abstractmethod
    def object_locations(self) -> dict[int, int]:
        """Current ``object -> node`` contents (diagnostics and tests)."""

    # -- batched queries ------------------------------------------------
    def query_batch(
        self, locations: Sequence[int], ks: Sequence[int]
    ) -> list[list[Neighbor]]:
        """Answer many queries at once; results align with the inputs.

        Semantically exactly ``[self.query(l, k) for l, k in zip(...)]``
        — the batch sees one consistent object snapshot (queries never
        mutate state, so batching any run of consecutive queries is
        equivalence-preserving), answers are canonical, and result
        ``i`` belongs to ``locations[i]`` regardless of any internal
        reordering.  This default *is* that loop; solutions with a
        vectorized substrate override it to answer the whole batch in
        shared kernel sweeps (see :class:`~repro.knn.dijkstra_knn.
        DijkstraKNN` and :class:`~repro.knn.ier.IERKNN`), which the
        executors exploit by handing workers whole query runs.
        """
        return [
            self.query(location, k)
            for location, k in zip(locations, ks, strict=True)
        ]

    # -- paper-style aliases --------------------------------------------
    def Q(self, l: int, k: int) -> list[Neighbor]:  # noqa: N802 - paper naming
        return self.query(l, k)

    def I(self, o: int, l: int) -> None:  # noqa: N802, E743 - paper naming
        self.insert(o, l)

    def D(self, o: int) -> None:  # noqa: N802 - paper naming
        self.delete(o)

    def __len__(self) -> int:
        return len(self.object_locations())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(objects={len(self)})"

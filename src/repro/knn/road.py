"""ROAD: route overlay with Rnet skipping (Lee et al., TKDE 2012).

Section II: "ROAD partitions a graph into many subgraphs (called
Rnets). [...] An indicator is associated with each Rnet signaling
whether the Rnet contains any objects.  During a Dijkstra expansion,
if an Rnet with no objects is to be explored, the search inside the
Rnet is skipped.  Compared with Dijkstra, ROAD gives a faster query
time at the expense of an update cost; when an object is updated, the
indicators of some Rnets have to be updated accordingly."

Our ROAD reuses the partition machinery already built for G-tree: the
Rnets are the partition-tree leaves, the "shortcuts" that let the
search skip an empty Rnet are the leaf's border-to-border distance
clique (precomputed in :class:`~repro.knn.gtree.GTreeIndex`), and the
indicators are per-leaf object counters maintained along the
leaf-to-root path on every update — which is exactly the update cost
the paper attributes to ROAD.

The query is a modified Dijkstra on the original graph: settling a
border of an **empty** Rnet relaxes the Rnet's border clique (hopping
over it in one step) instead of its interior edges; non-empty Rnets
are searched normally.  Exactness: a clique edge's weight is the exact
within-Rnet distance, and any path segment through an empty Rnet can
carry no answer, so replacing it by the clique edge preserves all
distances to objects.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Mapping

from ..graph.road_network import RoadNetwork
from ..graph.shortest_path import INFINITY
from .base import KNNSolution, Neighbor
from .gtree import DEFAULT_FANOUT, DEFAULT_LEAF_SIZE, GTreeIndex


class RoadKNN(KNNSolution):
    """ROAD kNN: Dijkstra with empty-Rnet skipping."""

    name = "ROAD"

    def __init__(
        self,
        network: RoadNetwork,
        objects: Mapping[int, int] | None = None,
        index: GTreeIndex | None = None,
        leaf_size: int = DEFAULT_LEAF_SIZE,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        self._index = index or GTreeIndex(network, leaf_size=leaf_size, fanout=fanout)
        if self._index.network is not network:
            raise ValueError("index was built over a different network")
        self._location: dict[int, int] = {}
        self._node_objects: dict[int, set[int]] = {}
        # The Rnet indicators: object count per partition-tree node.
        self._indicator: dict[int, int] = {}
        #: Nodes settled by the most recent query (skipping diagnostic).
        self.last_settled_count = 0
        if objects:
            for object_id, node in objects.items():
                self.insert(object_id, node)

    # ------------------------------------------------------------------
    # KNNSolution interface
    # ------------------------------------------------------------------
    def query(self, location: int, k: int) -> list[Neighbor]:
        if k <= 0:
            return []
        index = self._index
        leaf_of = index.leaf_of
        # ROAD's inner loop indexes Python lists; declare the O(n)
        # mirror materialization explicitly for guarded networks.
        offsets, adj_targets, adj_weights = index.network.allow_mirrors().csr
        home_leaf = leaf_of[location]

        found: list[Neighbor] = []
        kth_distance = INFINITY
        settled: set[int] = set()
        heap: list[tuple[float, int]] = [(0.0, location)]
        while heap:
            d, node = heappop(heap)
            if node in settled:
                continue
            if len(found) >= k and d > kth_distance:
                break
            settled.add(node)
            for object_id in self._node_objects.get(node, ()):
                found.append(Neighbor(d, object_id))
            if len(found) >= k:
                found.sort()
                kth_distance = found[k - 1].distance

            leaf = leaf_of[node]
            empty = self._indicator.get(leaf, 0) == 0 and leaf != home_leaf
            is_border = node in index.border_index[leaf]
            if empty and is_border:
                # Skip the Rnet: hop across it via the border clique,
                # plus the cut edges that leave it.
                column = index.border_index[leaf][node]
                borders = index.leaf_borders[leaf]
                row = index.vertex_border_dist[node]
                for other_pos, other in enumerate(borders):
                    if other != node and row[other_pos] < INFINITY:
                        if other not in settled:
                            heappush(heap, (d + row[other_pos], other))
                for idx in range(offsets[node], offsets[node + 1]):
                    nxt = adj_targets[idx]
                    if leaf_of[nxt] != leaf and nxt not in settled:
                        heappush(heap, (d + adj_weights[idx], nxt))
            else:
                for idx in range(offsets[node], offsets[node + 1]):
                    nxt = adj_targets[idx]
                    if nxt not in settled:
                        heappush(heap, (d + adj_weights[idx], nxt))
        self.last_settled_count = len(settled)
        found.sort()
        return found[:k]

    def insert(self, object_id: int, location: int) -> None:
        if object_id in self._location:
            raise KeyError(f"object {object_id} already present")
        self._location[object_id] = location
        self._node_objects.setdefault(location, set()).add(object_id)
        leaf = self._index.leaf_of[location]
        for tree_id in self._index.path_to_root(leaf):
            self._indicator[tree_id] = self._indicator.get(tree_id, 0) + 1

    def delete(self, object_id: int) -> None:
        try:
            location = self._location.pop(object_id)
        except KeyError:
            raise KeyError(f"object {object_id} not present") from None
        bucket = self._node_objects[location]
        bucket.discard(object_id)
        if not bucket:
            del self._node_objects[location]
        leaf = self._index.leaf_of[location]
        for tree_id in self._index.path_to_root(leaf):
            self._indicator[tree_id] -= 1
            if self._indicator[tree_id] == 0:
                del self._indicator[tree_id]

    def spawn(self, objects: Mapping[int, int]) -> "RoadKNN":
        return RoadKNN(self._index.network, objects, index=self._index)

    def object_locations(self) -> dict[int, int]:
        return dict(self._location)

    # ------------------------------------------------------------------
    # Extras
    # ------------------------------------------------------------------
    @property
    def index(self) -> GTreeIndex:
        return self._index

    def rnet_is_empty(self, leaf_id: int) -> bool:
        """Indicator lookup for an Rnet (diagnostics and tests)."""
        return self._indicator.get(leaf_id, 0) == 0

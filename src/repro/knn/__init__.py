"""Single-threaded kNN solutions and their profiling."""

from .base import (
    KNNSolution,
    Neighbor,
    PartialResult,
    canonical_knn,
    merge_partial_results,
)
from .calibration import (
    AlgorithmProfile,
    measure_profile,
    paper_profile,
    profile_from_telemetry,
)
from .dijkstra_knn import DijkstraKNN
from .gtree import GTreeIndex, GTreeKNN
from .ier import IERKNN
from .road import RoadKNN
from .toain import (
    ContractionHierarchy,
    ToainIndex,
    ToainKNN,
    choose_core_fraction,
)
from .vtree import VTreeKNN

#: Registry of solution constructors by display name (used by benches
#: and the scheme factory to iterate "Dijkstra, V-tree, TOAIN" the way
#: the paper's figures do).
SOLUTIONS = {
    "Dijkstra": DijkstraKNN,
    "G-tree": GTreeKNN,
    "V-tree": VTreeKNN,
    "ROAD": RoadKNN,
    "TOAIN": ToainKNN,
    "IER": IERKNN,
}

__all__ = [
    "KNNSolution",
    "Neighbor",
    "PartialResult",
    "canonical_knn",
    "merge_partial_results",
    "AlgorithmProfile",
    "measure_profile",
    "paper_profile",
    "profile_from_telemetry",
    "DijkstraKNN",
    "GTreeIndex",
    "GTreeKNN",
    "IERKNN",
    "RoadKNN",
    "ContractionHierarchy",
    "ToainIndex",
    "ToainKNN",
    "choose_core_fraction",
    "VTreeKNN",
    "SOLUTIONS",
]

"""V-tree: border-cached kNN on the partition hierarchy (Shen et al., ICDE 2016).

V-tree extends the G-tree structure by maintaining, at the border nodes
of the hierarchy, lists of the nearest objects ("active vertex lists").
Queries become extremely fast — the cached lists give a tight answer
bound immediately — while updates become expensive, because inserting or
deleting an object must maintain every border list it affects.  That
query-friendly / update-unfriendly cost profile is exactly the role
V-tree plays in the MPR evaluation (Figures 5, 6).

Our implementation keeps the same profile with a correctness-first
twist documented in DESIGN.md (substitution #4):

* each leaf border lazily carries a cached list of the ``cache_size``
  nearest objects (exact distances, computed with the overlay search);
* **insert** propagates the new object into every cached list it beats,
  via a radius-bounded overlay sweep from the inserted location;
* **delete** removes the object from every list referencing it (a
  reverse-reference map makes this exact), eagerly rebuilding lists
  that become too short;
* **query** uses the home borders' cached lists to compute a kth-distance
  upper bound, then runs the overlay search with that bound, which makes
  it terminate almost immediately.  Because cached entries are always
  true distances of *live* objects, the bound is always sound and the
  final answer is exact even if a cache is stale (staleness only loosens
  the bound).
"""

from __future__ import annotations

from typing import Mapping

from ..graph.road_network import RoadNetwork
from ..graph.shortest_path import INFINITY
from .base import KNNSolution, Neighbor
from .gtree import DEFAULT_FANOUT, DEFAULT_LEAF_SIZE, GTreeIndex

#: Default cached-list length; must be >= the largest k queried.
DEFAULT_CACHE_SIZE = 16
#: Rebuild a cached list eagerly once deletions shrink it below this
#: fraction of cache_size.
REBUILD_FRACTION = 0.5
#: Cap on borders swept during insert propagation (best effort; caches
#: not reached stay valid, merely less tight).
INSERT_SWEEP_LIMIT = 2048


class VTreeKNN(KNNSolution):
    """V-tree kNN solution: cached border lists, expensive updates."""

    name = "V-tree"

    def __init__(
        self,
        network: RoadNetwork,
        objects: Mapping[int, int] | None = None,
        index: GTreeIndex | None = None,
        leaf_size: int = DEFAULT_LEAF_SIZE,
        fanout: int = DEFAULT_FANOUT,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be positive")
        self._index = index or GTreeIndex(network, leaf_size=leaf_size, fanout=fanout)
        if self._index.network is not network:
            raise ValueError("index was built over a different network")
        self._cache_size = cache_size
        self._location: dict[int, int] = {}
        self._leaf_occupancy: dict[int, dict[int, set[int]]] = {}
        # border -> sorted list of Neighbor (the active vertex list).
        self._cache: dict[int, list[Neighbor]] = {}
        # object -> set of borders whose cache references it.
        self._cache_refs: dict[int, set[int]] = {}
        if objects:
            for object_id, node in objects.items():
                self._insert_bucket(object_id, node)
            # Bulk load: caches stay lazy; first queries build them.

    # ------------------------------------------------------------------
    # KNNSolution interface
    # ------------------------------------------------------------------
    def query(self, location: int, k: int) -> list[Neighbor]:
        if k <= 0:
            return []
        bound = self._upper_bound_from_caches(location, k)
        return self._index.knn_search(
            location, k, self._leaf_occupancy, distance_bound=bound
        )

    def insert(self, object_id: int, location: int) -> None:
        self._insert_bucket(object_id, location)
        self._propagate_insert(object_id, location)

    def delete(self, object_id: int) -> None:
        try:
            location = self._location.pop(object_id)
        except KeyError:
            raise KeyError(f"object {object_id} not present") from None
        leaf_id = self._index.leaf_of[location]
        bucket = self._leaf_occupancy[leaf_id]
        bucket[location].discard(object_id)
        if not bucket[location]:
            del bucket[location]
        if not bucket:
            del self._leaf_occupancy[leaf_id]
        self._scrub_caches(object_id)

    def spawn(self, objects: Mapping[int, int]) -> "VTreeKNN":
        return VTreeKNN(
            self._index.network,
            objects,
            index=self._index,
            cache_size=self._cache_size,
        )

    def object_locations(self) -> dict[int, int]:
        return dict(self._location)

    # ------------------------------------------------------------------
    # Cache machinery
    # ------------------------------------------------------------------
    @property
    def index(self) -> GTreeIndex:
        return self._index

    @property
    def cache_size(self) -> int:
        return self._cache_size

    def cached_list(self, border: int) -> list[Neighbor]:
        """The border's active vertex list, building it on first use."""
        cached = self._cache.get(border)
        if cached is None:
            cached = self._rebuild_cache(border)
        return cached

    def warm_caches(self) -> int:
        """Eagerly build the active vertex list of every border.

        The original V-tree computes its nearest-object lists during
        index construction; our lists are lazy by default (cheap bulk
        loads), and this method performs that construction pass
        explicitly.  Returns the number of lists built.
        """
        built = 0
        for borders in self._index.leaf_borders.values():
            for border in borders:
                if border not in self._cache:
                    self._rebuild_cache(border)
                    built += 1
        return built

    def _rebuild_cache(self, border: int) -> list[Neighbor]:
        fresh = self._index.knn_search(
            border, self._cache_size, self._leaf_occupancy
        )
        stale = self._cache.get(border)
        if stale:
            for neighbor in stale:
                refs = self._cache_refs.get(neighbor.object_id)
                if refs is not None:
                    refs.discard(border)
        self._cache[border] = fresh
        for neighbor in fresh:
            self._cache_refs.setdefault(neighbor.object_id, set()).add(border)
        return fresh

    def _upper_bound_from_caches(self, location: int, k: int) -> float:
        """kth-distance upper bound from the home borders' cached lists."""
        home_leaf = self._index.leaf_of[location]
        borders = self._index.leaf_borders[home_leaf]
        if not borders:
            return INFINITY
        vbd = self._index.vertex_border_dist[location]
        best: dict[int, float] = {}
        for column, border in enumerate(borders):
            access = vbd[column]
            if access == INFINITY:
                continue
            for neighbor in self.cached_list(border):
                estimate = access + neighbor.distance
                prior = best.get(neighbor.object_id)
                if prior is None or estimate < prior:
                    best[neighbor.object_id] = estimate
        if len(best) < k:
            return INFINITY
        return sorted(best.values())[k - 1]

    def _insert_bucket(self, object_id: int, location: int) -> None:
        if object_id in self._location:
            raise KeyError(f"object {object_id} already present")
        self._location[object_id] = location
        leaf_id = self._index.leaf_of[location]
        bucket = self._leaf_occupancy.setdefault(leaf_id, {})
        bucket.setdefault(location, set()).add(object_id)

    def _propagate_insert(self, object_id: int, location: int) -> None:
        """Push the new object into every cached list it should appear in.

        The sweep radius is the largest kth distance over current caches
        (infinite while some cache is under-full); reachable caches whose
        tail the new object beats get it inserted with its exact distance.
        """
        if not self._cache:
            return
        radius = 0.0
        for cached in self._cache.values():
            if len(cached) < self._cache_size:
                radius = INFINITY
                break
            radius = max(radius, cached[-1].distance)
        swept = self._index.border_sweep(
            location, radius, settle_limit=INSERT_SWEEP_LIMIT
        )
        for border, distance in swept.items():
            cached = self._cache.get(border)
            if cached is None:
                continue
            if len(cached) >= self._cache_size and distance >= cached[-1].distance:
                continue
            entry = Neighbor(distance, object_id)
            lo, hi = 0, len(cached)
            while lo < hi:
                mid = (lo + hi) // 2
                if cached[mid] < entry:
                    lo = mid + 1
                else:
                    hi = mid
            cached.insert(lo, entry)
            self._cache_refs.setdefault(object_id, set()).add(border)
            if len(cached) > self._cache_size:
                evicted = cached.pop()
                refs = self._cache_refs.get(evicted.object_id)
                if refs is not None:
                    refs.discard(border)

    def _scrub_caches(self, object_id: int) -> None:
        """Remove a deleted object from every cache referencing it."""
        borders = self._cache_refs.pop(object_id, None)
        if not borders:
            return
        threshold = max(int(self._cache_size * REBUILD_FRACTION), 1)
        for border in borders:
            cached = self._cache.get(border)
            if cached is None:
                continue
            cached[:] = [n for n in cached if n.object_id != object_id]
            if len(cached) < threshold and len(self._location) >= threshold:
                self._rebuild_cache(border)

"""G-tree: hierarchical-partition kNN index (Zhong et al., TKDE 2015).

G-tree recursively partitions the road network into balanced subgraphs,
keeps the *border* nodes of every subgraph, precomputes distances
between borders (and from every vertex to the borders of its leaf), and
maintains per-subtree **occurrence lists** of the objects inside.

Our implementation follows the same blueprint:

* a multilevel partition tree (:class:`GTreeIndex`, immutable, shared
  across MPR workers) whose leaves carry border sets, within-leaf
  vertex-to-border distance tables, and the border *overlay graph*
  (within-leaf border cliques + original cut edges);
* per-instance object state (:class:`GTreeKNN`): per-leaf object
  buckets plus occurrence counters along the leaf-to-root path, so
  updates cost O(height) exactly as in the original system.

Queries run a best-first search on the overlay graph.  Exactness is the
classic overlay argument: any shortest path decomposes into maximal
within-leaf segments whose endpoints are borders, each no shorter than
the precomputed within-leaf border distance — so overlay distances equal
full-graph distances, and object nodes attached to the overlay via their
vertex-to-border tables are settled at their true network distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Mapping, Sequence

from ..graph.partition import partition_graph
from ..graph.road_network import RoadNetwork
from ..graph.shortest_path import INFINITY, dijkstra
from .base import KNNSolution, Neighbor, canonical_knn

#: Default maximum leaf size (the G-tree paper's tau).
DEFAULT_LEAF_SIZE = 64
#: Default partition fanout (the G-tree paper's f).
DEFAULT_FANOUT = 4
#: Relative slack for pruning-bound comparisons.  Upper bounds arriving
#: from cached lists are sums computed in a different order than the
#: overlay search's, so exact ties can differ by a few ULPs; without the
#: slack a bound one ULP below the true kth distance would prune the
#: final relaxation.
BOUND_SLACK = 1e-9


@dataclass
class TreeNode:
    """One node of the partition tree."""

    node_id: int
    parent: int | None
    level: int
    vertices: list[int] = field(default_factory=list)
    children: list[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class GTreeIndex:
    """Immutable network-side structure shared by all GTreeKNN instances."""

    def __init__(
        self,
        network: RoadNetwork,
        leaf_size: int = DEFAULT_LEAF_SIZE,
        fanout: int = DEFAULT_FANOUT,
        seed: int = 0,
    ) -> None:
        if leaf_size < 1:
            raise ValueError("leaf_size must be positive")
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self.network = network
        self.leaf_size = leaf_size
        self.fanout = fanout

        self.tree: list[TreeNode] = []
        self.leaf_of: list[int] = [-1] * network.num_nodes
        self._build_tree(seed)

        # Per-leaf border machinery.
        self.leaf_borders: dict[int, list[int]] = {}
        self.border_index: dict[int, dict[int, int]] = {}  # leaf -> border -> pos
        self.vertex_border_dist: dict[int, list[float]] = {}  # vertex -> dists
        self.overlay_adj: dict[int, list[tuple[int, float]]] = {}
        self._leaf_members: dict[int, list[int]] = {}
        self._leaf_subgraph: dict[int, RoadNetwork] = {}
        self._leaf_member_pos: dict[int, dict[int, int]] = {}
        self._build_borders()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_tree(self, seed: int) -> None:
        root = TreeNode(node_id=0, parent=None, level=0,
                        vertices=list(self.network.nodes()))
        self.tree.append(root)
        stack = [0]
        while stack:
            tid = stack.pop()
            node = self.tree[tid]
            if len(node.vertices) <= self.leaf_size:
                for vertex in node.vertices:
                    self.leaf_of[vertex] = tid
                continue
            ordered = sorted(node.vertices)
            sub = self.network.induced_subgraph(ordered)
            parts = min(self.fanout, len(ordered))
            assignment = partition_graph(sub, parts, seed=seed + tid)
            groups: dict[int, list[int]] = {}
            for local_id, part in enumerate(assignment):
                groups.setdefault(part, []).append(ordered[local_id])
            if len(groups) <= 1:
                # Partitioner failed to split (e.g. a clique-ish blob);
                # force the node to become a leaf to guarantee progress.
                for vertex in node.vertices:
                    self.leaf_of[vertex] = tid
                continue
            for members in groups.values():
                child = TreeNode(
                    node_id=len(self.tree),
                    parent=tid,
                    level=node.level + 1,
                    vertices=members,
                )
                self.tree.append(child)
                node.children.append(child.node_id)
                stack.append(child.node_id)
            node.vertices = []  # interior nodes don't need the list

    def _build_borders(self) -> None:
        network = self.network
        for vertex in network.nodes():
            self._leaf_members.setdefault(self.leaf_of[vertex], []).append(vertex)
        for leaf_id, members in self._leaf_members.items():
            self._leaf_member_pos[leaf_id] = {v: i for i, v in enumerate(members)}

        # One pass over the edges classifies them as within-leaf (they
        # form the leaf subgraphs) or cut edges (their endpoints become
        # borders).
        cut_edges: list[tuple[int, int, float]] = []
        borders_per_leaf: dict[int, set[int]] = {}
        leaf_edges: dict[int, list[tuple[int, int, float]]] = {}
        for edge in network.edges():
            lu, lv = self.leaf_of[edge.u], self.leaf_of[edge.v]
            if lu != lv:
                cut_edges.append((edge.u, edge.v, edge.weight))
                borders_per_leaf.setdefault(lu, set()).add(edge.u)
                borders_per_leaf.setdefault(lv, set()).add(edge.v)
            else:
                pos = self._leaf_member_pos[lu]
                leaf_edges.setdefault(lu, []).append(
                    (pos[edge.u], pos[edge.v], edge.weight)
                )

        for leaf_id, members in self._leaf_members.items():
            borders = sorted(borders_per_leaf.get(leaf_id, set()))
            self.leaf_borders[leaf_id] = borders
            self.border_index[leaf_id] = {b: i for i, b in enumerate(borders)}
            self._leaf_subgraph[leaf_id] = RoadNetwork(
                len(members), leaf_edges.get(leaf_id, []), name=f"leaf-{leaf_id}"
            )

        # Within-leaf distances: one Dijkstra per border on the leaf
        # subgraph fills the vertex-to-border tables column by column.
        for leaf_id, members in self._leaf_members.items():
            borders = self.leaf_borders[leaf_id]
            member_pos = self._leaf_member_pos[leaf_id]
            sub = self._leaf_subgraph[leaf_id]
            for vertex in members:
                self.vertex_border_dist[vertex] = [INFINITY] * len(borders)
            for column, border in enumerate(borders):
                dist = dijkstra(sub, member_pos[border])
                for local_id, d in dist.items():
                    self.vertex_border_dist[members[local_id]][column] = d

        # Overlay adjacency: border cliques within leaves + cut edges.
        for leaf_id, borders in self.leaf_borders.items():
            for i, b in enumerate(borders):
                adjacency = self.overlay_adj.setdefault(b, [])
                row = self.vertex_border_dist[b]
                for j, other in enumerate(borders):
                    if j != i and row[j] < INFINITY:
                        adjacency.append((other, row[j]))
        for u, v, w in cut_edges:
            self.overlay_adj.setdefault(u, []).append((v, w))
            self.overlay_adj.setdefault(v, []).append((u, w))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def leaf_members(self, leaf_id: int) -> list[int]:
        return self._leaf_members[leaf_id]

    def leaves(self) -> list[int]:
        return sorted(self._leaf_members)

    def height(self) -> int:
        return max(node.level for node in self.tree) + 1

    def path_to_root(self, leaf_id: int) -> list[int]:
        path = [leaf_id]
        node = self.tree[leaf_id]
        while node.parent is not None:
            path.append(node.parent)
            node = self.tree[node.parent]
        return path

    def point_to_point(self, source: int, target: int) -> float:
        """Exact network distance via the border overlay.

        G-tree's other headline use besides kNN: shortest-path distance
        queries answered on the precomputed structure instead of the
        raw graph.  Returns ``inf`` when ``target`` is unreachable.
        """
        if source == target:
            return 0.0
        source_leaf = self.leaf_of[source]
        target_leaf = self.leaf_of[target]

        source_pos = self._leaf_member_pos[source_leaf]
        in_source = dijkstra(self._leaf_subgraph[source_leaf], source_pos[source])

        best = INFINITY
        if source_leaf == target_leaf:
            d = in_source.get(source_pos[target], INFINITY)
            if d < best:
                best = d  # may still be beaten by an exit-and-return path

        # Overlay Dijkstra from the source's borders; relax into the
        # target through its leaf's vertex-to-border table.
        target_columns = self.vertex_border_dist[target]
        target_border_pos = self.border_index[target_leaf]
        heap: list[tuple[float, int]] = []
        for border in self.leaf_borders[source_leaf]:
            d = in_source.get(source_pos[border], INFINITY)
            if d < INFINITY:
                heappush(heap, (d, border))
        settled: dict[int, float] = {}
        while heap:
            d, border = heappop(heap)
            if border in settled:
                continue
            if d >= best:
                break
            settled[border] = d
            if self.leaf_of[border] == target_leaf:
                leg = target_columns[target_border_pos[border]]
                if leg < INFINITY and d + leg < best:
                    best = d + leg
            for neighbor, weight in self.overlay_adj.get(border, ()):
                if neighbor not in settled:
                    heappush(heap, (d + weight, neighbor))
        return best

    def border_sweep(
        self,
        location: int,
        radius: float,
        settle_limit: int | None = None,
    ) -> dict[int, float]:
        """Exact distances from ``location`` to borders within ``radius``.

        Runs the overlay Dijkstra without offering objects; used by
        V-tree's insert propagation.  ``settle_limit`` optionally caps
        the number of settled borders (a best-effort sweep).
        """
        home_leaf = self.leaf_of[location]
        members = self._leaf_members[home_leaf]
        member_pos = self._leaf_member_pos[home_leaf]
        in_leaf = dijkstra(self._leaf_subgraph[home_leaf], member_pos[location],
                           max_distance=radius)
        heap: list[tuple[float, int]] = []
        for border in self.leaf_borders[home_leaf]:
            d = in_leaf.get(member_pos[border], INFINITY)
            if d <= radius:
                heappush(heap, (d, border))
        settled: dict[int, float] = {}
        while heap:
            d, border = heappop(heap)
            if border in settled or d > radius:
                continue
            settled[border] = d
            if settle_limit is not None and len(settled) >= settle_limit:
                break
            for neighbor, weight in self.overlay_adj.get(border, ()):
                if neighbor not in settled:
                    nd = d + weight
                    if nd <= radius:
                        heappush(heap, (nd, neighbor))
        return settled

    # ------------------------------------------------------------------
    # The overlay kNN search (shared by GTreeKNN and VTreeKNN)
    # ------------------------------------------------------------------
    def knn_search(
        self,
        location: int,
        k: int,
        leaf_occupancy: Mapping[int, Mapping[int, Sequence[int]]],
        distance_bound: float = INFINITY,
    ) -> list[Neighbor]:
        """Exact kNN from ``location`` over objects in ``leaf_occupancy``.

        ``leaf_occupancy[leaf_id][node]`` is the collection of object ids
        at ``node`` (only leaves that contain objects need be present).
        ``distance_bound`` optionally prunes the search (used by V-tree
        with its cached upper bound).
        """
        if k <= 0:
            return []
        home_leaf = self.leaf_of[location]
        candidates: dict[int, float] = {}  # object -> best distance

        def offer(node: int, distance: float, leaf_id: int) -> None:
            for object_id in leaf_occupancy[leaf_id].get(node, ()):
                prior = candidates.get(object_id)
                if prior is None or distance < prior:
                    candidates[object_id] = distance

        # Phase 1: in-leaf Dijkstra from the query vertex gives exact
        # within-leaf distances to the home leaf's borders and upper
        # bounds for same-leaf objects (refined by the overlay phase for
        # paths that exit and re-enter).
        members = self._leaf_members[home_leaf]
        member_pos = self._leaf_member_pos[home_leaf]
        sub = self._leaf_subgraph[home_leaf]
        in_leaf = dijkstra(sub, member_pos[location])
        if home_leaf in leaf_occupancy:
            for local_id, d in in_leaf.items():
                offer(members[local_id], d, home_leaf)

        # Phase 2: best-first search over the border overlay.
        heap: list[tuple[float, int]] = []
        for border in self.leaf_borders[home_leaf]:
            d = in_leaf.get(member_pos[border], INFINITY)
            if d < INFINITY:
                heappush(heap, (d, border))
        settled: dict[int, float] = {}

        def kth_bound() -> float:
            if len(candidates) < k:
                return distance_bound
            return min(
                distance_bound,
                sorted(candidates.values())[k - 1],
            )

        bound = kth_bound()
        while heap:
            d, border = heappop(heap)
            if border in settled:
                continue
            if d > bound + BOUND_SLACK * (1.0 + bound):
                break
            settled[border] = d
            leaf_id = self.leaf_of[border]
            # Offer objects of this border's leaf through the border.
            occupancy = leaf_occupancy.get(leaf_id)
            if occupancy:
                column = self.border_index[leaf_id][border]
                for node in occupancy:
                    leg = self.vertex_border_dist[node][column]
                    if leg < INFINITY:
                        offer(node, d + leg, leaf_id)
                bound = kth_bound()
            for neighbor, weight in self.overlay_adj.get(border, ()):
                if neighbor not in settled:
                    heappush(heap, (d + neighbor_weight_guard(weight), neighbor))
        return canonical_knn(candidates, k)


def neighbor_weight_guard(weight: float) -> float:
    """Defensive identity hook (kept for instrumentation in benches)."""
    return weight


class GTreeKNN(KNNSolution):
    """G-tree kNN solution: overlay queries, O(height) updates."""

    name = "G-tree"

    def __init__(
        self,
        network: RoadNetwork,
        objects: Mapping[int, int] | None = None,
        index: GTreeIndex | None = None,
        leaf_size: int = DEFAULT_LEAF_SIZE,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        self._index = index or GTreeIndex(network, leaf_size=leaf_size, fanout=fanout)
        if self._index.network is not network:
            raise ValueError("index was built over a different network")
        self._location: dict[int, int] = {}
        # leaf -> node -> set of object ids (the occurrence buckets).
        self._leaf_occupancy: dict[int, dict[int, set[int]]] = {}
        # tree node -> object count (the G-tree occurrence lists).
        self._occurrence: dict[int, int] = {}
        if objects:
            for object_id, node in objects.items():
                self.insert(object_id, node)

    # ------------------------------------------------------------------
    # KNNSolution interface
    # ------------------------------------------------------------------
    def query(self, location: int, k: int) -> list[Neighbor]:
        return self._index.knn_search(location, k, self._leaf_occupancy)

    def insert(self, object_id: int, location: int) -> None:
        if object_id in self._location:
            raise KeyError(f"object {object_id} already present")
        self._location[object_id] = location
        leaf_id = self._index.leaf_of[location]
        bucket = self._leaf_occupancy.setdefault(leaf_id, {})
        bucket.setdefault(location, set()).add(object_id)
        for tree_id in self._index.path_to_root(leaf_id):
            self._occurrence[tree_id] = self._occurrence.get(tree_id, 0) + 1

    def delete(self, object_id: int) -> None:
        try:
            location = self._location.pop(object_id)
        except KeyError:
            raise KeyError(f"object {object_id} not present") from None
        leaf_id = self._index.leaf_of[location]
        bucket = self._leaf_occupancy[leaf_id]
        bucket[location].discard(object_id)
        if not bucket[location]:
            del bucket[location]
        if not bucket:
            del self._leaf_occupancy[leaf_id]
        for tree_id in self._index.path_to_root(leaf_id):
            self._occurrence[tree_id] -= 1
            if self._occurrence[tree_id] == 0:
                del self._occurrence[tree_id]

    def spawn(self, objects: Mapping[int, int]) -> "GTreeKNN":
        return GTreeKNN(self._index.network, objects, index=self._index)

    def object_locations(self) -> dict[int, int]:
        return dict(self._location)

    # ------------------------------------------------------------------
    # Extras
    # ------------------------------------------------------------------
    @property
    def index(self) -> GTreeIndex:
        return self._index

    def subtree_object_count(self, tree_id: int) -> int:
        """Occurrence-list lookup: objects inside tree node ``tree_id``."""
        return self._occurrence.get(tree_id, 0)

"""IER: Incremental Euclidean Restriction (Papadias et al., VLDB 2003).

IER retrieves objects in increasing *Euclidean* distance from the query
and refines each candidate with its exact network distance, stopping
when the next Euclidean lower bound exceeds the kth best network
distance found so far.  The paper cites IER as related work that V-tree
outperforms; we include it as an extra baseline (it is not part of the
MPR evaluation itself).

Correctness requires the Euclidean distance between node coordinates to
lower-bound network distance, which holds for all networks produced by
:mod:`repro.graph.generators` (edge weights are Euclidean lengths times
a detour factor >= 1).
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..graph.road_network import RoadNetwork
from .base import KNNSolution, Neighbor, canonical_knn
from .dijkstra_knn import DEFAULT_CH_CUTOFF

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.ch import ContractionHierarchy


class _GridIndex:
    """A uniform spatial grid over object locations (cheap kNN-by-Euclid)."""

    def __init__(self, network: RoadNetwork, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self._network = network
        self._cell_size = cell_size
        self._cells: dict[tuple[int, int], set[int]] = {}
        self._node_of: dict[int, int] = {}

    def _cell_of(self, node: int) -> tuple[int, int]:
        x, y = self._network.coordinate(node)
        size = self._cell_size
        return (int(math.floor(x / size)), int(math.floor(y / size)))

    def add(self, object_id: int, node: int) -> None:
        self._node_of[object_id] = node
        self._cells.setdefault(self._cell_of(node), set()).add(object_id)

    def remove(self, object_id: int) -> None:
        node = self._node_of.pop(object_id)
        cell = self._cell_of(node)
        bucket = self._cells[cell]
        bucket.discard(object_id)
        if not bucket:
            del self._cells[cell]

    def iter_by_euclidean(self, origin: int):
        """Yield ``(euclidean_distance, object_id)`` in increasing order.

        Expands grid rings around the origin cell; objects inside a ring
        are exact-sorted before being yielded, and a ring is only yielded
        once the next ring cannot contain anything closer.
        """
        ox, oy = self._network.coordinate(origin)
        size = self._cell_size
        origin_cell = (int(math.floor(ox / size)), int(math.floor(oy / size)))
        pending: list[tuple[float, int]] = []
        ring = 0
        max_ring = self._max_ring(origin_cell)
        while True:
            if ring <= max_ring:
                for cell in self._ring_cells(origin_cell, ring):
                    for object_id in self._cells.get(cell, ()):
                        x, y = self._network.coordinate(self._node_of[object_id])
                        heappush(pending, (math.hypot(x - ox, y - oy), object_id))
            # Anything within (ring) * cell_size is now guaranteed present.
            safe_radius = ring * size
            while pending and pending[0][0] <= safe_radius:
                yield heappop(pending)
            if ring > max_ring:
                while pending:
                    yield heappop(pending)
                return
            ring += 1

    def _max_ring(self, origin_cell: tuple[int, int]) -> int:
        if not self._cells:
            return 0
        return max(
            max(abs(cx - origin_cell[0]), abs(cy - origin_cell[1]))
            for cx, cy in self._cells
        )

    @staticmethod
    def _ring_cells(center: tuple[int, int], ring: int):
        cx, cy = center
        if ring == 0:
            yield center
            return
        for dx in range(-ring, ring + 1):
            yield (cx + dx, cy - ring)
            yield (cx + dx, cy + ring)
        for dy in range(-ring + 1, ring):
            yield (cx - ring, cy + dy)
            yield (cx + ring, cy + dy)


class IERKNN(KNNSolution):
    """IER kNN: Euclidean candidates refined by A* network distances."""

    name = "IER"

    def __init__(
        self,
        network: RoadNetwork,
        objects: Mapping[int, int] | None = None,
        cell_size: float | None = None,
        *,
        ch: "ContractionHierarchy | None" = None,
        ch_cutoff: float | None = None,
    ) -> None:
        self._network = network
        if ch is not None and ch.network is not network:
            raise ValueError(
                "contraction hierarchy was built over a different network"
            )
        self._ch = ch
        # None = auto: measure the crossover on first routing decision.
        self._ch_cutoff = None if ch_cutoff is None else float(ch_cutoff)
        if cell_size is None:
            cell_size = self._default_cell_size(network)
        self._grid = _GridIndex(network, cell_size)
        self._location: dict[int, int] = {}
        # Per-node object counts for the batch kernel; derived data,
        # built lazily on the first query_batch and kept incremental.
        self._counts: np.ndarray | None = None
        if objects:
            for object_id, node in objects.items():
                self.insert(object_id, node)

    @staticmethod
    def _default_cell_size(network: RoadNetwork) -> float:
        if network.num_nodes == 0:
            return 1.0
        # Array path — the coordinate *list* is guarded on memmap/shared
        # attached networks, and O(n) Python pairs are pointless here.
        coords = network.coord_arrays
        span = max(
            float(coords[:, 0].max() - coords[:, 0].min()),
            float(coords[:, 1].max() - coords[:, 1].min()),
            1.0,
        )
        cells = max(math.sqrt(network.num_nodes) / 2.0, 1.0)
        return span / cells

    def _use_ch(self, k: int) -> bool:
        """Route long-range queries (sparse objects / large k) to the
        CH hub-label path; see ``DijkstraKNN._route_kernels``."""
        ch = self._ch
        if ch is None or not ch.exact or not self._location:
            return False
        expected_settled = k * self._network.num_nodes / len(self._location)
        return expected_settled >= self.ch_cutoff

    @property
    def ch_cutoff(self) -> float:
        """The routing crossover, measuring it on first use if needed."""
        if self._ch_cutoff is None:
            from .dijkstra_knn import _calibrated_cutoff

            self._ch_cutoff = _calibrated_cutoff(self._network, self._ch)
        return self._ch_cutoff

    # ------------------------------------------------------------------
    # KNNSolution interface
    # ------------------------------------------------------------------
    def query(self, location: int, k: int) -> list[Neighbor]:
        if k <= 0:
            return []
        # All candidates share the query location, so one incremental
        # single-source kernel search replaces a fresh A* per candidate:
        # each distance_to() grows the settled region just far enough
        # and later candidates reuse everything already explored.  On
        # long-range queries the CH hub-label oracle answers each
        # candidate in O(label) instead of expanding the region.
        if self._use_ch(k):
            expander = self._ch.kernels.expander(location)
        else:
            expander = self._network.kernels.expander(location)
        exact: dict[int, float] = {}
        kth = math.inf
        for lower_bound, object_id in self._grid.iter_by_euclidean(location):
            if len(exact) >= k and lower_bound > kth:
                break
            node = self._location[object_id]
            distance = expander.distance_to(node)
            if math.isinf(distance):
                continue  # unreachable (disconnected component)
            exact[object_id] = distance
            if len(exact) >= k:
                kth = sorted(exact.values())[k - 1]
        return canonical_knn(exact, k)

    def query_batch(self, locations, ks) -> list[list[Neighbor]]:
        """Batch queries via the shared top-k kernel sweep.

        IER's per-query strength is the Euclidean early exit; for whole
        batches the shared delta-stepping sweep amortizes better, and
        both are exact — distances come from the same kernel relaxation
        either way, so answers are identical to the per-query path.
        """
        locations = list(locations)
        ks = list(ks)
        if len(locations) != len(ks):
            raise ValueError("locations and ks must have equal length")
        if not locations:
            return []
        if self._use_ch(max(ks)):
            batched = self._ch.kernels.knn_batch(
                locations, ks, self._object_counts()
            )
        else:
            batched = self._network.kernels.knn_batch(
                locations, ks, self._object_counts()
            )
        at_node: dict[int, list[int]] = {}
        for object_id, node in self._location.items():
            at_node.setdefault(node, []).append(object_id)
        answers: list[list[Neighbor]] = []
        for k, (nodes, dists) in zip(ks, batched):
            if k <= 0:
                answers.append([])
                continue
            found = [
                Neighbor(distance, object_id)
                for node, distance in zip(nodes.tolist(), dists.tolist())
                for object_id in at_node.get(node, ())
            ]
            found.sort()
            answers.append(found[:k])
        return answers

    def _object_counts(self) -> np.ndarray:
        if self._counts is None:
            counts = np.zeros(self._network.num_nodes, dtype=np.int32)
            for node in self._location.values():
                counts[node] += 1
            self._counts = counts
        return self._counts

    def insert(self, object_id: int, location: int) -> None:
        if object_id in self._location:
            raise KeyError(f"object {object_id} already present")
        self._location[object_id] = location
        self._grid.add(object_id, location)
        if self._counts is not None:
            self._counts[location] += 1

    def delete(self, object_id: int) -> None:
        if object_id not in self._location:
            raise KeyError(f"object {object_id} not present")
        self._grid.remove(object_id)
        node = self._location.pop(object_id)
        if self._counts is not None:
            self._counts[node] -= 1

    def spawn(self, objects: Mapping[int, int]) -> "IERKNN":
        return IERKNN(
            self._network,
            objects,
            cell_size=self._grid._cell_size,
            ch=self._ch,
            ch_cutoff=self._ch_cutoff,
        )

    def object_locations(self) -> dict[int, int]:
        return dict(self._location)

    # Pickling: the counts vector is derived data (4 bytes/node); drop
    # it so spawned workers ship only the grid + the graph token.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_counts"] = None
        return state

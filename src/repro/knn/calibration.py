"""Algorithm profiling: the paper's ``(tq, Vq, tu, Vu)`` characteristics.

Section IV-B: "The set of values (tq, Vq, tu, Vu) characterize solution
A.  We assume that these values can be obtained via a simple empirical
study for a given application (e.g., by executing isolated queries and
updates on a single core with a given set of objects M and collecting
execution times statistics)."

:func:`measure_profile` performs exactly that empirical study on any
:class:`~repro.knn.base.KNNSolution`.  The resulting
:class:`AlgorithmProfile` feeds both the analytical optimizer
(:mod:`repro.mpr.analysis`) and the discrete-event simulator's service
time model (:mod:`repro.sim`).

Because our substrate is pure Python rather than the authors' C++
testbed, :func:`paper_profile` additionally provides *paper-parity*
profiles — service-time characteristics consistent with the numbers the
paper reports (e.g. TOAIN ``tq ≈ 170 μs`` on BJ with m = 10K) and with
the cost narratives of Section II.  Paper-parity profiles are what the
table/figure benches feed to the simulator so that arrival rates like
λq = 15,000/s are meaningful.  They are estimates, clearly labelled as
such in EXPERIMENTS.md.
"""

from __future__ import annotations

import random
import statistics
import time
from dataclasses import dataclass

from .base import KNNSolution


@dataclass(frozen=True)
class AlgorithmProfile:
    """Execution-time characteristics of a single-threaded kNN solution.

    All times are in seconds; ``vq``/``vu`` are variances.
    """

    name: str
    tq: float
    vq: float
    tu: float
    vu: float

    def __post_init__(self) -> None:
        if self.tq < 0 or self.tu < 0 or self.vq < 0 or self.vu < 0:
            raise ValueError("profile times and variances must be non-negative")

    @property
    def gamma_q(self) -> float:
        """Squared coefficient of variation of query time (paper's γq)."""
        return self.vq / (self.tq * self.tq) if self.tq > 0 else 0.0

    @property
    def gamma_u(self) -> float:
        """Squared coefficient of variation of update time (paper's γu)."""
        return self.vu / (self.tu * self.tu) if self.tu > 0 else 0.0

    def scaled(self, query_factor: float = 1.0, update_factor: float = 1.0) -> "AlgorithmProfile":
        """A profile with scaled means (variances scale quadratically)."""
        return AlgorithmProfile(
            name=self.name,
            tq=self.tq * query_factor,
            vq=self.vq * query_factor * query_factor,
            tu=self.tu * update_factor,
            vu=self.vu * update_factor * update_factor,
        )


def measure_profile(
    solution: KNNSolution,
    k: int = 10,
    num_queries: int = 50,
    num_updates: int = 50,
    seed: int = 0,
    num_nodes: int | None = None,
) -> AlgorithmProfile:
    """Empirically measure ``(tq, Vq, tu, Vu)`` on isolated operations.

    Queries are issued from random nodes; updates are move cycles
    (delete + reinsert of an existing object), matching how workloads
    exercise the solution.  The solution is left in its original state.

    ``num_nodes`` bounds the query-location space; when omitted it is
    inferred from the solution's current object locations (fallback 1).
    """
    rng = random.Random(seed)
    locations = solution.object_locations()
    if num_nodes is None:
        num_nodes = max(locations.values(), default=0) + 1

    query_samples: list[float] = []
    for _ in range(max(num_queries, 1)):
        origin = rng.randrange(num_nodes)
        start = time.perf_counter()
        solution.query(origin, k)
        query_samples.append(time.perf_counter() - start)

    update_samples: list[float] = []
    if locations:
        victims = rng.sample(sorted(locations), min(num_updates, len(locations)))
        for object_id in victims:
            node = locations[object_id]
            start = time.perf_counter()
            solution.delete(object_id)
            update_samples.append(time.perf_counter() - start)
            start = time.perf_counter()
            solution.insert(object_id, node)
            update_samples.append(time.perf_counter() - start)
    if not update_samples:
        update_samples = [0.0]

    return AlgorithmProfile(
        name=solution.name,
        tq=statistics.fmean(query_samples),
        vq=statistics.pvariance(query_samples) if len(query_samples) > 1 else 0.0,
        tu=statistics.fmean(update_samples),
        vu=statistics.pvariance(update_samples) if len(update_samples) > 1 else 0.0,
    )


def profile_from_telemetry(
    telemetry, name: str = "measured"
) -> AlgorithmProfile:
    """Derive ``(tq, Vq, tu, Vu)`` from a run's recorded telemetry.

    The live-system counterpart of :func:`measure_profile`: instead of
    an isolated empirical study, the profile comes from the ``execute``
    (query service times) and ``update`` stage histograms an executor
    recorded through its :class:`repro.obs.Telemetry` while serving
    real traffic — closing the loop from observation back into the
    optimizer.  Raises ``ValueError`` if the run recorded no query
    executions; a run with no updates yields ``tu = vu = 0``.
    """
    execute = telemetry.histogram("execute")
    if execute is None or execute.count == 0:
        raise ValueError(
            "telemetry holds no 'execute' samples; run queries through "
            "an executor with telemetry enabled first"
        )
    update = telemetry.histogram("update")
    return AlgorithmProfile(
        name=name,
        tq=execute.mean,
        vq=execute.variance,
        tu=update.mean if update is not None and update.count else 0.0,
        vu=update.variance if update is not None and update.count else 0.0,
    )


# ----------------------------------------------------------------------
# Paper-parity profiles
# ----------------------------------------------------------------------
#: Base (tq, tu) in seconds on the BJ network with m = 10K objects,
#: k = 10.  TOAIN's tq is the paper's own number (Section V-B: "using
#: TOAIN, we register a tq of about 170 μs"); the others are estimates
#: consistent with Section II's cost narrative and the TOAIN paper:
#: Dijkstra has no index (sub-μs updates, slow queries); V-tree is the
#: most query-efficient with costly index maintenance; TOAIN sits in
#: between with a throughput-optimized SCOB configuration.
_BASE_BJ: dict[str, tuple[float, float]] = {
    "Dijkstra": (800e-6, 0.5e-6),
    "V-tree": (60e-6, 150e-6),
    "TOAIN": (170e-6, 10e-6),
    "G-tree": (110e-6, 4e-6),
    "ROAD": (300e-6, 2e-6),
    "IER": (260e-6, 1e-6),
}

#: Network size relative to BJ (nodes), from Table I.
_RELATIVE_SIZE: dict[str, float] = {
    "BJ": 1.0,
    "NW": 1_207_945 / 1_285_215,
    "NY": 264_346 / 1_285_215,
    "USA(E)": 3_598_623 / 1_285_215,
    "USA(W)": 6_262_104 / 1_285_215,
}

#: Squared coefficient of variation assumed for paper-parity profiles.
PAPER_GAMMA = 1.0


def paper_profile(
    solution_name: str,
    network_symbol: str = "BJ",
    object_count: int = 10_000,
) -> AlgorithmProfile:
    """Paper-parity ``AlgorithmProfile`` for a solution on a network.

    Query times scale with network size: linearly for Dijkstra (its
    expansion radius grows with the node count for a fixed object count)
    and logarithmically for the indexed solutions.  Update times scale
    logarithmically for indexed solutions and not at all for Dijkstra.
    A larger object set *reduces* Dijkstra query times (the expansion
    finds k objects sooner) and slightly increases index update times.
    """
    try:
        base_tq, base_tu = _BASE_BJ[solution_name]
    except KeyError:
        known = ", ".join(sorted(_BASE_BJ))
        raise KeyError(
            f"no paper-parity profile for {solution_name!r}; known: {known}"
        ) from None
    try:
        size = _RELATIVE_SIZE[network_symbol]
    except KeyError:
        known = ", ".join(sorted(_RELATIVE_SIZE))
        raise KeyError(
            f"unknown network symbol {network_symbol!r}; known: {known}"
        ) from None

    import math

    log_size = 1.0 + math.log(max(size, 1e-9)) / math.log(10.0) * 0.35
    log_size = max(log_size, 0.2)
    density = 10_000 / max(object_count, 1)

    if solution_name == "Dijkstra":
        tq = base_tq * size * density
        tu = base_tu
    else:
        tq = base_tq * log_size
        tu = base_tu * log_size * (1.0 + 0.1 * math.log10(max(object_count, 10) / 10_000 + 1.0))

    tq = max(tq, 1e-6)
    tu = max(tu, 1e-7)
    return AlgorithmProfile(
        name=solution_name,
        tq=tq,
        vq=PAPER_GAMMA * tq * tq,
        tu=tu,
        vu=PAPER_GAMMA * tu * tu,
    )

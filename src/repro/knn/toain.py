"""TOAIN: throughput-optimizing adaptive kNN index (Luo et al., PVLDB 2018).

TOAIN answers kNN queries with the SCOB index — shortcuts from a
contraction hierarchy (CH) combined with per-node object lists — and its
signature feature is a *family* of index configurations trading query
time against update time, from which it picks the one that maximizes
throughput for a given workload.

Our implementation realizes the same design space with a CH **core
threshold**:

* a full contraction hierarchy is built once — by the array-based
  engine in :mod:`repro.graph.ch` (re-exported here as
  :class:`ContractionHierarchy`); this module consumes its ``rank``,
  ``edges`` and ``up_adj`` views and is now a thin adapter over it;
* a *core fraction* ``rho`` designates the top ``rho``-ranked nodes as the
  core; the CH shortcut set restricted to core nodes is a distance-
  preserving overlay (the classic CH/CRP property);
* an object **registers** along its upward CH search, truncated at the
  core boundary: it writes ``(object, distance)`` into every settled
  periphery node and into its core *entry* nodes;
* a query runs its own truncated upward search, harvesting candidates
  from periphery registrations, then a Dijkstra over the (small) core
  from its entry nodes, harvesting entry registrations.

Exactness follows from the CH up-down path property: the meeting node of
a shortest query-object path either lies in the periphery (settled and
registered by both sides) or the path's core segment is fully inside the
core overlay, connecting the two sides' entry nodes.

The knob: a **small core** makes objects register far up (slow updates)
and queries scan a tiny core (fast queries); a **large core** truncates
registration early (fast updates) and pushes work to the query's core
Dijkstra (slower queries).  :func:`choose_core_fraction` picks the best
family member for a workload, exactly TOAIN's throughput-driven tuning.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Iterable, Mapping, Sequence

from ..graph.ch import WITNESS_SETTLE_LIMIT, ContractionHierarchy
from ..graph.road_network import RoadNetwork
from ..graph.shortest_path import INFINITY
from .base import KNNSolution, Neighbor, canonical_knn

__all__ = [
    "DEFAULT_CORE_FRACTION",
    "DEFAULT_FAMILY",
    "WITNESS_SETTLE_LIMIT",  # re-export: lives in repro.graph.ch now
    "ContractionHierarchy",  # re-export: lives in repro.graph.ch now
    "ToainIndex",
    "ToainKNN",
    "choose_core_fraction",
]

#: The SCOB family: candidate core fractions from query-optimized (small
#: core) to update-optimized (large core).
DEFAULT_FAMILY: tuple[float, ...] = (0.01, 0.03, 0.08, 0.15, 0.30)
DEFAULT_CORE_FRACTION = 0.08


class ToainIndex:
    """Immutable network-side SCOB structure (CH + core overlay)."""

    def __init__(
        self,
        network: RoadNetwork,
        core_fraction: float = DEFAULT_CORE_FRACTION,
        ch: ContractionHierarchy | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 < core_fraction <= 1.0:
            raise ValueError("core_fraction must be in (0, 1]")
        self.network = network
        self.core_fraction = core_fraction
        self.ch = ch or ContractionHierarchy(network, seed=seed)
        if self.ch.network is not network:
            raise ValueError("contraction hierarchy built over a different network")
        n = network.num_nodes
        threshold = max(n - max(int(n * core_fraction), 1), 0)
        self.is_core = (self.ch.rank >= threshold).tolist()
        # Core overlay adjacency (undirected) among core nodes.
        self.core_adj: dict[int, list[tuple[int, float]]] = {}
        for (u, v), w in self.ch.edges.items():
            if self.is_core[u] and self.is_core[v]:
                self.core_adj.setdefault(u, []).append((v, w))
                self.core_adj.setdefault(v, []).append((u, w))

    def point_to_point(self, source: int, target: int) -> float:
        """Exact network distance via the classic CH up-up meeting.

        Runs both truncated upward searches and joins them over the
        periphery (shared settled nodes) and the core (a Dijkstra over
        the core overlay from the source's entries towards the
        target's).  Returns ``inf`` when unreachable.
        """
        if source == target:
            return 0.0
        periphery_s, entries_s = self.truncated_upward(source)
        periphery_t, entries_t = self.truncated_upward(target)

        best = INFINITY
        for node, d in periphery_s.items():
            other = periphery_t.get(node)
            if other is not None and d + other < best:
                best = d + other

        if entries_s and entries_t:
            # Multi-source Dijkstra over the core from the source side.
            dist: dict[int, float] = {}
            heap = sorted((d, node) for node, d in entries_s.items())
            while heap:
                d, node = heappop(heap)
                if node in dist:
                    continue
                if d >= best:
                    break
                dist[node] = d
                other = entries_t.get(node)
                if other is not None and d + other < best:
                    best = d + other
                for nxt, weight in self.core_adj.get(node, ()):
                    if nxt not in dist:
                        heappush(heap, (d + weight, nxt))
        return best

    def truncated_upward(self, source: int) -> tuple[dict[int, float], dict[int, float]]:
        """Upward Dijkstra from ``source`` stopping at the core boundary.

        Returns ``(periphery, entries)``: settled periphery nodes with
        distances, and core entry nodes with distances (entries are
        settled but not expanded).
        """
        if self.is_core[source]:
            return {}, {source: 0.0}
        up_adj = self.ch.up_adj
        is_core = self.is_core
        periphery: dict[int, float] = {}
        entries: dict[int, float] = {}
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, node = heappop(heap)
            if node in periphery or node in entries:
                continue
            if is_core[node]:
                entries[node] = d
                continue
            periphery[node] = d
            for nxt, weight in up_adj[node]:
                if nxt not in periphery and nxt not in entries:
                    heappush(heap, (d + weight, nxt))
        return periphery, entries


@dataclass
class _Registration:
    """Where an object is registered and at what upward distances."""

    sites: list[int]


class ToainKNN(KNNSolution):
    """TOAIN kNN solution over a shared :class:`ToainIndex`."""

    name = "TOAIN"

    def __init__(
        self,
        network: RoadNetwork,
        objects: Mapping[int, int] | None = None,
        index: ToainIndex | None = None,
        core_fraction: float = DEFAULT_CORE_FRACTION,
    ) -> None:
        self._index = index or ToainIndex(network, core_fraction=core_fraction)
        if self._index.network is not network:
            raise ValueError("index was built over a different network")
        self._location: dict[int, int] = {}
        # node -> {object_id: upward distance} (periphery and entry regs).
        self._registry: dict[int, dict[int, float]] = {}
        self._registration: dict[int, _Registration] = {}
        if objects:
            for object_id, node in objects.items():
                self.insert(object_id, node)

    # ------------------------------------------------------------------
    # KNNSolution interface
    # ------------------------------------------------------------------
    def query(self, location: int, k: int) -> list[Neighbor]:
        if k <= 0:
            return []
        periphery, entries = self._index.truncated_upward(location)
        candidates: dict[int, float] = {}

        def harvest(node: int, base: float) -> None:
            registered = self._registry.get(node)
            if registered:
                for object_id, upward in registered.items():
                    total = base + upward
                    prior = candidates.get(object_id)
                    if prior is None or total < prior:
                        candidates[object_id] = total

        for node, d in periphery.items():
            harvest(node, d)

        # Core phase: multi-source Dijkstra over the core overlay.
        core_adj = self._index.core_adj
        dist: dict[int, float] = {}
        heap: list[tuple[float, int]] = []
        for entry, d in entries.items():
            heap.append((d, entry))
        heap.sort()
        while heap:
            d, node = heappop(heap)
            if node in dist:
                continue
            if len(candidates) >= k:
                bound = sorted(candidates.values())[k - 1]
                if d > bound:
                    break
            dist[node] = d
            harvest(node, d)
            for nxt, weight in core_adj.get(node, ()):
                if nxt not in dist:
                    heappush(heap, (d + weight, nxt))
        return canonical_knn(candidates, k)

    def insert(self, object_id: int, location: int) -> None:
        if object_id in self._location:
            raise KeyError(f"object {object_id} already present")
        self._location[object_id] = location
        periphery, entries = self._index.truncated_upward(location)
        sites: list[int] = []
        for node, d in periphery.items():
            self._registry.setdefault(node, {})[object_id] = d
            sites.append(node)
        for node, d in entries.items():
            self._registry.setdefault(node, {})[object_id] = d
            sites.append(node)
        self._registration[object_id] = _Registration(sites)

    def delete(self, object_id: int) -> None:
        try:
            del self._location[object_id]
        except KeyError:
            raise KeyError(f"object {object_id} not present") from None
        registration = self._registration.pop(object_id)
        for node in registration.sites:
            bucket = self._registry.get(node)
            if bucket is not None:
                bucket.pop(object_id, None)
                if not bucket:
                    del self._registry[node]

    def spawn(self, objects: Mapping[int, int]) -> "ToainKNN":
        return ToainKNN(self._index.network, objects, index=self._index)

    def object_locations(self) -> dict[int, int]:
        return dict(self._location)

    # ------------------------------------------------------------------
    # Extras
    # ------------------------------------------------------------------
    @property
    def index(self) -> ToainIndex:
        return self._index

    @property
    def core_fraction(self) -> float:
        return self._index.core_fraction


def choose_core_fraction(
    network: RoadNetwork,
    objects: Mapping[int, int],
    lambda_q: float,
    lambda_u: float,
    k: int = 10,
    family: Sequence[float] = DEFAULT_FAMILY,
    sample_queries: int = 30,
    sample_updates: int = 30,
    ch: ContractionHierarchy | None = None,
    query_locations: Iterable[int] | None = None,
) -> tuple[float, dict[float, tuple[float, float]]]:
    """TOAIN's workload-driven tuning: pick the family member that
    minimizes per-task core load ``λq·tq + λu·tu`` (which maximizes the
    sustainable throughput for the given update load).

    Returns ``(best_core_fraction, {rho: (tq, tu)})`` with the measured
    mean query and update times per family member.
    """
    if lambda_q < 0 or lambda_u < 0:
        raise ValueError("arrival rates must be non-negative")
    shared_ch = ch or ContractionHierarchy(network)
    objects = dict(objects)
    if query_locations is None:
        step = max(network.num_nodes // max(sample_queries, 1), 1)
        query_locations = list(range(0, network.num_nodes, step))[:sample_queries]
    else:
        query_locations = list(query_locations)

    profile: dict[float, tuple[float, float]] = {}
    best_rho = family[0]
    best_load = INFINITY
    for rho in family:
        index = ToainIndex(network, core_fraction=rho, ch=shared_ch)
        solution = ToainKNN(network, objects, index=index)
        start = time.perf_counter()
        for location in query_locations:
            solution.query(location, k)
        tq = (time.perf_counter() - start) / max(len(query_locations), 1)

        victims = list(objects)[:sample_updates]
        start = time.perf_counter()
        for object_id in victims:
            node = solution.object_locations()[object_id]
            solution.delete(object_id)
            solution.insert(object_id, node)
        elapsed = time.perf_counter() - start
        tu = elapsed / max(2 * len(victims), 1)

        profile[rho] = (tq, tu)
        load = lambda_q * tq + lambda_u * tu
        if load < best_load:
            best_load = load
            best_rho = rho
    return best_rho, profile

"""The paper's measurement methodology (Section V-A, "Measurements").

* :func:`measure_response_time` — "We measure Rq by running the system
  for 200 seconds with a query/update stream [...] and report the
  average [...].  For the case in which a core is overloaded [...] we
  report 'Overload'."
* :func:`find_max_throughput` — "we repeat the above run while
  gradually increasing the value of λq.  We determine the largest λq
  that does not cause a core to be overloaded or Rq to exceed a
  response time bound Rq*."

Simulated seconds are cheap but not free in pure Python; the default
run length is shorter than the paper's 200 s and configurable.  All
measurements are deterministic given a seed.
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass

from ..harness.metrics import PoolMetrics
from ..knn.calibration import AlgorithmProfile
from ..mpr.analysis import MachineSpec
from ..mpr.config import MPRConfig
from ..objects.tasks import DeleteTask, InsertTask, QueryTask, Task
from .system import SimulatedMPRSystem, SystemStats

#: A server finishing the run with more than this many seconds of queued
#: work per simulated second is flagged overloaded (its queue grows
#: without bound rather than fluctuating).
OVERLOAD_BACKLOG_FRACTION = 0.05
#: Utilization above which a server counts as saturated.
OVERLOAD_UTILIZATION = 0.995


@dataclass(frozen=True)
class Measurement:
    """Outcome of one simulated run."""

    overloaded: bool
    mean_response_time: float
    p95_response_time: float
    mean_worker_service: float
    mean_queuing_delay: float
    completed_queries: int
    max_utilization: float

    @property
    def display(self) -> str:
        if self.overloaded:
            return "Overload"
        return f"{self.mean_response_time * 1e6:,.0f} us"


def synthetic_stream(
    lambda_q: float,
    lambda_u: float,
    duration: float,
    seed: int = 0,
    k: int = 10,
    taxi_hailing: bool = False,
    initial_objects: int = 0,
) -> list[Task]:
    """A location-free task stream for performance simulation.

    The simulator only consumes arrival times, kinds and object ids
    (for the scheduler's hash table); locations and k do not influence
    timing, so queries sit at node 0 and object ids follow the same
    stochastic structure the paper's generators produce:

    * **RU** (default): update events at rate λu, each an insert of a
      fresh object or a delete of a live one with equal probability;
    * **TH** (``taxi_hailing=True``): movement events at rate λu/2,
      each a delete + insert *pair* of the same object at the same
      instant — burstier for the update path, exactly like the paper's
      taxi streams.  Requires ``initial_objects > 0`` pre-placed ids
      ``0 .. initial_objects-1`` (pass the same value to the system's
      preload).
    """
    if taxi_hailing and initial_objects < 1:
        raise ValueError("taxi_hailing mode needs initial_objects >= 1")
    rng = random.Random(seed)
    update_rate = lambda_u / 2.0 if taxi_hailing else lambda_u
    events: list[tuple[float, int, str]] = []
    tiebreak = 0
    for rate, kind in ((lambda_q, "query"), (update_rate, "update")):
        clock = 0.0
        if rate <= 0:
            continue
        while True:
            clock += rng.expovariate(rate)
            if clock >= duration:
                break
            events.append((clock, tiebreak, kind))
            tiebreak += 1
    events.sort()

    tasks: list[Task] = []
    live: list[int] = list(range(initial_objects))
    next_object = initial_objects
    next_query = 0
    next_movement = 0
    for time, _, kind in events:
        if kind == "query":
            tasks.append(QueryTask(time, next_query, 0, k))
            next_query += 1
        elif taxi_hailing:
            mover = live[rng.randrange(len(live))]
            tasks.append(DeleteTask(time, mover, movement_id=next_movement))
            tasks.append(InsertTask(time, mover, 0, movement_id=next_movement))
            next_movement += 1
        elif not live or rng.random() < 0.5:
            tasks.append(InsertTask(time, next_object, 0))
            live.append(next_object)
            next_object += 1
        else:
            victim_index = rng.randrange(len(live))
            victim = live[victim_index]
            live[victim_index] = live[-1]
            live.pop()
            tasks.append(DeleteTask(time, victim))
    return tasks


def measured_tau_prime(metrics: PoolMetrics) -> float:
    """The batch-amortized per-task dispatch overhead τ' of a pool run.

    Section IV-C's τ' is one s-core w-queue write.  In the process
    pool the analogous cost is the parent's per-message routing +
    pickle + queue put, amortized over the ops a batch carries; this
    is the number the batching benchmark shows shrinking as the batch
    grows.  Returns 0.0 for a pool that dispatched nothing.
    """
    return metrics.dispatch_seconds_per_task


def machine_spec_from_pool(
    metrics: PoolMetrics, total_cores: int = 19
) -> MachineSpec:
    """Calibrate a :class:`MachineSpec` from measured pool overheads.

    Feeds the process pool's observed per-stage costs back into the
    analytical/DES machine model (DESIGN.md substitution #1 run in
    reverse): the measured per-task dispatch overhead becomes τ'
    (``queue_write_time``), the per-answer aggregation cost becomes
    ``merge_time``, and the raw per-message cost becomes
    ``dispatch_time``.  Stages the run never exercised keep the
    defaults, so a fresh ``PoolMetrics`` reproduces ``MachineSpec()``.
    """
    defaults = MachineSpec(total_cores=total_cores)
    queue_write = (
        metrics.dispatch_seconds_per_task
        if metrics.ops_dispatched else defaults.queue_write_time
    )
    merge = (
        metrics.aggregate.seconds / metrics.partials_received
        if metrics.partials_received else defaults.merge_time
    )
    dispatch = (
        metrics.dispatch.seconds / metrics.messages_sent
        if metrics.messages_sent else defaults.dispatch_time
    )
    return MachineSpec(
        total_cores=total_cores,
        queue_write_time=queue_write,
        merge_time=merge,
        dispatch_time=dispatch,
    )


def machine_spec_from_telemetry(
    telemetry, total_cores: int = 19
) -> MachineSpec:
    """Calibrate a :class:`MachineSpec` from recorded stage histograms.

    The telemetry counterpart of :func:`machine_spec_from_pool`, usable
    with any executor (thread, process, or measured-in-the-loop sim)
    that recorded through a :class:`repro.obs.Telemetry`:

    * ``queue_write_time`` (the paper's τ') ← mean of the ``dispatch``
      stage — the parent-side routing + enqueue cost per task;
    * ``merge_time`` ← mean of the ``merge`` stage;
    * ``dispatch_time`` ← mean of the ``ack`` stage (one cross-worker
      message transit, the closest observable to a d-core hand-off).

    Stages the run never recorded keep the :class:`MachineSpec`
    defaults, so an empty handle reproduces ``MachineSpec()``.
    """
    defaults = MachineSpec(total_cores=total_cores)

    def stage_mean(stage: str, fallback: float) -> float:
        histogram = telemetry.histogram(stage)
        if histogram is None or histogram.count == 0:
            return fallback
        return histogram.mean

    return MachineSpec(
        total_cores=total_cores,
        queue_write_time=stage_mean("dispatch", defaults.queue_write_time),
        merge_time=stage_mean("merge", defaults.merge_time),
        dispatch_time=stage_mean("ack", defaults.dispatch_time),
    )


def summarize(stats: SystemStats, warmup: float = 0.0) -> Measurement:
    """Reduce raw simulation stats to the paper's reported quantities."""
    overloaded = stats.max_utilization >= OVERLOAD_UTILIZATION or any(
        backlog > OVERLOAD_BACKLOG_FRACTION * stats.horizon
        for backlog in stats.end_backlogs.values()
    )
    responses = [
        o.response_time for o in stats.outcomes if o.arrival >= warmup
    ]
    services = [
        o.worker_service_max for o in stats.outcomes if o.arrival >= warmup
    ]
    if not responses:
        return Measurement(
            overloaded=overloaded,
            mean_response_time=math.inf,
            p95_response_time=math.inf,
            mean_worker_service=math.inf,
            mean_queuing_delay=math.inf,
            completed_queries=0,
            max_utilization=stats.max_utilization,
        )
    responses.sort()
    mean_response = statistics.fmean(responses)
    mean_service = statistics.fmean(services)
    return Measurement(
        overloaded=overloaded,
        mean_response_time=mean_response,
        p95_response_time=responses[int(0.95 * (len(responses) - 1))],
        mean_worker_service=mean_service,
        mean_queuing_delay=max(mean_response - mean_service, 0.0),
        completed_queries=len(responses),
        max_utilization=stats.max_utilization,
    )


def measure_response_time(
    config: MPRConfig,
    profile: AlgorithmProfile,
    machine: MachineSpec,
    lambda_q: float,
    lambda_u: float,
    duration: float = 2.0,
    warmup_fraction: float = 0.2,
    seed: int = 0,
    tasks: list[Task] | None = None,
    taxi_hailing: bool = False,
    initial_objects: int = 0,
) -> Measurement:
    """One Rq run: generate (or take) a stream, simulate, summarize."""
    if taxi_hailing and initial_objects < 1:
        initial_objects = 1000
    if tasks is None:
        tasks = synthetic_stream(
            lambda_q, lambda_u, duration, seed=seed,
            taxi_hailing=taxi_hailing, initial_objects=initial_objects,
        )
    system = SimulatedMPRSystem(config, profile, machine, seed=seed + 1)
    if initial_objects:
        system.preload({obj: 0 for obj in range(initial_objects)})
    stats = system.run(tasks, horizon=duration)
    return summarize(stats, warmup=duration * warmup_fraction)


def find_max_throughput(
    config: MPRConfig,
    profile: AlgorithmProfile,
    machine: MachineSpec,
    lambda_u: float,
    rq_bound: float = 0.1,
    duration: float = 0.5,
    seed: int = 0,
    relative_tolerance: float = 0.02,
    initial_lambda_q: float = 100.0,
    bound_on_p95: bool = False,
) -> float:
    """Largest sustainable λq under the response-time bound.

    Geometric ramp-up followed by binary search, mirroring the paper's
    "gradually increasing λq" procedure but with simulated runs.

    ``bound_on_p95`` switches the SLA from the paper's mean response
    time to the 95th percentile — the criterion real location-based
    services use, and strictly more conservative.
    """
    def sustainable(lambda_q: float) -> bool:
        measurement = measure_response_time(
            config, profile, machine, lambda_q, lambda_u,
            duration=duration, seed=seed,
        )
        if measurement.overloaded:
            return False
        observed = (
            measurement.p95_response_time if bound_on_p95
            else measurement.mean_response_time
        )
        return observed <= rq_bound

    if not sustainable(initial_lambda_q):
        # Even the starting rate fails; probe downwards.
        low, high = 0.0, initial_lambda_q
        if high <= 1.0:
            return 0.0
    else:
        low = initial_lambda_q
        high = initial_lambda_q * 2.0
        while sustainable(high):
            low = high
            high *= 2.0
            if high > 1e9:
                return high
    while high - low > relative_tolerance * max(high, 1.0):
        mid = (low + high) / 2.0
        if sustainable(mid):
            low = mid
        else:
            high = mid
    return low

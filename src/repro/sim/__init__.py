"""Discrete-event simulation of the multicore machine."""

from .des import FCFSServer, ServiceSampler
from .inloop import InLoopResult, simulate_with_execution
from .measurement import (
    Measurement,
    find_max_throughput,
    machine_spec_from_pool,
    machine_spec_from_telemetry,
    measure_response_time,
    measured_tau_prime,
    summarize,
    synthetic_stream,
)
from .system import QueryOutcome, SimulatedMPRSystem, SystemStats
from .trace import (
    LatencyDigest,
    bottleneck,
    digest_latencies,
    latency_histogram,
    utilization_report,
)

__all__ = [
    "InLoopResult",
    "simulate_with_execution",
    "LatencyDigest",
    "bottleneck",
    "digest_latencies",
    "latency_histogram",
    "utilization_report",
    "FCFSServer",
    "ServiceSampler",
    "Measurement",
    "find_max_throughput",
    "machine_spec_from_pool",
    "machine_spec_from_telemetry",
    "measure_response_time",
    "measured_tau_prime",
    "summarize",
    "synthetic_stream",
    "QueryOutcome",
    "SimulatedMPRSystem",
    "SystemStats",
]

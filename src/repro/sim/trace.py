"""Latency digests and per-core reports for simulation runs.

The paper reports means ("We compute the average response time of all
the queries"), but operators of the motivating systems (Uber, Didi)
care about tails; this module turns a run's raw
:class:`~repro.sim.system.SystemStats` into percentile digests,
latency histograms, and per-core utilization reports for the benches
and examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .system import SystemStats

DEFAULT_PERCENTILES = (0.50, 0.90, 0.95, 0.99)


@dataclass(frozen=True)
class LatencyDigest:
    """Distributional summary of query response times."""

    count: int
    mean: float
    minimum: float
    maximum: float
    percentiles: dict[float, float]

    def percentile(self, quantile: float) -> float:
        try:
            return self.percentiles[quantile]
        except KeyError:
            known = ", ".join(f"{q:g}" for q in sorted(self.percentiles))
            raise KeyError(
                f"percentile {quantile} not in digest (has: {known})"
            ) from None

    @property
    def p99_over_mean(self) -> float:
        """Tail amplification factor (1.0 = deterministic)."""
        if self.mean <= 0:
            return 0.0
        return self.percentiles.get(0.99, self.maximum) / self.mean


def digest_latencies(
    stats: SystemStats,
    warmup: float = 0.0,
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
) -> LatencyDigest:
    """Summarize response times of queries arriving after ``warmup``."""
    samples = sorted(
        outcome.response_time
        for outcome in stats.outcomes
        if outcome.arrival >= warmup
    )
    if not samples:
        empty = {q: math.inf for q in percentiles}
        return LatencyDigest(0, math.inf, math.inf, math.inf, empty)
    values = {}
    for quantile in percentiles:
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"percentile {quantile} outside [0, 1]")
        index = min(int(quantile * (len(samples) - 1) + 0.5), len(samples) - 1)
        values[quantile] = samples[index]
    return LatencyDigest(
        count=len(samples),
        mean=sum(samples) / len(samples),
        minimum=samples[0],
        maximum=samples[-1],
        percentiles=values,
    )


def latency_histogram(
    stats: SystemStats, num_bins: int = 20, warmup: float = 0.0
) -> list[tuple[float, int]]:
    """Equal-width histogram of response times: (bin upper edge, count)."""
    if num_bins < 1:
        raise ValueError("num_bins must be positive")
    samples = [
        outcome.response_time
        for outcome in stats.outcomes
        if outcome.arrival >= warmup
    ]
    if not samples:
        return []
    top = max(samples)
    if top <= 0:
        return [(0.0, len(samples))]
    width = top / num_bins
    counts = [0] * num_bins
    for sample in samples:
        index = min(int(sample / width), num_bins - 1)
        counts[index] += 1
    return [((i + 1) * width, counts[i]) for i in range(num_bins)]


def utilization_report(stats: SystemStats) -> list[tuple[str, float]]:
    """Per-core utilization rows, hottest first.

    Worker rows are labelled ``w(layer,row,col)``; control-plane rows
    by role.  The hottest core is the system's capacity bottleneck.
    """
    rows: list[tuple[str, float]] = []
    for worker_id, utilization in stats.worker_utilizations.items():
        rows.append((f"w{worker_id}", utilization))
    for layer, utilization in enumerate(stats.scheduler_utilizations):
        rows.append((f"s-core[{layer}]", utilization))
    for layer, utilization in enumerate(stats.aggregator_utilizations):
        rows.append((f"a-core[{layer}]", utilization))
    if stats.dispatcher_utilization > 0:
        rows.append(("d-core", stats.dispatcher_utilization))
    rows.sort(key=lambda row: row[1], reverse=True)
    return rows


def bottleneck(stats: SystemStats) -> tuple[str, float]:
    """The hottest core and its utilization (the capacity limiter)."""
    rows = utilization_report(stats)
    if not rows:
        return ("none", 0.0)
    return rows[0]

"""Measured-in-the-loop simulation: real execution, simulated cores.

The profile-driven simulator (:mod:`repro.sim.system`) samples service
times from a fitted distribution.  This module closes the remaining
gap for *measured mode*: it actually executes every query and update
on real per-worker solution instances — so answers are real and each
operation's **measured wall time** becomes its service time in the
queueing model.  The Lindley recurrence then yields the response times
the same stream would see on a machine whose cores run exactly our
Python implementations.

This is the closest meaningful approximation to "run the paper's
experiment on this hardware" that a GIL-bound runtime permits
(DESIGN.md substitution #1): work is executed serially, but the
queueing arithmetic accounts for it as if each w-core were a real
core.  Correctness is inherited from the router (identical to the
threaded executor); tests pin both the answers and the accounting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..knn.base import KNNSolution, Neighbor, merge_partial_results
from ..mpr.analysis import MachineSpec
from ..mpr.config import MPRConfig
from ..mpr.core_matrix import MPRRouter, QueryRoute, WorkerId
from ..objects.tasks import Task, TaskKind
from ..obs import Telemetry
from .des import FCFSServer


@dataclass
class InLoopResult:
    """Outcome of a measured-in-the-loop run."""

    answers: dict[int, list[Neighbor]]
    response_times: dict[int, float]
    horizon: float
    worker_busy: dict[WorkerId, float] = field(default_factory=dict)

    @property
    def mean_response_time(self) -> float:
        if not self.response_times:
            return float("inf")
        return sum(self.response_times.values()) / len(self.response_times)

    def utilization(self, worker_id: WorkerId) -> float:
        if self.horizon <= 0:
            return 0.0
        return self.worker_busy.get(worker_id, 0.0) / self.horizon


def simulate_with_execution(
    solution: KNNSolution,
    config: MPRConfig,
    machine: MachineSpec,
    objects: Mapping[int, int],
    tasks: Sequence[Task],
    horizon: float,
    telemetry: Telemetry | None = None,
) -> InLoopResult:
    """Execute a stream on real solution instances with simulated cores.

    Every worker holds ``solution.spawn(partition)``.  Tasks route
    through the real :class:`MPRRouter`; each operation is executed and
    wall-timed, and the measured duration is fed into that worker's
    Lindley server at the task's (simulated) arrival time.  Query
    completion follows the same dataflow as the profile-driven
    simulator (scheduler writes, worker max, aggregator merges).

    With ``telemetry``, the run records the same stage histograms the
    real executors do — ``dispatch``/``queue_wait``/``merge`` carry the
    *simulated* machine costs and waits, ``execute``/``update`` the
    *measured* wall times of the real operations — so the same
    calibration helpers (:func:`repro.sim.measurement.
    machine_spec_from_telemetry`, :func:`repro.knn.calibration.
    profile_from_telemetry`) work on simulated and real runs alike.
    Span ``start`` stamps for simulated stages live on the simulated
    clock, not ``time.monotonic``.
    """
    stamping = telemetry is not None and telemetry.enabled
    router = MPRRouter(config, telemetry=telemetry)
    contents = router.preload_objects(objects)
    workers: dict[WorkerId, KNNSolution] = {
        worker_id: solution.spawn(cell) for worker_id, cell in contents.items()
    }
    servers: dict[WorkerId, FCFSServer] = {
        worker_id: FCFSServer(f"w{worker_id}") for worker_id in workers
    }
    schedulers = [FCFSServer(f"s[{layer}]") for layer in range(config.z)]
    aggregators = [FCFSServer(f"a[{layer}]") for layer in range(config.z)]
    dispatcher = FCFSServer("d")

    answers: dict[int, list[Neighbor]] = {}
    response_times: dict[int, float] = {}
    pending: list[list[tuple[float, int, int]]] = [[] for _ in range(config.z)]
    query_meta: list[tuple[int, float, float]] = []  # (id, arrival, worker max)
    seq = 0

    for task in tasks:
        t = task.arrival_time
        route = router.route(task)
        if config.z > 1:
            t = dispatcher.serve(t, machine.dispatch_time)
        if task.kind is TaskKind.QUERY:
            assert isinstance(route, QueryRoute)
            t_sched = schedulers[route.layer].serve(
                t, machine.queue_write_time * config.x
            )
            if stamping:
                telemetry.begin_trace(task.query_id, route.workers)
                telemetry.record(
                    "dispatch", t_sched - task.arrival_time,
                    start=task.arrival_time, query_id=task.query_id,
                )
            partials: list[list[Neighbor]] = []
            worker_done_max = 0.0
            query_index = len(query_meta)
            for worker_id in route.workers:
                start = time.perf_counter()
                partial = workers[worker_id].query(task.location, task.k)
                service = time.perf_counter() - start
                done = servers[worker_id].serve(t_sched, service)
                if stamping:
                    telemetry.record(
                        "queue_wait", max(done - service - t_sched, 0.0),
                        start=t_sched, query_id=task.query_id,
                        worker=worker_id,
                    )
                    telemetry.record(
                        "execute", service,
                        start=done - service, query_id=task.query_id,
                        worker=worker_id,
                    )
                partials.append(partial)
                if config.x > 1:
                    pending[route.layer].append((done, seq, query_index))
                    seq += 1
                if done > worker_done_max:
                    worker_done_max = done
            answers[task.query_id] = merge_partial_results(partials, task.k)
            query_meta.append((task.query_id, task.arrival_time, worker_done_max))
        else:
            for layer in range(config.z):
                t_sched = schedulers[layer].serve(
                    t, machine.queue_write_time * config.y
                )
                column = route.columns[layer]
                for row in range(config.y):
                    worker_id = (layer, row, column)
                    start = time.perf_counter()
                    if task.kind is TaskKind.INSERT:
                        workers[worker_id].insert(task.object_id, task.location)
                    else:
                        workers[worker_id].delete(task.object_id)
                    service = time.perf_counter() - start
                    servers[worker_id].serve(t_sched, service)
                    if stamping:
                        telemetry.record(
                            "update", service,
                            start=t_sched, worker=worker_id,
                        )

    # Aggregator post-pass (FCFS in partial-arrival order per layer).
    completion = {
        query_id: worker_done
        for query_id, _, worker_done in query_meta
    }
    if config.x > 1:
        remaining = {query_id: config.x for query_id, _, _ in query_meta}
        for layer in range(config.z):
            server = aggregators[layer]
            for arrival, _seq, query_index in sorted(pending[layer]):
                done = server.serve(arrival, machine.merge_time)
                query_id = query_meta[query_index][0]
                remaining[query_id] -= 1
                if remaining[query_id] == 0:
                    completion[query_id] = done
                    if stamping:
                        telemetry.record(
                            "merge", done - arrival,
                            start=arrival, query_id=query_id,
                        )
    elif stamping:
        for query_id, _, worker_done in query_meta:
            telemetry.record(
                "merge", 0.0, start=worker_done, query_id=query_id
            )
    for query_id, arrival, _ in query_meta:
        response_times[query_id] = completion[query_id] - arrival
        if stamping:
            telemetry.record("response", response_times[query_id])

    return InLoopResult(
        answers=answers,
        response_times=response_times,
        horizon=horizon,
        worker_busy={
            worker_id: server.busy_time
            for worker_id, server in servers.items()
        },
    )

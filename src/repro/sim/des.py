"""Queueing primitives for the multicore discrete-event simulation.

The MPR system is a feed-forward queueing network: tasks flow
d-core → s-core → w-cores → a-core with no feedback, every station a
single FCFS server, and every service time determined at submission.
Under those conditions a full event calendar is unnecessary — each
server can be simulated by the classic Lindley recurrence
(``start = max(arrival, ready_at)``), provided submissions reach each
server in non-decreasing arrival order.  The system layer guarantees
that ordering (tasks are processed chronologically and the aggregator
stage is evaluated in a sorted post-pass).

This keeps the simulator fast enough, in pure Python, to sweep the
paper's 31 configurations and binary-search maximum throughput.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


class FCFSServer:
    """A single FCFS server simulated via the Lindley recurrence.

    ``serve(arrival, service)`` returns the completion time and updates
    utilization accounting.  Submissions must be made in non-decreasing
    ``arrival`` order — enforced with an assertion because violating it
    silently corrupts FCFS semantics.
    """

    __slots__ = ("name", "ready_at", "busy_time", "served", "total_wait",
                 "_last_arrival", "max_backlog")

    def __init__(self, name: str) -> None:
        self.name = name
        self.ready_at = 0.0
        self.busy_time = 0.0
        self.served = 0
        self.total_wait = 0.0
        self.max_backlog = 0.0
        self._last_arrival = 0.0

    def serve(self, arrival: float, service: float) -> float:
        if arrival < self._last_arrival - 1e-12:
            raise AssertionError(
                f"server {self.name}: submission at {arrival} after "
                f"{self._last_arrival} violates FCFS ordering"
            )
        self._last_arrival = arrival
        start = arrival if arrival > self.ready_at else self.ready_at
        wait = start - arrival
        done = start + service
        self.ready_at = done
        self.busy_time += service
        self.served += 1
        self.total_wait += wait
        if wait > self.max_backlog:
            self.max_backlog = wait
        return done

    def utilization(self, horizon: float) -> float:
        if horizon <= 0:
            return 0.0
        return self.busy_time / horizon

    def end_backlog(self, horizon: float) -> float:
        """Seconds of unfinished work queued when the run ends."""
        return max(self.ready_at - horizon, 0.0)

    def mean_wait(self) -> float:
        return self.total_wait / self.served if self.served else 0.0


@dataclass
class ServiceSampler:
    """Samples service times with a given mean and variance.

    Gamma-distributed (the standard choice for positive service times
    with a target squared coefficient of variation); degenerates to a
    constant when the variance is zero.  Deterministic given the RNG.
    """

    mean: float
    variance: float
    rng: random.Random = field(repr=False, default_factory=random.Random)

    def __post_init__(self) -> None:
        if self.mean < 0 or self.variance < 0:
            raise ValueError("mean and variance must be non-negative")
        if self.mean > 0 and self.variance > 0:
            self._shape = self.mean * self.mean / self.variance
            self._scale = self.variance / self.mean
        else:
            self._shape = 0.0
            self._scale = 0.0

    def sample(self) -> float:
        if self._shape == 0.0:
            return self.mean
        return self.rng.gammavariate(self._shape, self._scale)

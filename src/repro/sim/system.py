"""The simulated multicore MPR system.

Wires :class:`~repro.sim.des.FCFSServer` instances into the core-matrix
topology and pushes a task stream through them, using the *same*
:class:`~repro.mpr.core_matrix.MPRRouter` logic as the real threaded
executor — the simulation and the implementation cannot diverge on
scheduling decisions.

Pipeline per query (z > 1 adds the d-core hop):

    arrival → [d-core: τ_d] → [s-core λ: x·τ_w] → x × [w-core: ~Q]
            → x × [a-core λ: τ_m]  (skipped when x = 1)

Pipeline per update: the d-core hands it to *every* layer's s-core
(y·τ_w each), which fans it to the y w-cores of one column (~U each).

Service times at w-cores are drawn from an
:class:`~repro.knn.calibration.AlgorithmProfile` via gamma sampling;
control-plane costs come from :class:`~repro.mpr.analysis.MachineSpec`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..knn.calibration import AlgorithmProfile
from ..mpr.analysis import MachineSpec
from ..mpr.config import MPRConfig
from ..mpr.core_matrix import MPRRouter, QueryRoute
from ..objects.tasks import Task, TaskKind
from .des import FCFSServer, ServiceSampler


@dataclass
class QueryOutcome:
    """Timing of one simulated query."""

    query_id: int
    arrival: float
    completion: float
    worker_service_max: float  # service on the critical (slowest) partial

    @property
    def response_time(self) -> float:
        return self.completion - self.arrival


@dataclass
class SystemStats:
    """Aggregate accounting of a simulation run."""

    horizon: float
    outcomes: list[QueryOutcome]
    worker_utilizations: dict[tuple[int, int, int], float]
    scheduler_utilizations: list[float]
    aggregator_utilizations: list[float]
    dispatcher_utilization: float
    end_backlogs: dict[str, float] = field(default_factory=dict)

    @property
    def max_utilization(self) -> float:
        candidates = [self.dispatcher_utilization]
        candidates.extend(self.worker_utilizations.values())
        candidates.extend(self.scheduler_utilizations)
        candidates.extend(self.aggregator_utilizations)
        return max(candidates, default=0.0)


class SimulatedMPRSystem:
    """Evaluates a task stream through the simulated core matrix.

    Two perturbation hooks extend the paper's homogeneous-core model:

    * ``speed_factors`` — per-worker relative speeds (0.5 = half speed),
      modelling heterogeneous cores (big.LITTLE, thermal throttling);
      unlisted workers run at speed 1.0.
    * ``straggler`` — ``(worker_id, start, end, slowdown)``: the worker
      multiplies its service times by ``slowdown`` while the simulated
      clock is inside ``[start, end)``, modelling a transient stall
      (GC pause, noisy neighbour).
    """

    def __init__(
        self,
        config: MPRConfig,
        profile: AlgorithmProfile,
        machine: MachineSpec,
        seed: int = 0,
        speed_factors: dict[tuple[int, int, int], float] | None = None,
        straggler: tuple[tuple[int, int, int], float, float, float] | None = None,
    ) -> None:
        if config.total_cores > machine.total_cores:
            raise ValueError(
                f"configuration needs {config.total_cores} cores, machine "
                f"has {machine.total_cores}"
            )
        self._config = config
        self._machine = machine
        self._router = MPRRouter(config)
        rng = random.Random(seed)
        self._query_sampler = ServiceSampler(profile.tq, profile.vq, rng)
        self._update_sampler = ServiceSampler(profile.tu, profile.vu, rng)
        self._speed_factors = dict(speed_factors or {})
        for worker_id, speed in self._speed_factors.items():
            if speed <= 0:
                raise ValueError(f"worker {worker_id} speed must be positive")
        if straggler is not None:
            worker_id, start, end, slowdown = straggler
            if slowdown <= 0:
                raise ValueError("straggler slowdown must be positive")
            if end < start:
                raise ValueError("straggler window must not be inverted")
        self._straggler = straggler

        self._dispatcher = FCFSServer("d-core")
        self._schedulers = [FCFSServer(f"s-core[{l}]") for l in range(config.z)]
        self._aggregators = [FCFSServer(f"a-core[{l}]") for l in range(config.z)]
        self._workers = {
            worker_id: FCFSServer(f"w-core{worker_id}")
            for worker_id in self._router.all_workers()
        }
        # Per-layer partial results awaiting the a-core post-pass:
        # (arrival_at_acore, seq, query_index).
        self._pending_partials: list[list[tuple[float, int, int]]] = [
            [] for _ in range(config.z)
        ]
        self._seq = 0

    @property
    def config(self) -> MPRConfig:
        return self._config

    def preload(self, objects: dict[int, int]) -> None:
        """Register pre-placed objects with the router's schedulers so
        the stream may delete/move them (placement does not affect the
        simulated timing, only routing validity)."""
        self._router.preload_objects(objects)

    def run(self, tasks: list[Task], horizon: float) -> SystemStats:
        """Push ``tasks`` (time-ordered) through the system.

        ``horizon`` is the nominal run length used for utilization
        accounting (tasks beyond it should not be in the list).
        """
        config = self._config
        machine = self._machine
        outcomes: list[QueryOutcome] = []
        # Query bookkeeping for the aggregator post-pass.
        query_meta: list[QueryOutcome] = []
        expected: list[int] = []

        for task in tasks:
            t = task.arrival_time
            route = self._router.route(task)
            if config.z > 1:
                t = self._dispatcher.serve(t, machine.dispatch_time)
            if task.kind is TaskKind.QUERY:
                assert isinstance(route, QueryRoute)
                t_sched = self._schedulers[route.layer].serve(
                    t, machine.queue_write_time * config.x
                )
                worker_done_max = 0.0
                service_max = 0.0
                query_index = len(query_meta)
                for worker_id in route.workers:
                    service = self._perturbed(
                        worker_id, self._query_sampler.sample(), t_sched
                    )
                    done = self._workers[worker_id].serve(t_sched, service)
                    if config.x > 1:
                        self._pending_partials[route.layer].append(
                            (done, self._seq, query_index)
                        )
                        self._seq += 1
                    if done > worker_done_max:
                        worker_done_max = done
                    if service > service_max:
                        service_max = service
                outcome = QueryOutcome(
                    task.query_id, task.arrival_time, worker_done_max, service_max
                )
                query_meta.append(outcome)
                expected.append(len(route.workers))
            else:
                # Updates reach every layer; each layer's s-core writes
                # y queues, then the column's workers apply the update.
                for layer in range(config.z):
                    t_sched = self._schedulers[layer].serve(
                        t, machine.queue_write_time * config.y
                    )
                    column = route.columns[layer]
                    for row in range(config.y):
                        worker_id = (layer, row, column)
                        service = self._perturbed(
                            worker_id, self._update_sampler.sample(), t_sched
                        )
                        self._workers[worker_id].serve(t_sched, service)

        # Aggregator post-pass: merge partials in FCFS (arrival) order.
        if config.x > 1:
            remaining = expected[:]
            for layer in range(config.z):
                partials = sorted(self._pending_partials[layer])
                server = self._aggregators[layer]
                for arrival, _seq, query_index in partials:
                    done = server.serve(arrival, machine.merge_time)
                    remaining[query_index] -= 1
                    if remaining[query_index] == 0:
                        # FCFS merge completions are monotone in arrival
                        # order, so the last partial's merge is the max.
                        query_meta[query_index].completion = done
                self._pending_partials[layer] = []
        outcomes = query_meta

        backlogs: dict[str, float] = {}
        for server in self._all_servers():
            backlog = server.end_backlog(horizon)
            if backlog > 0:
                backlogs[server.name] = backlog

        return SystemStats(
            horizon=horizon,
            outcomes=outcomes,
            worker_utilizations={
                worker_id: server.utilization(horizon)
                for worker_id, server in self._workers.items()
            },
            scheduler_utilizations=[
                s.utilization(horizon) for s in self._schedulers
            ],
            aggregator_utilizations=[
                a.utilization(horizon) for a in self._aggregators
            ]
            if config.x > 1
            else [],
            dispatcher_utilization=(
                self._dispatcher.utilization(horizon) if config.z > 1 else 0.0
            ),
            end_backlogs=backlogs,
        )

    def _perturbed(
        self, worker_id: tuple[int, int, int], base: float, time: float
    ) -> float:
        """Apply speed factors and the straggler window to a service."""
        service = base
        speed = self._speed_factors.get(worker_id)
        if speed is not None:
            service /= speed
        if self._straggler is not None:
            victim, start, end, slowdown = self._straggler
            if victim == worker_id and start <= time < end:
                service *= slowdown
        return service

    def _all_servers(self) -> list[FCFSServer]:
        servers: list[FCFSServer] = []
        if self._config.z > 1:
            servers.append(self._dispatcher)
        servers.extend(self._schedulers)
        if self._config.x > 1:
            servers.extend(self._aggregators)
        servers.extend(self._workers.values())
        return servers

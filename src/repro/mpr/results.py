"""The typed query-result envelope shared by library and wire protocol.

Before this module, an executor answer was one of three shapes a caller
had to ``isinstance``-sniff: a plain ``list[Neighbor]``, a degraded
:class:`~repro.knn.base.PartialResult`, or a typed falsy
:class:`~repro.mpr.resilience.Overloaded` verdict — and a drain timeout
was a fourth shape (an exception).  :class:`QueryResult` collapses all
of them into one envelope with an explicit :class:`ResultStatus`, used
identically by the in-process API (:meth:`repro.mpr.api.MPRSystem.
submit_async`, :meth:`~repro.mpr.api.MPRSystem.run_results`) and by the
``repro.serve`` wire protocol: :meth:`QueryResult.to_wire` is the
payload a server frame carries, and ``from_wire(to_wire(r)) == r``
round-trips byte-for-byte under the protocol's canonical JSON encoding.

The raw answer shapes remain constructible from the envelope via
:attr:`QueryResult.answer` — the thin compat accessor that keeps
``run()``-era callers working on plain neighbor lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping

from ..knn.base import Neighbor, PartialResult
from .resilience import Overloaded

__all__ = ["QueryResult", "ResultStatus", "envelope_answers"]


class ResultStatus(Enum):
    """Why a query finished the way it did (wire values are the enum
    values, stable by contract — see docs/API.md "Serving").

    * ``OK`` — complete top-k over every partition column.
    * ``PARTIAL`` — degraded: the top-k over the *surviving* columns
      only; ``missing_columns`` names the dead ``(layer, column)``
      cells.  Not retryable through the same replica set, but still a
      usable (lower-bound) answer.
    * ``OVERLOADED`` — shed by admission control before execution;
      retryable after ``retry_after`` seconds.
    * ``TIMEOUT`` — the query was in flight when its drain deadline
      expired (or the server shut down around it); the executor never
      produced an answer.  Queries are read-only, so retrying is safe.
    * ``ERROR`` — the executor failed irrecoverably underneath the
      query (e.g. a poison task exhausting every replica).
    """

    OK = "ok"
    PARTIAL = "partial"
    OVERLOADED = "overloaded"
    TIMEOUT = "timeout"
    ERROR = "error"


#: Statuses a client may retry verbatim (queries never mutate state).
RETRYABLE_STATUSES = (ResultStatus.OVERLOADED, ResultStatus.TIMEOUT)


@dataclass(frozen=True)
class QueryResult:
    """One query's outcome: status, neighbors, and failure context.

    ``neighbors`` is the (possibly partial, possibly empty) canonical
    top-k.  ``missing_columns`` is non-empty exactly for ``PARTIAL``;
    ``outstanding``/``bound`` carry the admission verdict for
    ``OVERLOADED``; ``retry_after`` is the backoff hint a server
    attaches to retryable statuses; ``detail`` is a human-readable
    failure note for ``TIMEOUT``/``ERROR``.
    """

    query_id: int
    status: ResultStatus
    neighbors: tuple[Neighbor, ...] = ()
    missing_columns: tuple[tuple[int, int], ...] = ()
    outstanding: int | None = None
    bound: int | None = None
    retry_after: float | None = None
    detail: str | None = field(default=None, compare=False)

    @property
    def ok(self) -> bool:
        return self.status is ResultStatus.OK

    @property
    def retryable(self) -> bool:
        """Whether resubmitting the same query verbatim is sensible."""
        return self.status in RETRYABLE_STATUSES

    @property
    def answer(self):
        """The legacy answer shape (the thin ``run()`` compat accessor).

        ``OK`` yields a plain ``list[Neighbor]``, ``PARTIAL`` a
        :class:`~repro.knn.base.PartialResult`, ``OVERLOADED`` the
        typed falsy :class:`~repro.mpr.resilience.Overloaded` verdict.
        ``TIMEOUT``/``ERROR`` have no answer shape and yield ``None``.
        """
        if self.status is ResultStatus.OK:
            return list(self.neighbors)
        if self.status is ResultStatus.PARTIAL:
            return PartialResult(self.neighbors, self.missing_columns)
        if self.status is ResultStatus.OVERLOADED:
            return Overloaded(
                self.query_id, self.outstanding or 0, self.bound or 0
            )
        return None

    def with_retry_after(self, retry_after: float | None) -> "QueryResult":
        """A copy carrying a server-side backoff hint (no-op if None)."""
        if retry_after is None:
            return self
        return QueryResult(
            self.query_id, self.status, self.neighbors,
            self.missing_columns, self.outstanding, self.bound,
            retry_after, self.detail,
        )

    # ------------------------------------------------------------------
    # Classification from the legacy shapes
    # ------------------------------------------------------------------
    @classmethod
    def from_answer(cls, query_id: int, answer: Any) -> "QueryResult":
        """Wrap one raw executor answer into the envelope.

        ``None`` (no answer produced — e.g. a drain timeout swallowed
        the query) maps to ``TIMEOUT``; the three legacy shapes map to
        their statuses.
        """
        if answer is None:
            return cls(
                query_id, ResultStatus.TIMEOUT,
                detail="no answer before the drain deadline",
            )
        if isinstance(answer, Overloaded):
            return cls(
                query_id, ResultStatus.OVERLOADED,
                outstanding=answer.outstanding, bound=answer.bound,
            )
        if isinstance(answer, PartialResult) and not answer.complete:
            return cls(
                query_id, ResultStatus.PARTIAL,
                neighbors=tuple(answer),
                missing_columns=tuple(answer.missing_columns),
            )
        return cls(query_id, ResultStatus.OK, neighbors=tuple(answer))

    @classmethod
    def timed_out(cls, query_id: int, detail: str) -> "QueryResult":
        return cls(query_id, ResultStatus.TIMEOUT, detail=detail)

    @classmethod
    def failed(cls, query_id: int, detail: str) -> "QueryResult":
        return cls(query_id, ResultStatus.ERROR, detail=detail)

    # ------------------------------------------------------------------
    # Wire form (shared verbatim with repro.serve.protocol)
    # ------------------------------------------------------------------
    def to_wire(self) -> dict[str, Any]:
        """The JSON-ready dict a protocol frame carries.

        Optional fields are omitted when absent so the canonical
        encoding stays minimal and stable; neighbors travel as
        ``[distance, object_id]`` pairs.
        """
        payload: dict[str, Any] = {
            "query_id": self.query_id,
            "status": self.status.value,
            "neighbors": [
                [neighbor.distance, neighbor.object_id]
                for neighbor in self.neighbors
            ],
        }
        if self.missing_columns:
            payload["missing_columns"] = [
                list(column) for column in self.missing_columns
            ]
        if self.outstanding is not None:
            payload["outstanding"] = self.outstanding
        if self.bound is not None:
            payload["bound"] = self.bound
        if self.retry_after is not None:
            payload["retry_after"] = self.retry_after
        if self.detail is not None:
            payload["detail"] = self.detail
        return payload

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "QueryResult":
        """Inverse of :meth:`to_wire` (raises ``KeyError``/``ValueError``
        on malformed payloads, which servers map to protocol errors)."""
        return cls(
            query_id=int(payload["query_id"]),
            status=ResultStatus(payload["status"]),
            neighbors=tuple(
                Neighbor(float(distance), int(object_id))
                for distance, object_id in payload.get("neighbors", ())
            ),
            missing_columns=tuple(
                (int(layer), int(column))
                for layer, column in payload.get("missing_columns", ())
            ),
            outstanding=payload.get("outstanding"),
            bound=payload.get("bound"),
            retry_after=payload.get("retry_after"),
            detail=payload.get("detail"),
        )


def envelope_answers(answers: Mapping[int, Any]) -> dict[int, QueryResult]:
    """Wrap a ``drain()``/``run()`` answers dict into envelopes."""
    return {
        query_id: QueryResult.from_answer(query_id, answer)
        for query_id, answer in answers.items()
    }

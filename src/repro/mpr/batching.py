"""Adaptive batch sizing from measured per-stage timings.

The pool's ``batch_size`` trades two costs the paper's Section IV-C
model already names: a *larger* batch amortizes the per-message
dispatch overhead (the τ' round-trip, magnified ~1000× by
``multiprocessing``) over more ops, while a *smaller* batch fills
faster — under a Poisson-ish arrival stream a query waits on average
``(b - 1) / (2 λ)`` seconds for its batch's remaining arrivals before
anything is even sent.  The modeled per-query response contribution is

    Rq(b) = (b - 1) / (2 λ)            batch-fill wait
          + queue_write_time           routing + enqueue per task (τ')
          + dispatch_time / b          per-message transit, amortized
          + execute_seconds            service time (b-independent)
          + fanout * merge_time        one merge per partial (x partials)

with every stage constant taken from a measured
:class:`~repro.mpr.analysis.MachineSpec` — in practice calibrated live
via :func:`repro.sim.measurement.machine_spec_from_telemetry` from the
very telemetry the executor records while serving.  Minimizing this
over a candidate grid closes the loop: measure → model → retune
(:meth:`ProcessPoolService.retune_batch_size
<repro.mpr.process_executor.ProcessPoolService.retune_batch_size>`).

:class:`BatchSizeController` adds hysteresis so a running system does
not thrash between adjacent batch sizes whose modeled costs differ by
noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .analysis import MachineSpec

__all__ = [
    "DEFAULT_BATCH_CANDIDATES",
    "BatchSizeController",
    "modeled_batch_rq",
    "recommend_batch_size",
]

#: Power-of-two grid the recommender searches; 1 = per-task dispatch.
DEFAULT_BATCH_CANDIDATES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def modeled_batch_rq(
    batch_size: int,
    arrival_rate: float,
    machine: MachineSpec,
    *,
    execute_seconds: float = 0.0,
    fanout: int = 1,
) -> float:
    """Modeled per-query response contribution at one batch size.

    ``arrival_rate`` is the per-worker task arrival rate λ (tasks per
    second).  A non-positive λ means the stream never fills a batch on
    its own, so every ``batch_size > 1`` models as ``inf`` — only
    per-task dispatch (b = 1) avoids waiting forever on arrivals that
    are not coming.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    if batch_size > 1:
        if arrival_rate <= 0:
            return math.inf
        fill_wait = (batch_size - 1) / (2.0 * arrival_rate)
    else:
        fill_wait = 0.0
    return (
        fill_wait
        + machine.queue_write_time
        + machine.dispatch_time / batch_size
        + execute_seconds
        + fanout * machine.merge_time
    )


def recommend_batch_size(
    telemetry,
    arrival_rate: float,
    *,
    total_cores: int = 19,
    candidates: tuple[int, ...] = DEFAULT_BATCH_CANDIDATES,
    fanout: int = 1,
) -> int:
    """The candidate batch size minimizing modeled Rq for a telemetry.

    Calibrates a :class:`~repro.mpr.analysis.MachineSpec` from the
    handle's recorded stage histograms
    (:func:`repro.sim.measurement.machine_spec_from_telemetry`), takes
    the mean of the ``execute`` stage as the service time (0 if never
    recorded), and evaluates :func:`modeled_batch_rq` over
    ``candidates``.  Ties break toward the smaller batch (lower
    latency variance for equal modeled mean).
    """
    if not candidates:
        raise ValueError("candidates must be non-empty")
    from ..sim.measurement import machine_spec_from_telemetry

    machine = machine_spec_from_telemetry(telemetry, total_cores=total_cores)
    histogram = telemetry.histogram("execute")
    execute = (
        histogram.mean if histogram is not None and histogram.count else 0.0
    )
    best_size, best_rq = None, math.inf
    for size in sorted(candidates):
        rq = modeled_batch_rq(
            size, arrival_rate, machine,
            execute_seconds=execute, fanout=fanout,
        )
        if rq < best_rq:
            best_size, best_rq = size, rq
    assert best_size is not None  # candidates non-empty, rq finite at b=1
    return best_size


@dataclass
class BatchSizeController:
    """Hysteretic wrapper around :func:`recommend_batch_size`.

    A recommendation replaces the current batch size only when its
    modeled Rq improves on the current size's by more than
    ``improvement_threshold`` (relative) — re-batching is cheap but a
    system retuned every drain on histogram noise would oscillate
    between adjacent powers of two.

    >>> controller = BatchSizeController(current=16)
    >>> controller.propose(telemetry, arrival_rate=500.0)  # doctest: +SKIP
    64
    """

    current: int = 16
    improvement_threshold: float = 0.1
    total_cores: int = 19
    candidates: tuple[int, ...] = DEFAULT_BATCH_CANDIDATES
    #: (arrival_rate, current, candidate, accepted) per propose() call.
    history: list[tuple[float, int, int, bool]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.current < 1:
            raise ValueError(f"current must be >= 1, got {self.current}")
        if self.improvement_threshold < 0:
            raise ValueError("improvement_threshold must be >= 0")

    def propose(
        self, telemetry, arrival_rate: float, *, fanout: int = 1
    ) -> int:
        """The batch size to use now (new recommendation or current)."""
        candidate = recommend_batch_size(
            telemetry, arrival_rate,
            total_cores=self.total_cores,
            candidates=self.candidates,
            fanout=fanout,
        )
        accepted = False
        if candidate != self.current:
            from ..sim.measurement import machine_spec_from_telemetry

            machine = machine_spec_from_telemetry(
                telemetry, total_cores=self.total_cores
            )
            histogram = telemetry.histogram("execute")
            execute = (
                histogram.mean
                if histogram is not None and histogram.count else 0.0
            )
            now = modeled_batch_rq(
                self.current, arrival_rate, machine,
                execute_seconds=execute, fanout=fanout,
            )
            new = modeled_batch_rq(
                candidate, arrival_rate, machine,
                execute_seconds=execute, fanout=fanout,
            )
            if new < now * (1.0 - self.improvement_threshold) or (
                math.isinf(now) and new < now
            ):
                self.current = candidate
                accepted = True
        self.history.append(
            (arrival_rate, self.current, candidate, accepted)
        )
        return self.current

"""The MPR framework: core matrices, analytical models, schemes, executor.

Executor construction goes through :mod:`repro.mpr.api` —
:func:`build_executor` / :class:`MPRSystem` — which is re-exported
here and is the only public construction path; query outcomes travel
as the typed :class:`QueryResult` envelope from :mod:`repro.mpr.results`.
"""

from .api import MPRSystem, build_executor
from .analysis import (
    MachineSpec,
    OptimizationResult,
    Workload,
    control_plane_overloaded,
    feasible_frontier,
    max_throughput,
    max_throughput_closed_form,
    max_update_rate,
    optimize_response_time,
    optimize_throughput,
    response_time,
    single_queue_response_time,
    worker_sojourn_time,
)
from .comparison import (
    best_scheme,
    compare_schemes_response_time,
    compare_schemes_throughput,
)
from .config import (
    MPRConfig,
    enumerate_configs,
    full_partitioning_config,
    full_replication_config,
    max_replicas,
)
from .controller import AdaptiveController, RateEstimator, Reconfiguration
from .core_matrix import (
    LayerScheduler,
    MPRRouter,
    QueryRoute,
    RouteBatcher,
    UpdateRoute,
    WorkerId,
    check_matrix_invariants,
    encode_op,
)
from .autotune import JointChoice, joint_tune
from .batching import (
    DEFAULT_BATCH_CANDIDATES,
    BatchSizeController,
    modeled_batch_rq,
    recommend_batch_size,
)
from .balancing import (
    balance_by_update_rate,
    column_loads,
    hashed_columns,
    imbalance,
    round_robin_columns,
)
from .executor import MPRExecutor, ThreadedMPRExecutor, run_serial_reference
from .process_executor import (
    ProcessPoolService,
    QuiesceTimeout,
    SpeedupReport,
    WorkerCrash,
    run_batch_speedup,
)
from .reconfig import (
    RECONFIG_COUNTERS,
    ReconfigEvent,
    ReconfigManager,
    ReconfigPolicy,
    ReconfigRejected,
)
from .results import (
    RETRYABLE_STATUSES,
    QueryResult,
    ResultStatus,
    envelope_answers,
)
from .resilience import (
    NULL_RESILIENCE,
    RESILIENCE_COUNTERS,
    AdmissionController,
    CircuitBreaker,
    Overloaded,
    PartialResult,
    ResilienceConfig,
    ResiliencePolicy,
)
from .generic_grouping import (
    GenericGrouping,
    best_rectangular,
    equal_shares,
    grouping_response_time,
    proportional_shares,
    random_grouping,
)
from .schemes import (
    DEFAULT_MAX_LAYERS,
    Objective,
    Scheme,
    SchemeChoice,
    configure_all_schemes,
    configure_scheme,
)

__all__ = [
    "MPRSystem",
    "build_executor",
    "MachineSpec",
    "OptimizationResult",
    "Workload",
    "control_plane_overloaded",
    "feasible_frontier",
    "max_throughput",
    "max_throughput_closed_form",
    "max_update_rate",
    "optimize_response_time",
    "optimize_throughput",
    "response_time",
    "single_queue_response_time",
    "worker_sojourn_time",
    "best_scheme",
    "compare_schemes_response_time",
    "compare_schemes_throughput",
    "MPRConfig",
    "enumerate_configs",
    "full_partitioning_config",
    "full_replication_config",
    "max_replicas",
    "AdaptiveController",
    "RateEstimator",
    "Reconfiguration",
    "LayerScheduler",
    "MPRRouter",
    "QueryRoute",
    "RouteBatcher",
    "UpdateRoute",
    "WorkerId",
    "check_matrix_invariants",
    "encode_op",
    "MPRExecutor",
    "ThreadedMPRExecutor",
    "run_serial_reference",
    "ProcessPoolService",
    "QuiesceTimeout",
    "SpeedupReport",
    "WorkerCrash",
    "run_batch_speedup",
    "RECONFIG_COUNTERS",
    "ReconfigEvent",
    "ReconfigManager",
    "ReconfigPolicy",
    "ReconfigRejected",
    "RETRYABLE_STATUSES",
    "QueryResult",
    "ResultStatus",
    "envelope_answers",
    "NULL_RESILIENCE",
    "RESILIENCE_COUNTERS",
    "AdmissionController",
    "CircuitBreaker",
    "Overloaded",
    "PartialResult",
    "ResilienceConfig",
    "ResiliencePolicy",
    "JointChoice",
    "joint_tune",
    "DEFAULT_BATCH_CANDIDATES",
    "BatchSizeController",
    "modeled_batch_rq",
    "recommend_batch_size",
    "balance_by_update_rate",
    "column_loads",
    "hashed_columns",
    "imbalance",
    "round_robin_columns",
    "GenericGrouping",
    "best_rectangular",
    "equal_shares",
    "grouping_response_time",
    "proportional_shares",
    "random_grouping",
    "DEFAULT_MAX_LAYERS",
    "Objective",
    "Scheme",
    "SchemeChoice",
    "configure_all_schemes",
    "configure_scheme",
]

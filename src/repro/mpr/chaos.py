"""Fault-injection chaos harness for the process pool.

Each scenario runs a real workload through a
:class:`~repro.mpr.process_executor.ProcessPoolService` with the
resilience layer enabled, injects one failure mode mid-batch, and then
checks the *invariants* the resilience design promises rather than any
particular timing:

* **no hang** — ``drain`` returns within a generous wall bound, whatever
  was killed, stopped, or wedged;
* **no wrong answer** — every answer returned as a plain list equals the
  serial oracle bit-for-bit; degraded answers are structurally valid
  :class:`~repro.knn.base.PartialResult` objects naming real columns;
* **traces account for every answered column** — with telemetry on, a
  plain answer's trace carries an ``execute`` span for each partition
  column (hedges swap the row, never drop the column);
* **deadline misses stay bounded** — the per-scenario miss-rate ceiling
  holds.

Scenarios (``SCENARIOS``): ``none`` (fault-free control), ``kill-worker``
(SIGKILL one worker mid-batch), ``kill-column`` (SIGKILL every replica
of one partition column mid-batch — the acceptance scenario),
``crash-loop`` (re-kill one column's respawns until its breakers open,
then stop and let the half-open trials recover it), ``stall`` (SIGSTOP a
worker so only the watchdog can notice), ``slow`` (every query sleeps
past the SLO), ``poison`` (a query that raises inside every replica),
``dropped-ack`` (a worker that exits *before* acknowledging, forcing
replay into a crash loop), ``reconfig-kill-new-worker`` (SIGKILL a
warming worker mid-transition: the transition must roll back and the
untouched old shape stay oracle-exact), and ``reconfig-under-load`` (a
live ``(x, y, z)`` transition while the stream is in flight: zero
hangs, every answer exact under whichever shape routed it).

The solution wrappers (:class:`SlowKNN`, :class:`PoisonKNN`,
:class:`ExitingKNN`) live at module level so worker pickles resolve them
under any start method.  Use ``tools/chaos_run.py`` or ``repro-cli
chaos`` to run scenarios from a shell.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..graph.generators import grid_network
from ..knn.base import KNNSolution, Neighbor
from ..knn.dijkstra_knn import DijkstraKNN
from ..objects.tasks import InsertTask, QueryTask, Task
from ..obs import Telemetry
from .api import build_executor
from .config import MPRConfig
from .executor import run_serial_reference
from .process_executor import ProcessPoolService
from .resilience import ResilienceConfig
from .results import ResultStatus, envelope_answers

__all__ = [
    "ChaosReport",
    "ExitingKNN",
    "PoisonKNN",
    "SCENARIOS",
    "SlowKNN",
    "run_scenario",
]

#: Node a poison/exit query targets (any fixed in-range node works; the
#: wrappers key off the *location*, which routing never inspects).
POISON_LOCATION = 1


class _WrappedKNN(KNNSolution):
    """Base for chaos wrappers: delegate everything, spawn wrapped."""

    def __init__(self, inner: KNNSolution) -> None:
        self._inner = inner

    def query(self, location: int, k: int) -> list[Neighbor]:
        return self._inner.query(location, k)

    def insert(self, object_id: int, location: int) -> None:
        self._inner.insert(object_id, location)

    def delete(self, object_id: int) -> None:
        self._inner.delete(object_id)

    def object_locations(self) -> dict[int, int]:
        return self._inner.object_locations()

    def spawn(self, objects: Mapping[int, int]) -> "KNNSolution":
        clone = type(self).__new__(type(self))
        clone.__dict__.update(self.__dict__)
        clone._inner = self._inner.spawn(objects)
        return clone


class SlowKNN(_WrappedKNN):
    """Every query sleeps ``delay`` seconds first (an overloaded cell)."""

    name = "slow"

    def __init__(self, inner: KNNSolution, delay: float) -> None:
        super().__init__(inner)
        self._delay = delay

    def query(self, location: int, k: int) -> list[Neighbor]:
        time.sleep(self._delay)
        return self._inner.query(location, k)


class PoisonKNN(_WrappedKNN):
    """Raises on the poison location — inside *every* replica alike."""

    name = "poison"

    def query(self, location: int, k: int) -> list[Neighbor]:
        if location == POISON_LOCATION:
            raise ValueError("poison query")
        return self._inner.query(location, k)


class ExitingKNN(_WrappedKNN):
    """Exits the worker process *before* the ack can be sent.

    ``os._exit`` skips every finally/atexit hook, so the batch is never
    acknowledged and never errored — the parent sees only EOF, replays,
    and hits the same exit: the dropped-ack crash loop.
    """

    name = "exiting"

    def query(self, location: int, k: int) -> list[Neighbor]:
        if location == POISON_LOCATION:
            os._exit(0)
        return self._inner.query(location, k)


@dataclass
class ChaosReport:
    """Outcome of one scenario run (JSON-ready via :meth:`to_dict`)."""

    scenario: str
    queries: int
    plain: int
    degraded: int
    shed: int
    drain_seconds: float
    miss_rate: float
    metrics: dict[str, Any]
    counters: dict[str, int]
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "queries": self.queries,
            "plain": self.plain,
            "degraded": self.degraded,
            "shed": self.shed,
            "drain_seconds": self.drain_seconds,
            "miss_rate": self.miss_rate,
            "violations": list(self.violations),
            "metrics": self.metrics,
            "counters": self.counters,
        }


@dataclass(frozen=True)
class _Scenario:
    """One failure mode: how to wrap the solution and when to strike."""

    description: str
    #: Called after half the stream is submitted; returns a cleanup
    #: callable (or None) invoked after the drain.
    inject: Callable[[ProcessPoolService], Callable[[], None] | None]
    #: Wraps the base solution before the pool is built.
    wrap: Callable[[KNNSolution], KNNSolution] = lambda solution: solution
    #: Acceptable deadline-miss *events* per query for this failure
    #: mode.  A query whose deadline is re-armed after a hedge can miss
    #: more than once, so saturation scenarios may legitimately exceed
    #: 1.0.
    max_miss_rate: float = 1.0
    #: Include update tasks (off for scenarios that quarantine batches:
    #: a quarantined update is dropped by design, which would fork the
    #: replica away from the oracle).
    with_updates: bool = True
    #: Inject a poison-location query into the stream.
    with_poison_query: bool = False
    #: Extra shapes whose column sets are also acceptable trace
    #: coverage — reconfiguration scenarios answer queries under both
    #: the old arrangement and the target one.
    alt_configs: tuple[MPRConfig, ...] = ()
    #: Post-drain invariant check on the pool itself (e.g. the
    #: reconfiguration outcome); returns violation strings.
    verify: Callable[[ProcessPoolService], list[str]] | None = None


def _no_fault(pool: ProcessPoolService) -> None:
    return None


def _kill_worker(pool: ProcessPoolService) -> None:
    """SIGKILL one worker mid-batch; replay must restore it."""
    pids = pool.worker_pids()
    victim = sorted(pids)[0]
    os.kill(pids[victim], signal.SIGKILL)
    return None


def _kill_column(pool: ProcessPoolService) -> None:
    """SIGKILL every replica row of partition column 0 mid-batch."""
    for worker_id, pid in pool.worker_pids().items():
        if worker_id[2] == 0:
            os.kill(pid, signal.SIGKILL)
    return None


def _crash_loop(pool: ProcessPoolService) -> Callable[[], None]:
    """Keep re-killing column 0 until its breakers open, then relent."""
    stop = threading.Event()

    def killer() -> None:
        deadline = time.monotonic() + 10.0
        while not stop.is_set() and time.monotonic() < deadline:
            if pool.metrics.breaker_opens >= pool.config.y:
                break
            for worker_id, pid in pool.worker_pids().items():
                if worker_id[2] == 0:
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except ProcessLookupError:
                        pass
            time.sleep(0.01)

    thread = threading.Thread(target=killer, daemon=True)
    thread.start()

    def cleanup() -> None:
        stop.set()
        thread.join(timeout=5.0)

    return cleanup


def _stall(pool: ProcessPoolService) -> Callable[[], None]:
    """SIGSTOP one worker: alive to the OS, silent to the pool."""
    pids = pool.worker_pids()
    victim = sorted(pids)[0]
    pid = pids[victim]
    os.kill(pid, signal.SIGSTOP)

    def cleanup() -> None:
        try:  # the watchdog normally SIGKILLs it first
            os.kill(pid, signal.SIGCONT)
        except ProcessLookupError:
            pass

    return cleanup


#: Target shapes for the reconfiguration scenarios (from the default
#: ``MPRConfig(2, 2, 1)``): the rollback one shrinks the partition
#: count, the live one grows it, so both exercise real repartitioning.
RECONFIG_ROLLBACK_TARGET = MPRConfig(1, 2, 1)
RECONFIG_LIVE_TARGET = MPRConfig(3, 1, 1)


def _reconfig_kill_new_worker(pool: ProcessPoolService) -> None:
    """Begin a transition, then SIGKILL a warming worker.

    The kill lands strictly before the cutover — cutover only ever
    happens inside the supervision step driven by later submits/drains,
    never inside ``begin_reconfigure`` — so the transition must roll
    back and the untouched old shape must stay oracle-exact.
    """
    pool.begin_reconfigure(
        RECONFIG_ROLLBACK_TARGET, trigger="chaos", warm_timeout=5.0
    )
    pids = pool.transition_pids()
    victim = sorted(pids)[0]
    os.kill(pids[victim], signal.SIGKILL)
    return None


def _reconfig_under_load(pool: ProcessPoolService) -> None:
    """Begin a transition mid-stream and let the load drive it home."""
    pool.begin_reconfigure(
        RECONFIG_LIVE_TARGET, trigger="chaos", warm_timeout=10.0
    )
    return None


def _verify_rolled_back(pool: ProcessPoolService) -> list[str]:
    violations: list[str] = []
    outcomes = [event.outcome for event in pool.reconfig_history]
    if outcomes != ["rolled_back"]:
        violations.append(
            f"expected exactly one rolled_back transition, got {outcomes}"
        )
    if pool.generation != 0:
        violations.append(
            f"generation advanced to {pool.generation} despite rollback"
        )
    if pool.config != MPRConfig(2, 2, 1):
        violations.append(f"rollback left config {pool.config}")
    return violations


def _verify_completed(pool: ProcessPoolService) -> list[str]:
    violations: list[str] = []
    outcomes = [event.outcome for event in pool.reconfig_history]
    if outcomes != ["completed"]:
        violations.append(
            f"expected exactly one completed transition, got {outcomes}"
        )
    if pool.generation != 1:
        violations.append(f"generation is {pool.generation}, expected 1")
    if pool.config != RECONFIG_LIVE_TARGET:
        violations.append(f"cutover left config {pool.config}")
    return violations


SCENARIOS: dict[str, _Scenario] = {
    "none": _Scenario(
        "fault-free control: resilience on, nothing injected",
        _no_fault,
        max_miss_rate=0.5,
    ),
    "kill-worker": _Scenario(
        "SIGKILL one worker mid-batch (respawn + replay)",
        _kill_worker,
    ),
    "kill-column": _Scenario(
        "SIGKILL one full partition column mid-batch",
        _kill_column,
    ),
    "crash-loop": _Scenario(
        "re-kill column 0 until its circuit breakers open",
        _crash_loop,
        with_updates=False,
    ),
    "stall": _Scenario(
        "SIGSTOP one worker (only the stall watchdog can tell)",
        _stall,
    ),
    "slow": _Scenario(
        "every query sleeps past the SLO (hedges race, first wins)",
        _no_fault,
        wrap=lambda solution: SlowKNN(solution, delay=0.05),
        # Every replica is slow, so each hedge re-arm can miss again;
        # bound the events, not the (always-missing) query fraction.
        max_miss_rate=3.0,
    ),
    "poison": _Scenario(
        "one query raises inside every replica that tries it",
        _no_fault,
        wrap=PoisonKNN,
        with_updates=False,
        with_poison_query=True,
    ),
    "dropped-ack": _Scenario(
        "a worker exits before acking (EOF, replay, crash loop)",
        _no_fault,
        wrap=ExitingKNN,
        with_updates=False,
        with_poison_query=True,
    ),
    "reconfig-kill-new-worker": _Scenario(
        "SIGKILL a warming worker mid-transition (rollback, old shape "
        "keeps serving)",
        _reconfig_kill_new_worker,
        verify=_verify_rolled_back,
    ),
    "reconfig-under-load": _Scenario(
        "live (x,y,z) transition while the stream is in flight",
        _reconfig_under_load,
        alt_configs=(RECONFIG_LIVE_TARGET,),
        verify=_verify_completed,
    ),
}


def _build_stream(
    num_queries: int,
    num_nodes: int,
    *,
    with_updates: bool,
    with_poison_query: bool,
    deadline: float | None = None,
) -> list[Task]:
    """A deterministic stream: an insert prefix, then all the queries.

    Updates come *first* so the object set is frozen during the query
    phase: a hedge re-executes its query on a sibling row later than
    the original attempt, and only a frozen state makes "plain answers
    equal the serial oracle bit-for-bit" a sound invariant (hedged
    reads are documented to see the replica's current state).  Replay
    correctness for updates is still exercised — killed workers must
    restore the insert prefix before their query answers can match.
    """
    tasks: list[Task] = []
    clock = 0.0
    if with_updates:
        for position in range(num_queries // 4):
            tasks.append(
                InsertTask(
                    clock, 10_000 + position, (position * 13) % num_nodes
                )
            )
            clock += 0.001
    for position in range(num_queries):
        location = (position * 37 + 5) % num_nodes
        if location == POISON_LOCATION:
            location = (location + 1) % num_nodes
        if with_poison_query and position == num_queries // 2:
            location = POISON_LOCATION
        tasks.append(
            QueryTask(clock, position, location, 5, deadline=deadline)
        )
        clock += 0.001
    return tasks


def run_scenario(
    name: str,
    *,
    config: MPRConfig | None = None,
    num_queries: int = 24,
    batch_size: int = 4,
    deadline: float = 0.25,
    drain_timeout: float = 60.0,
    telemetry: Telemetry | None = None,
) -> ChaosReport:
    """Run one chaos scenario and verify the resilience invariants.

    Builds a grid-network fixture, computes the serial oracle, submits
    the stream (injecting the scenario's fault after the first half),
    drains with a hard wall bound, and returns a :class:`ChaosReport`
    whose ``violations`` list is empty exactly when every invariant
    held.  Raises ``KeyError`` for an unknown scenario name.
    """
    scenario = SCENARIOS[name]
    if config is None:
        config = MPRConfig(2, 2, 1)
    network = grid_network(10, 10)
    base = DijkstraKNN(network)
    solution = scenario.wrap(base)
    objects = {i: (i * 7 + 3) % network.num_nodes for i in range(50)}
    tasks = _build_stream(
        num_queries, network.num_nodes,
        with_updates=scenario.with_updates,
        with_poison_query=scenario.with_poison_query,
        deadline=deadline,
    )
    # The oracle runs the *unwrapped* solution: fault wrappers raise or
    # exit by design, and the poison query's truth is never compared
    # (every replica refuses it, so its answer degrades).
    oracle = run_serial_reference(base, objects, tasks)
    if telemetry is None:
        telemetry = Telemetry()
    resilience = ResilienceConfig(
        default_deadline=deadline,
        breaker_failures=2,
        backoff_base=0.2,
        backoff_factor=2.0,
        stall_timeout=0.5,
    )
    violations: list[str] = []
    answers: dict[int, list[Neighbor]] = {}
    drain_seconds = float("nan")
    cleanup: Callable[[], None] | None = None
    with build_executor(
        config, solution, objects,
        mode="process", batch_size=batch_size,
        telemetry=telemetry, resilience=resilience,
    ) as pool:
        half = len(tasks) // 2
        for task in tasks[:half]:
            pool.submit(task)
        cleanup = scenario.inject(pool)
        try:
            for task in tasks[half:]:
                pool.submit(task)
            started = time.monotonic()
            try:
                answers = pool.drain(timeout=drain_timeout)
            except TimeoutError as exc:
                violations.append(f"hang: {exc}")
            drain_seconds = time.monotonic() - started
        finally:
            if cleanup is not None:
                cleanup()
        if scenario.verify is not None:
            violations.extend(scenario.verify(pool))
        metrics = dict(pool.metrics.to_dict())
    counters = telemetry.counters
    report = ChaosReport(
        scenario=name,
        queries=sum(1 for task in tasks if isinstance(task, QueryTask)),
        plain=0,
        degraded=0,
        shed=0,
        drain_seconds=drain_seconds,
        miss_rate=0.0,
        metrics=metrics,
        counters=counters,
        violations=violations,
    )
    _check_answers(
        report, answers, oracle, config, telemetry,
        alt_configs=scenario.alt_configs,
    )
    if report.queries:
        report.miss_rate = (
            metrics.get("deadline_misses", 0) / report.queries
        )
    if report.miss_rate > scenario.max_miss_rate:
        violations.append(
            f"miss rate {report.miss_rate:.2f} exceeds the "
            f"{scenario.max_miss_rate:.2f} bound"
        )
    if not violations and len(answers) != report.queries:
        violations.append(
            f"{len(answers)} answers for {report.queries} queries"
        )
    return report


def _check_answers(
    report: ChaosReport,
    answers: Mapping[int, Sequence[Neighbor]],
    oracle: Mapping[int, Sequence[Neighbor]],
    config: MPRConfig,
    telemetry: Telemetry,
    *,
    alt_configs: Sequence[MPRConfig] = (),
) -> None:
    """Classify every answer via the envelope; append violations.

    ``alt_configs`` lists additional shapes whose full column sets are
    acceptable execute-span coverage: a reconfiguration scenario's
    queries are answered entirely under whichever shape routed them, so
    each trace must cover exactly one shape's columns — never a mix.
    """
    column_sets = [
        {
            (layer, column)
            for layer in range(shape.z)
            for column in range(shape.x)
        }
        for shape in (config, *alt_configs)
    ]
    valid_columns = set().union(*column_sets)
    for query_id, result in sorted(envelope_answers(answers).items()):
        if result.status is ResultStatus.OVERLOADED:
            report.shed += 1
            continue
        if result.status is ResultStatus.PARTIAL:
            report.degraded += 1
            if not set(result.missing_columns) <= valid_columns:
                report.violations.append(
                    f"query {query_id}: degraded answer names unknown "
                    f"columns {result.missing_columns}"
                )
            if sorted(result.neighbors) != list(result.neighbors):
                report.violations.append(
                    f"query {query_id}: degraded answer is not canonical"
                )
            truth = {n.object_id: n.distance for n in oracle[query_id]}
            for neighbor in result.neighbors:
                known = truth.get(neighbor.object_id)
                if known is not None and known != neighbor.distance:
                    report.violations.append(
                        f"query {query_id}: degraded answer has a wrong "
                        f"distance for object {neighbor.object_id}"
                    )
            continue
        report.plain += 1
        if list(result.neighbors) != list(oracle[query_id]):
            report.violations.append(
                f"query {query_id}: wrong answer "
                f"{list(result.neighbors)!r} != {list(oracle[query_id])!r}"
            )
        trace = telemetry.trace(query_id)
        if trace is None or not trace.spans:
            report.violations.append(f"query {query_id}: no trace")
            continue
        covered = {
            (span.worker[0], span.worker[2])
            for span in trace.stage_spans("execute")
            if span.worker is not None
        }
        if covered not in column_sets:
            report.violations.append(
                f"query {query_id}: execute spans cover {sorted(covered)}, "
                "expected every column of one shape among "
                f"{[sorted(columns) for columns in column_sets]}"
            )

"""Live pool reconfiguration: the control plane for shape changes.

This module holds the *decision* layer of online reconfiguration — the
mechanism (spawning, warming, cutover, rollback) lives inside
:class:`repro.mpr.process_executor.ProcessPoolService`, which this
module deliberately does not import: the executor imports
:class:`ReconfigEvent` / :class:`ReconfigRejected` from here, and the
manager drives any system object exposing ``telemetry`` / ``config`` /
``reconfigure()`` duck-typed.

The transition state machine (implemented by the executor, audited via
the :class:`ReconfigEvent` records and ``reconfig.*`` counters):

``WARMING``
    New workers for the target ``(x, y, z)`` spawn and attach to the
    already-published shared-memory/memmap graph (and cached CH), each
    receiving an exact object-cell snapshot plus an empty *probe* batch.
    The old shape keeps serving; updates are dual-fed to the warming
    cells.  Bounded by ``warm_timeout``.
``CUTOVER``
    Once every warming worker has acked its probe, the router/batcher
    pair is swapped under a generation counter in one supervisor step —
    no query is ever routed to a retiring cell.
``RETIRING``
    Old workers finish their in-flight batches, then receive ``stop``;
    stragglers are killed after ``retire_timeout``.  Queries already in
    flight on the old generation still complete (their answers remain
    valid — the old shape was consistent when they were routed).
``ROLLBACK``
    Any fault while WARMING — a warming worker crash, a probe/handoff
    failure, or the warm deadline expiring — discards the half-built
    shape and keeps the old one, which never stopped serving.  Repeated
    rollbacks trip a reconfiguration circuit breaker; further attempts
    raise :class:`ReconfigRejected` until the breaker's backoff expires.
"""

from __future__ import annotations

import threading
import time as _time
from dataclasses import dataclass, field
from typing import Any

from ..knn.calibration import AlgorithmProfile
from .analysis import MachineSpec
from .config import MPRConfig
from .controller import AdaptiveController, RateEstimator
from .schemes import DEFAULT_MAX_LAYERS, Objective

#: Counters the executor's transition machinery may bump; mirrored in
#: docs/API.md ("Live reconfiguration") and asserted by tests.
RECONFIG_COUNTERS = (
    "reconfig.attempts",
    "reconfig.completed",
    "reconfig.rollbacks",
    "reconfig.rejected",
    "reconfig.breaker_open",
    "reconfig.catchup_ops",
)


class ReconfigRejected(RuntimeError):
    """A reconfiguration attempt was refused before any work started.

    Raised when a transition is already in flight, the previous shape is
    still retiring, the target equals the current shape, or the
    reconfiguration circuit breaker is open after repeated rollbacks.
    The pool's serving state is untouched.
    """


@dataclass
class ReconfigEvent:
    """One audited reconfiguration attempt (pending → terminal outcome).

    Appended to ``ProcessPoolService.reconfig_history`` at begin time
    and mutated in place as the transition progresses; ``outcome`` is
    one of ``"pending"``, ``"completed"``, ``"rolled_back"``, or
    ``"rejected"``.
    """

    started_at: float
    old_config: MPRConfig
    new_config: MPRConfig
    trigger: str = "manual"
    outcome: str = "pending"
    reason: str | None = None
    finished_at: float | None = None
    generation: int | None = None
    inflight_at_cutover: int | None = None
    catchup_ops: int = 0
    phases: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form for ``stats()`` / CLI / report surfaces."""
        return {
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "old_config": [
                self.old_config.x, self.old_config.y, self.old_config.z
            ],
            "new_config": [
                self.new_config.x, self.new_config.y, self.new_config.z
            ],
            "trigger": self.trigger,
            "outcome": self.outcome,
            "reason": self.reason,
            "generation": self.generation,
            "inflight_at_cutover": self.inflight_at_cutover,
            "catchup_ops": self.catchup_ops,
            "phases": dict(self.phases),
        }


@dataclass(frozen=True)
class ReconfigPolicy:
    """Knobs for the automatic control loop.

    ``improvement_threshold`` and ``cooldown`` are the hysteresis pair
    (forwarded to :class:`AdaptiveController`); ``recalibrate`` re-fits
    the algorithm profile and machine spec from live telemetry before
    each decision once enough samples exist; ``pressure_counters`` name
    resilience counters whose growth tags the decision's trigger so the
    history records *why* the pool changed shape.
    """

    objective: Objective = Objective.RESPONSE_TIME
    rq_bound: float = 0.1
    improvement_threshold: float = 0.15
    cooldown: float = 5.0
    recalibrate: bool = True
    warm_timeout: float = 10.0
    retire_timeout: float = 10.0
    pressure_counters: tuple[str, ...] = (
        "resilience.shed",
        "resilience.deadline_misses",
    )
    max_layers: int = DEFAULT_MAX_LAYERS


class ReconfigManager:
    """Watches live telemetry and drives ``system.reconfigure()``.

    ``system`` is duck-typed: anything with a ``telemetry`` attribute
    (``repro.obs.Telemetry``), a ``config`` property returning the
    shape currently serving, and a
    ``reconfigure(new_config, *, trigger=...)`` method.  Arrival rates
    are derived from the router's cumulative ``router.queries`` /
    ``router.updates`` counters by delta, so the manager needs no hook
    on the submit path.

    Call :meth:`poll` from your own loop (tests and the soak harness
    pass a synthetic ``now``), or :meth:`start` a daemon thread.
    """

    def __init__(
        self,
        system: Any,
        profile: AlgorithmProfile,
        machine: MachineSpec,
        *,
        policy: ReconfigPolicy | None = None,
        estimator: RateEstimator | None = None,
    ) -> None:
        self.system = system
        self.policy = policy = policy or ReconfigPolicy()
        self.controller = AdaptiveController(
            profile=profile,
            machine=machine,
            objective=policy.objective,
            rq_bound=policy.rq_bound,
            improvement_threshold=policy.improvement_threshold,
            cooldown=policy.cooldown,
            max_layers=policy.max_layers,
            estimator=estimator or RateEstimator(),
        )
        self._origin: float | None = None
        self._seen = {"router.queries": 0, "router.updates": 0}
        self._pressure_seen = dict.fromkeys(policy.pressure_counters, 0)
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # One control step
    # ------------------------------------------------------------------
    def poll(self, now: float | None = None) -> ReconfigEvent | None:
        """Observe, decide, and (maybe) reconfigure.  Returns the event
        applied (completed or rolled back), or ``None`` when the shape
        was kept."""
        if now is None:
            if self._origin is None:
                self._origin = _time.monotonic()
            now = _time.monotonic() - self._origin
        counters = self.system.telemetry.counters
        queries = counters.get("router.queries", 0)
        updates = counters.get("router.updates", 0)
        self.controller.estimator.observe_counts(
            now,
            queries=queries - self._seen["router.queries"],
            updates=updates - self._seen["router.updates"],
        )
        self._seen["router.queries"] = queries
        self._seen["router.updates"] = updates

        pressure = False
        for name in self.policy.pressure_counters:
            value = counters.get(name, 0)
            if value > self._pressure_seen[name]:
                pressure = True
            self._pressure_seen[name] = value

        if self.policy.recalibrate:
            self._recalibrate()

        self.controller.sync_config(self.system.config)
        decision = self.controller.maybe_reconfigure(now)
        if decision is None:
            return None
        trigger = "auto+pressure" if pressure else "auto"
        try:
            return self.system.reconfigure(
                decision.new_config,
                trigger=trigger,
                warm_timeout=self.policy.warm_timeout,
                retire_timeout=self.policy.retire_timeout,
            )
        except ReconfigRejected:
            return None

    def _recalibrate(self) -> None:
        from ..knn.calibration import profile_from_telemetry
        from ..sim.measurement import machine_spec_from_telemetry

        telemetry = self.system.telemetry
        try:
            self.controller.profile = profile_from_telemetry(
                telemetry, name=self.controller.profile.name
            )
        except ValueError:
            pass  # no execute samples yet; keep the prior profile
        self.controller.machine = machine_spec_from_telemetry(
            telemetry, total_cores=self.controller.machine.total_cores
        )

    # ------------------------------------------------------------------
    # Background loop
    # ------------------------------------------------------------------
    def start(self, interval: float = 0.5) -> None:
        """Poll every ``interval`` seconds from a daemon thread."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval):
                try:
                    self.poll()
                except Exception:  # noqa: BLE001 - control loop survives
                    pass

        self._thread = threading.Thread(
            target=loop, name="reconfig-manager", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    @property
    def history(self) -> list:
        """The controller's decision history (proposed switches)."""
        return self.controller.history

"""One-call scheme comparisons — the paper's evaluation as an API.

Benches and operators keep asking the same question: *for this
workload, on this machine, with this solution, how do the four schemes
compare?*  These helpers answer it in one call, returning
machine-readable :class:`~repro.harness.records.ExperimentRecord`
lists that pair each scheme's self-configured arrangement with its
simulated measurement.
"""

from __future__ import annotations

import math

from ..harness.records import ExperimentRecord
from ..knn.calibration import AlgorithmProfile
from ..sim.measurement import find_max_throughput, measure_response_time
from .analysis import MachineSpec, Workload
from .schemes import Objective, Scheme, configure_all_schemes


def compare_schemes_response_time(
    workload: Workload,
    profile: AlgorithmProfile,
    machine: MachineSpec,
    scenario: str = "custom",
    experiment: str = "comparison",
    duration: float = 1.0,
    seed: int = 0,
    taxi_hailing: bool = False,
) -> list[ExperimentRecord]:
    """Simulated mean response time of all four schemes.

    Overloaded schemes record ``value = inf`` (serialized as
    ``"overload"``).
    """
    choices = configure_all_schemes(workload, profile, machine)
    records = []
    for scheme, choice in choices.items():
        measurement = measure_response_time(
            choice.config, profile, machine,
            workload.lambda_q, workload.lambda_u,
            duration=duration, seed=seed, taxi_hailing=taxi_hailing,
            initial_objects=2000 if taxi_hailing else 0,
        )
        value = (
            math.inf if measurement.overloaded
            else measurement.mean_response_time
        )
        records.append(
            ExperimentRecord(
                experiment=experiment,
                scenario=scenario,
                scheme=scheme.value,
                solution=profile.name,
                config=choice.config,
                lambda_q=workload.lambda_q,
                lambda_u=workload.lambda_u,
                total_cores=machine.total_cores,
                metric="response_time_s",
                value=value,
                profile=profile,
            )
        )
    return records


def compare_schemes_throughput(
    lambda_u: float,
    profile: AlgorithmProfile,
    machine: MachineSpec,
    rq_bound: float = 0.1,
    scenario: str = "custom",
    experiment: str = "comparison",
    duration: float = 0.3,
    seed: int = 0,
) -> list[ExperimentRecord]:
    """Simulated maximum throughput of all four schemes."""
    choices = configure_all_schemes(
        Workload(0.0, lambda_u), profile, machine,
        objective=Objective.THROUGHPUT, rq_bound=rq_bound,
    )
    records = []
    for scheme, choice in choices.items():
        throughput = find_max_throughput(
            choice.config, profile, machine, lambda_u,
            rq_bound=rq_bound, duration=duration, seed=seed,
            initial_lambda_q=100.0,
        )
        records.append(
            ExperimentRecord(
                experiment=experiment,
                scenario=scenario,
                scheme=scheme.value,
                solution=profile.name,
                config=choice.config,
                lambda_q=0.0,
                lambda_u=lambda_u,
                total_cores=machine.total_cores,
                metric="throughput_qps",
                value=throughput,
                profile=profile,
            )
        )
    return records


def best_scheme(records: list[ExperimentRecord]) -> ExperimentRecord:
    """The winning record of a comparison (metric-aware ordering)."""
    if not records:
        raise ValueError("no records to compare")
    metrics = {record.metric for record in records}
    if len(metrics) != 1:
        raise ValueError(f"mixed metrics in comparison: {sorted(metrics)}")
    metric = metrics.pop()
    if metric == "throughput_qps":
        return max(records, key=lambda r: r.value)
    return min(records, key=lambda r: r.value)


def _scheme_order(record: ExperimentRecord) -> int:
    order = [s.value for s in Scheme]
    try:
        return order.index(record.scheme)
    except ValueError:  # pragma: no cover - foreign records
        return len(order)

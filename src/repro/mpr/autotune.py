"""Joint TOAIN × MPR tuning — the paper's "hand-in-hand" remark.

Section II: "TOAIN's configuring of the SCOB index and MPR's
scheduling of the CPU cores (to execute TOAIN's queries and updates
processes) can work hand-in-hand to achieve the best system
performance."

TOAIN alone picks the SCOB family member (our core fraction ρ) that
best trades query time against update time for a workload; MPR alone
picks the core arrangement for a *fixed* solution profile.  Neither is
optimal in isolation: a more update-friendly index shifts the best
core matrix towards replication, and vice versa.  This module closes
the loop — it profiles every family member, solves the MPR
optimization for each, and returns the jointly best pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..graph.road_network import RoadNetwork
from ..knn.calibration import AlgorithmProfile, measure_profile
from ..knn.toain import DEFAULT_FAMILY, ContractionHierarchy, ToainIndex, ToainKNN
from .analysis import (
    MachineSpec,
    Workload,
    optimize_response_time,
    optimize_throughput,
)
from .config import MPRConfig
from .schemes import Objective


@dataclass(frozen=True)
class JointChoice:
    """Outcome of the joint optimization."""

    core_fraction: float
    config: MPRConfig
    profile: AlgorithmProfile
    objective: Objective
    predicted_value: float
    #: Per-family-member diagnostics: rho -> (profile, config, value).
    family_results: Mapping[float, tuple[AlgorithmProfile, MPRConfig, float]]


def joint_tune(
    network: RoadNetwork,
    objects: Mapping[int, int],
    workload: Workload,
    machine: MachineSpec,
    objective: Objective = Objective.RESPONSE_TIME,
    rq_bound: float = 0.1,
    family: Sequence[float] = DEFAULT_FAMILY,
    k: int = 10,
    samples: int = 20,
    ch: ContractionHierarchy | None = None,
    max_layers: int = 5,
) -> JointChoice:
    """Jointly pick TOAIN's SCOB member and MPR's core arrangement.

    For each core fraction in ``family``: build the index variant over
    the shared contraction hierarchy, measure its ``(tq, Vq, tu, Vu)``
    empirically (the paper's calibration step), run the MPR optimizer
    on the measured profile, and keep the pair with the best predicted
    macro measure.

    This is an *empirical* procedure — expect it to take a few seconds
    per family member at replica scales (one CH build is shared).
    """
    if not family:
        raise ValueError("family must not be empty")
    shared_ch = ch or ContractionHierarchy(network)
    family_results: dict[float, tuple[AlgorithmProfile, MPRConfig, float]] = {}

    best_rho = family[0]
    best_value: float | None = None
    best_config: MPRConfig | None = None
    best_profile: AlgorithmProfile | None = None

    for rho in family:
        index = ToainIndex(network, core_fraction=rho, ch=shared_ch)
        solution = ToainKNN(network, dict(objects), index=index)
        profile = measure_profile(
            solution, k=k, num_queries=samples, num_updates=samples,
            num_nodes=network.num_nodes,
        )
        if objective is Objective.RESPONSE_TIME:
            result = optimize_response_time(
                workload, profile, machine, max_layers=max_layers
            )
            value = result.objective_value
            better = best_value is None or value < best_value
        else:
            result = optimize_throughput(
                workload.lambda_u, profile, machine,
                rq_bound=rq_bound, max_layers=max_layers,
            )
            value = result.objective_value
            better = best_value is None or value > best_value
        family_results[rho] = (profile, result.config, value)
        if better:
            best_rho = rho
            best_value = value
            best_config = result.config
            best_profile = profile

    assert best_config is not None and best_profile is not None
    assert best_value is not None
    return JointChoice(
        core_fraction=best_rho,
        config=best_config,
        profile=best_profile,
        objective=objective,
        predicted_value=best_value,
        family_results=family_results,
    )

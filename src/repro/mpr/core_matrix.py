"""Core-matrix routing: the pure scheduling logic of Algorithms 1–3.

This module contains no threads and no timing — only the deterministic
decisions the s-cores and d-core make: which row serves a query, which
column holds an object, which w-queues receive which task.  Both the
real threaded executor (:mod:`repro.mpr.executor`) and the discrete-
event simulator (:mod:`repro.sim.system`) drive this logic, so their
behaviours coincide by construction.

Coordinates: a worker is addressed ``(layer, row, column)`` with
``0 <= layer < z``, ``0 <= row < y``, ``0 <= column < x``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..objects.tasks import DeleteTask, InsertTask, QueryTask, Task, TaskKind
from ..obs import NULL_TELEMETRY, Telemetry
from .config import MPRConfig

WorkerId = tuple[int, int, int]  # (layer, row, column)


@dataclass(frozen=True)
class QueryRoute:
    """Outcome of scheduling a query: one row of one layer."""

    layer: int
    row: int
    workers: tuple[WorkerId, ...]


@dataclass(frozen=True)
class UpdateRoute:
    """Outcome of scheduling an update: one column of every layer."""

    columns: tuple[int, ...]  # column per layer
    workers: tuple[WorkerId, ...]


class LayerScheduler:
    """One s-core's state (Algorithm 1): round-robin counters + object hash."""

    def __init__(self, config: MPRConfig, layer: int) -> None:
        self._config = config
        self._layer = layer
        self._next_row = 0
        self._next_column = 0
        self._column_of: dict[int, int] = {}

    def route_query(self, task: QueryTask) -> QueryRoute:
        row = self._next_row
        self._next_row = (self._next_row + 1) % self._config.y
        workers = tuple(
            (self._layer, row, column) for column in range(self._config.x)
        )
        return QueryRoute(self._layer, row, workers)

    def route_insert(self, task: InsertTask) -> int:
        if task.object_id in self._column_of:
            raise KeyError(
                f"insert of live object {task.object_id} at layer {self._layer}"
            )
        column = self._next_column
        self._next_column = (self._next_column + 1) % self._config.x
        self._column_of[task.object_id] = column
        return column

    def route_delete(self, task: DeleteTask) -> int:
        try:
            return self._column_of.pop(task.object_id)
        except KeyError:
            raise KeyError(
                f"delete of unknown object {task.object_id} at layer {self._layer}"
            ) from None

    def preload(self, column_of: Mapping[int, int]) -> None:
        """Install the hash-table entries for pre-placed objects."""
        for object_id, column in column_of.items():
            if not 0 <= column < self._config.x:
                raise ValueError(f"column {column} out of range")
            self._column_of[object_id] = column

    def column_workers(self, column: int) -> tuple[WorkerId, ...]:
        return tuple(
            (self._layer, row, column) for row in range(self._config.y)
        )


class MPRRouter:
    """The d-core plus all layer s-cores as one deterministic router.

    ``route(task)`` returns either a :class:`QueryRoute` (queries go to
    one layer, chosen round-robin by the d-core, then to one row) or an
    :class:`UpdateRoute` (updates go to every layer; each layer's s-core
    picks/looks up the column independently).
    """

    def __init__(
        self, config: MPRConfig, *, telemetry: Telemetry | None = None
    ) -> None:
        self._config = config
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._schedulers = [LayerScheduler(config, layer) for layer in range(config.z)]
        self._next_layer = 0

    @property
    def config(self) -> MPRConfig:
        return self._config

    def adopt_telemetry(self, telemetry: Telemetry) -> None:
        """Swap the telemetry handle this router counts into.

        A reconfiguration warms its replacement router against
        ``NULL_TELEMETRY`` (dual-fed updates must not double-count
        ``router.updates``); at cutover the new router inherits the live
        handle in the same supervisor step that swaps it in.
        """
        self._telemetry = telemetry

    def preload_objects(
        self,
        objects: Mapping[int, int],
        column_of: Mapping[int, int] | None = None,
    ) -> dict[WorkerId, dict[int, int]]:
        """Partition pre-placed objects over columns.

        Returns the initial contents per worker: ``worker -> {object:
        node}``.  All layers use the same initial column assignment (a
        fresh system would reach the same state by replaying the inserts
        through each layer's scheduler).

        ``column_of`` overrides the default round-robin placement with
        a custom strategy (see :mod:`repro.mpr.balancing`); it must
        cover every object.
        """
        if column_of is None:
            column_of = {
                object_id: position % self._config.x
                for position, object_id in enumerate(sorted(objects))
            }
        else:
            missing = set(objects) - set(column_of)
            if missing:
                raise ValueError(
                    f"column_of misses objects {sorted(missing)[:5]}"
                )
            column_of = dict(column_of)
        for scheduler in self._schedulers:
            scheduler.preload(column_of)
        contents: dict[WorkerId, dict[int, int]] = {
            worker: {} for worker in self.all_workers()
        }
        for object_id, node in objects.items():
            column = column_of[object_id]
            for layer in range(self._config.z):
                for row in range(self._config.y):
                    contents[(layer, row, column)][object_id] = node
        return contents

    def route(self, task: Task) -> QueryRoute | UpdateRoute:
        if task.kind is TaskKind.QUERY:
            layer = self._next_layer
            self._next_layer = (self._next_layer + 1) % self._config.z
            if self._telemetry.enabled:
                self._telemetry.count("router.queries")
                self._telemetry.count(f"router.queries.layer{layer}")
            return self._schedulers[layer].route_query(task)
        columns = []
        workers: list[WorkerId] = []
        for layer, scheduler in enumerate(self._schedulers):
            if task.kind is TaskKind.INSERT:
                column = scheduler.route_insert(task)
            else:
                column = scheduler.route_delete(task)
            columns.append(column)
            workers.extend(scheduler.column_workers(column))
        if self._telemetry.enabled:
            self._telemetry.count("router.updates")
        return UpdateRoute(tuple(columns), tuple(workers))

    def all_workers(self) -> list[WorkerId]:
        return [
            (layer, row, column)
            for layer in range(self._config.z)
            for row in range(self._config.y)
            for column in range(self._config.x)
        ]


#: Wire encoding of one task for a worker queue.  Kept as plain tuples
#: so a batch pickles as one small flat structure:
#: ``("query", query_id, location, k)`` | ``("insert", object_id,
#: location)`` | ``("delete", object_id)``.
WorkerOp = tuple

#: A batch addressed to one worker: ``(worker_id, (op, op, ...))``.
WorkerBatch = tuple[WorkerId, tuple[WorkerOp, ...]]


def encode_op(task: Task) -> WorkerOp:
    """Flatten a task into its worker-queue wire form."""
    if task.kind is TaskKind.QUERY:
        return ("query", task.query_id, task.location, task.k)
    if task.kind is TaskKind.INSERT:
        return ("insert", task.object_id, task.location)
    return ("delete", task.object_id)


class RouteBatcher:
    """Group routed tasks into per-worker batches (pure logic, no queues).

    One queue message normally carries one task; at ~tens of μs per
    ``multiprocessing`` message that round-trip dwarfs the paper's τ'.
    The batcher accumulates each worker's consecutive ops and releases
    them as one message of up to ``batch_size`` ops, preserving the
    per-worker FCFS order the serial-equivalence argument rests on
    (updates keep their arrival position; batches are released in
    order).  Latency-sensitive callers use :meth:`flush` to release
    partial batches immediately.

    With ``locality_group`` (the default), each *maximal run of
    consecutive queries* in a released batch is sorted by ``(location,
    query_id)``.  Queries never mutate worker state, so reordering a
    query run is equivalence-preserving — answers are keyed by query id
    and re-associated by the parent — while nearby sources land
    adjacent, which is exactly the grouping the batched kNN kernel
    (:meth:`repro.graph.kernels.CSRKernels.knn_batch`) exploits:
    duplicate and near sources share one delta-stepping sweep.
    Updates are barriers for the reorder; their relative order, and
    their order relative to the queries around them, never changes.
    """

    def __init__(
        self,
        router: MPRRouter,
        batch_size: int,
        *,
        telemetry: Telemetry | None = None,
        locality_group: bool = True,
        admission=None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._router = router
        self._batch_size = batch_size
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._locality_group = locality_group
        #: Optional :class:`repro.mpr.resilience.AdmissionController`
        #: consulted by :meth:`offer`; :meth:`add` never sheds.
        self.admission = admission
        self._pending: dict[WorkerId, list[WorkerOp]] = {
            worker: [] for worker in router.all_workers()
        }

    @property
    def batch_size(self) -> int:
        return self._batch_size

    def adopt_telemetry(self, telemetry: Telemetry) -> None:
        """Swap the telemetry handle (see :meth:`MPRRouter.adopt_telemetry`)."""
        self._telemetry = telemetry

    def set_batch_size(self, batch_size: int) -> None:
        """Retarget the release threshold (takes effect immediately).

        Shrinking below a worker's current backlog does not release it
        — the next :meth:`add` to that worker or :meth:`flush` does.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._batch_size = batch_size

    @property
    def pending_ops(self) -> int:
        """Ops routed but not yet released in a batch."""
        return sum(len(ops) for ops in self._pending.values())

    def _release(self, pending: list[WorkerOp]) -> tuple[WorkerOp, ...]:
        """Seal one batch, locality-sorting each consecutive query run."""
        if self._locality_group and len(pending) > 1:
            index = 0
            total = len(pending)
            while index < total:
                if pending[index][0] != "query":
                    index += 1
                    continue
                end = index + 1
                while end < total and pending[end][0] == "query":
                    end += 1
                if end - index > 1:
                    # op = ("query", query_id, location, k): sort the
                    # run by (location, query_id) for kernel locality.
                    pending[index:end] = sorted(
                        pending[index:end], key=lambda op: (op[2], op[1])
                    )
                index = end
        batch = tuple(pending)
        pending.clear()
        return batch

    def add(
        self, task: Task
    ) -> tuple[QueryRoute | UpdateRoute, list[WorkerBatch]]:
        """Route ``task``; return the route plus any now-full batches."""
        route = self._router.route(task)
        op = encode_op(task)
        ready: list[WorkerBatch] = []
        for worker_id in route.workers:
            pending = self._pending[worker_id]
            pending.append(op)
            if len(pending) >= self._batch_size:
                ready.append((worker_id, self._release(pending)))
        if ready and self._telemetry.enabled:
            self._telemetry.count("batcher.full_batches", len(ready))
        return route, ready

    def offer(
        self, task: Task
    ) -> tuple[QueryRoute | UpdateRoute, list[WorkerBatch], int | None]:
        """Admission-controlled :meth:`add`.

        Routes ``task`` and consults the attached admission controller:
        a query whose route would land on a worker already at the
        outstanding-work bound is *shed* — nothing is buffered or
        dispatched, and the triggering backlog is returned as the third
        element (``None`` means admitted).  Updates are never shed:
        dropping one would silently fork a replica cell's state away
        from its row siblings.  Admitted ops are counted against every
        target worker; the executor releases them on acknowledgement.
        """
        route = self._router.route(task)
        admission = self.admission
        if admission is not None and task.kind is TaskKind.QUERY:
            backlog = admission.should_shed(route.workers)
            if backlog is not None:
                return route, [], backlog
        op = encode_op(task)
        ready: list[WorkerBatch] = []
        for worker_id in route.workers:
            pending = self._pending[worker_id]
            pending.append(op)
            if len(pending) >= self._batch_size:
                ready.append((worker_id, self._release(pending)))
        if admission is not None:
            admission.dispatched(route.workers)
        if ready and self._telemetry.enabled:
            self._telemetry.count("batcher.full_batches", len(ready))
        return route, ready, None

    def flush(self) -> list[WorkerBatch]:
        """Release every partial batch (deterministic worker order)."""
        ready: list[WorkerBatch] = []
        for worker_id in sorted(self._pending):
            pending = self._pending[worker_id]
            if pending:
                ready.append((worker_id, self._release(pending)))
        if ready and self._telemetry.enabled:
            self._telemetry.count("batcher.partial_batches", len(ready))
        return ready


def check_matrix_invariants(
    contents: Mapping[WorkerId, Mapping[int, int]], config: MPRConfig
) -> None:
    """Verify the partition/replication invariants of Section IV-A.

    * within a (layer, row): the cells partition the union (disjoint);
    * within a (layer, column): every cell holds the same object set;
    * every (layer, row) union equals every other's (full replication
      across rows and layers).

    Raises ``AssertionError`` with a diagnostic on violation.  Used by
    tests and by the executor's debug mode.
    """
    reference: set[int] | None = None
    for layer in range(config.z):
        for row in range(config.y):
            union: set[int] = set()
            for column in range(config.x):
                cell = set(contents[(layer, row, column)])
                overlap = union & cell
                assert not overlap, (
                    f"row ({layer},{row}) cells overlap on objects {sorted(overlap)[:5]}"
                )
                union |= cell
            if reference is None:
                reference = union
            else:
                assert union == reference, (
                    f"row ({layer},{row}) union differs from reference: "
                    f"missing {sorted(reference - union)[:5]}, "
                    f"extra {sorted(union - reference)[:5]}"
                )
        for column in range(config.x):
            first = dict(contents[(layer, 0, column)])
            for row in range(1, config.y):
                cell = dict(contents[(layer, row, column)])
                assert cell == first, (
                    f"column ({layer},{column}) differs between rows 0 and {row}"
                )

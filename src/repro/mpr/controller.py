"""Online workload estimation and adaptive reconfiguration.

The paper presents MPR's self-configuration as a one-shot optimization
for a given ``(λq, λu)``.  A deployed system (the taxi-peak /
game-evening scenarios of Section I) sees those rates *drift*, so an
operator needs the loop closed: estimate the current rates, re-solve
the optimization, and switch configurations when — and only when — the
switch pays for itself.

:class:`RateEstimator` tracks arrival rates with exponentially-weighted
windows; :class:`AdaptiveController` re-runs the Section IV-B
optimization on the estimated workload and applies **hysteresis**: it
reconfigures only when the predicted improvement exceeds a threshold,
because a reconfiguration forces data repartitioning (each w-core's
object partition changes, costing roughly one index rebuild).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..knn.calibration import AlgorithmProfile
from .analysis import (
    MachineSpec,
    Workload,
    max_throughput_closed_form,
    optimize_response_time,
    optimize_throughput,
    response_time,
)
from .config import MPRConfig
from .schemes import DEFAULT_MAX_LAYERS, Objective


class RateEstimator:
    """EWMA arrival-rate estimator over fixed-width windows.

    Counts arrivals per ``window`` seconds and folds each completed
    window into an exponentially weighted average with smoothing
    ``alpha`` (higher = more reactive).  Queries and updates are
    tracked independently.
    """

    def __init__(self, window: float = 1.0, alpha: float = 0.3) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self._window = window
        self._alpha = alpha
        self._window_start = 0.0
        self._counts = {"query": 0, "update": 0}
        self._rates = {"query": 0.0, "update": 0.0}
        self._windows_seen = 0

    def observe_query(self, time: float) -> None:
        self._advance(time)
        self._counts["query"] += 1

    def observe_update(self, time: float) -> None:
        self._advance(time)
        self._counts["update"] += 1

    def observe_counts(
        self, time: float, queries: int = 0, updates: int = 0
    ) -> None:
        """Fold a batch of arrivals in at once (counter-delta feeding).

        The live reconfiguration loop reads cumulative router counters
        and feeds the per-poll delta here instead of one call per task.
        """
        self._advance(time)
        self._counts["query"] += queries
        self._counts["update"] += updates

    def _advance(self, time: float) -> None:
        if time < self._window_start:
            raise ValueError("time moved backwards")
        while time >= self._window_start + self._window:
            for kind in ("query", "update"):
                sample = self._counts[kind] / self._window
                if self._windows_seen == 0:
                    self._rates[kind] = sample
                else:
                    self._rates[kind] = (
                        self._alpha * sample
                        + (1.0 - self._alpha) * self._rates[kind]
                    )
                self._counts[kind] = 0
            self._windows_seen += 1
            self._window_start += self._window

    @property
    def lambda_q(self) -> float:
        return self._rates["query"]

    @property
    def lambda_u(self) -> float:
        return self._rates["update"]

    @property
    def ready(self) -> bool:
        """True once at least one full window has elapsed."""
        return self._windows_seen > 0

    def workload(self) -> Workload:
        return Workload(self.lambda_q, self.lambda_u)


@dataclass(frozen=True)
class Reconfiguration:
    """A decision to switch configurations."""

    time: float
    old_config: MPRConfig
    new_config: MPRConfig
    old_predicted: float
    new_predicted: float


@dataclass
class AdaptiveController:
    """Closes the loop: estimated workload -> (x, y, z), with hysteresis.

    Parameters
    ----------
    profile, machine, objective, rq_bound:
        As in :func:`repro.mpr.schemes.configure_scheme`.
    improvement_threshold:
        Reconfigure only when the new configuration's predicted measure
        beats the current configuration's by this relative margin
        (0.15 = must be 15% better).  Switching out of an overloaded
        configuration bypasses the threshold.
    cooldown:
        Minimum seconds between reconfigurations.  A switch out of an
        overloaded configuration bypasses the cooldown, for the same
        reason it bypasses the threshold.
    """

    profile: AlgorithmProfile
    machine: MachineSpec
    objective: Objective = Objective.RESPONSE_TIME
    rq_bound: float = 0.1
    improvement_threshold: float = 0.15
    cooldown: float = 0.0
    max_layers: int = DEFAULT_MAX_LAYERS
    estimator: RateEstimator = field(default_factory=RateEstimator)

    def __post_init__(self) -> None:
        if self.improvement_threshold < 0:
            raise ValueError("improvement_threshold must be non-negative")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self._config: MPRConfig | None = None
        self._last_switch: float | None = None
        self.history: list[Reconfiguration] = []

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe_query(self, time: float) -> None:
        self.estimator.observe_query(time)

    def observe_update(self, time: float) -> None:
        self.estimator.observe_update(time)

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    @property
    def config(self) -> MPRConfig | None:
        return self._config

    def sync_config(self, config: MPRConfig) -> None:
        """Pin the controller's notion of the current configuration.

        The live pool is the source of truth for the shape actually
        serving traffic (a proposed switch may have been rolled back, or
        an operator may have reconfigured manually); callers re-sync
        before each control decision.
        """
        self._config = config

    def evaluate(self, config: MPRConfig, workload: Workload) -> float:
        """Predicted measure of a configuration (lower is better)."""
        if self.objective is Objective.RESPONSE_TIME:
            return response_time(config, workload, self.profile, self.machine)
        throughput = max_throughput_closed_form(
            config, workload.lambda_u, self.profile, self.machine,
            self.rq_bound,
        )
        return -throughput  # minimize the negation

    def maybe_reconfigure(self, time: float) -> Reconfiguration | None:
        """Re-solve the optimization; switch if it clearly pays.

        Returns the reconfiguration applied, or ``None`` (kept current
        config, or not enough observation yet).
        """
        if not self.estimator.ready:
            return None
        workload = self.estimator.workload()
        if self.objective is Objective.RESPONSE_TIME:
            best = optimize_response_time(
                workload, self.profile, self.machine, max_layers=self.max_layers
            ).config
        else:
            best = optimize_throughput(
                workload.lambda_u, self.profile, self.machine,
                rq_bound=self.rq_bound, max_layers=self.max_layers,
            ).config

        if self._config is None:
            self._config = best
            return None
        if best == self._config:
            return None

        current_value = self.evaluate(self._config, workload)
        best_value = self.evaluate(best, workload)
        if math.isinf(current_value) and math.isfinite(best_value):
            improvement = math.inf  # escape overload unconditionally
        elif math.isinf(best_value):
            return None
        elif current_value <= 0 and self.objective is Objective.THROUGHPUT:
            # Throughput values are negated; compute relative gain.
            improvement = (current_value - best_value) / max(-current_value, 1e-12)
        else:
            improvement = (current_value - best_value) / max(
                abs(current_value), 1e-12
            )
        if improvement <= 0:
            # Cost tie (or regression) between distinct shapes: keep the
            # incumbent deterministically rather than flapping.
            return None
        if improvement < self.improvement_threshold:
            return None
        if (
            not math.isinf(improvement)
            and self._last_switch is not None
            and time - self._last_switch < self.cooldown
        ):
            return None

        event = Reconfiguration(
            time=time,
            old_config=self._config,
            new_config=best,
            old_predicted=current_value,
            new_predicted=best_value,
        )
        self._config = best
        self._last_switch = time
        self.history.append(event)
        return event

"""Resilience policies: deadlines, hedged reads, shedding, breakers.

MPR's replication rows exist precisely so a query can be served when a
cell is busy or dead (Section IV-A) — this module turns that static
argument into runtime behaviour.  It is pure policy: no processes, no
clocks of its own (every method takes ``now`` explicitly so tests drive
time), shared by both executors:

* :class:`ResilienceConfig` — the knobs: a default per-query deadline
  (SLO), the per-worker admission bound, breaker thresholds and
  exponential backoff, the stall watchdog.
* :class:`AdmissionController` — tracks outstanding work per worker
  (fed by dispatch/ack events) and decides when a query should be
  *shed* with a typed :class:`Overloaded` result instead of joining a
  hopeless backlog — the paper's "Overload" verdict enforced at
  runtime rather than only in the analytical model.
* :class:`CircuitBreaker` — per-worker crash-loop detector: after
  ``breaker_failures`` consecutive crashes the worker is declared down
  (state ``open``), its batches are quarantined, and respawn attempts
  are retried only on an exponential-backoff schedule (``half_open``
  trials) until one sticks (``closed``).
* :class:`Overloaded` — the typed answer a shed query receives.

The degraded-answer counterpart, :class:`repro.knn.base.PartialResult`
(re-exported here), flags a merged answer that is missing partition
columns because no replica of those cells was live.

Cost when disabled: executors hold :data:`NULL_RESILIENCE` and guard
every touch point with a single ``if resilience.enabled`` branch,
exactly like :data:`repro.obs.NULL_TELEMETRY` — the no-fault hot path
is pinned within 5% by ``tests/test_resilience_overhead.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..knn.base import PartialResult

__all__ = [
    "NULL_RESILIENCE",
    "AdmissionController",
    "CircuitBreaker",
    "Overloaded",
    "PartialResult",
    "ResilienceConfig",
    "ResiliencePolicy",
    "RESILIENCE_COUNTERS",
]

#: Telemetry counters the resilience layer emits (see docs/API.md).
RESILIENCE_COUNTERS = (
    "resilience.hedges",
    "resilience.shed",
    "resilience.degraded",
    "resilience.breaker_open",
    "resilience.deadline_misses",
    "resilience.duplicate_acks",
    "resilience.quarantined",
    "resilience.stall_kills",
)


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning knobs for the resilience layer (all policies optional).

    ``default_deadline`` is the per-query SLO in seconds, measured from
    ``submit()``; a :class:`~repro.objects.tasks.QueryTask` carrying its
    own ``deadline`` overrides it, and the arrangement's
    :attr:`~repro.mpr.config.MPRConfig.default_deadline` is the
    fallback when this is ``None``.  A query past its deadline is
    *hedged*: re-dispatched to a different replica row of the same
    column, first answer wins.

    ``max_outstanding`` bounds the per-worker backlog (ops dispatched
    but not acknowledged, plus ops buffered in the batcher).  A query
    whose route would push any target worker past the bound is shed
    with an :class:`Overloaded` result.  ``None`` never sheds.

    ``breaker_failures``/``backoff_*`` drive the per-worker
    :class:`CircuitBreaker`; ``stall_timeout`` is the watchdog that
    SIGKILLs a live-but-silent worker (e.g. SIGSTOPped, or wedged in a
    syscall) whose oldest in-flight batch has seen no ack for that
    long, converting an undetectable stall into the well-understood
    crash/respawn/replay path.
    """

    default_deadline: float | None = None
    max_outstanding: int | None = None
    hedge: bool = True
    breaker_failures: int = 3
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    stall_timeout: float | None = 1.0

    def __post_init__(self) -> None:
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError("default_deadline must be positive")
        if self.max_outstanding is not None and self.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")
        if self.backoff_base <= 0 or self.backoff_max <= 0:
            raise ValueError("backoff_base and backoff_max must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if self.stall_timeout is not None and self.stall_timeout <= 0:
            raise ValueError("stall_timeout must be positive")


@dataclass(frozen=True)
class Overloaded:
    """Typed result of a shed query: rejected, not silently dropped.

    ``outstanding`` is the backlog of the most loaded target worker at
    the moment the admission controller rejected the query; ``bound``
    is the configured :attr:`ResilienceConfig.max_outstanding`.
    """

    query_id: int
    outstanding: int
    bound: int

    def __bool__(self) -> bool:
        # An Overloaded result is never a usable answer; callers doing
        # ``if answers[qid]:`` treat it like an empty result list.
        return False


class CircuitBreaker:
    """Crash-loop detection with exponential-backoff recovery.

    States: ``closed`` (healthy — respawn on death), ``open`` (crash
    loop — respawns suppressed until the backoff elapses), and
    ``half_open`` (backoff elapsed — exactly one trial respawn is
    allowed; success closes the breaker, another crash re-opens it with
    doubled backoff).  All transitions are driven by the caller's clock
    so tests never sleep.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    __slots__ = ("_config", "failures", "opens", "_state", "_retry_at")

    def __init__(self, config: ResilienceConfig) -> None:
        self._config = config
        self.failures = 0  # consecutive crashes since the last success
        self.opens = 0  # lifetime open transitions (backoff exponent)
        self._state = self.CLOSED
        self._retry_at = 0.0

    @property
    def state(self) -> str:
        return self._state

    @property
    def retry_at(self) -> float:
        """Monotonic time of the next half-open trial (``open`` only)."""
        return self._retry_at

    def backoff(self) -> float:
        """The current open-state backoff (grows per open transition)."""
        config = self._config
        exponent = max(self.opens - 1, 0)
        return min(
            config.backoff_base * config.backoff_factor**exponent,
            config.backoff_max,
        )

    def record_failure(self, now: float) -> bool:
        """Count one crash; returns True when this crash opens the breaker.

        A crash during a ``half_open`` trial re-opens immediately (the
        trial failed); in ``closed`` the breaker opens once the
        consecutive-failure threshold is reached.
        """
        self.failures += 1
        if self._state == self.HALF_OPEN or (
            self._state == self.CLOSED
            and self.failures >= self._config.breaker_failures
        ):
            self.opens += 1
            self._state = self.OPEN
            self._retry_at = now + self.backoff()
            return True
        if self._state == self.OPEN:
            # Failure observed while open (e.g. a racing death report):
            # push the retry horizon out, no new transition.
            self._retry_at = now + self.backoff()
        return False

    def record_success(self) -> None:
        """An ack arrived: the worker is serving again."""
        self.failures = 0
        self._state = self.CLOSED

    def allow(self, now: float) -> bool:
        """May the caller attempt a respawn right now?

        ``closed`` always allows; ``open`` allows only once the backoff
        has elapsed, transitioning to ``half_open`` so exactly one
        trial is in flight per backoff window.
        """
        if self._state == self.CLOSED:
            return True
        if self._state == self.OPEN and now >= self._retry_at:
            self._state = self.HALF_OPEN
            return True
        return self._state == self.HALF_OPEN


class AdmissionController:
    """Per-worker outstanding-work ledger feeding the shed decision.

    ``dispatched``/``acked`` are called by the executor on every op's
    way in and out; ``should_shed`` answers whether a query routed to
    ``workers`` would land on a backlog already at the bound.  Shedding
    considers the *maximum* backlog across the route's workers: a
    fan-out query is as slow as its slowest column, so one overloaded
    cell is enough to reject (the paper's Overload condition is likewise
    a per-core utilization bound, Section IV-C).
    """

    __slots__ = ("max_outstanding", "outstanding")

    def __init__(self, max_outstanding: int | None) -> None:
        self.max_outstanding = max_outstanding
        self.outstanding: dict[tuple[int, int, int], int] = {}

    def dispatched(
        self, workers: Iterable[tuple[int, int, int]], count: int = 1
    ) -> None:
        outstanding = self.outstanding
        for worker in workers:
            outstanding[worker] = outstanding.get(worker, 0) + count

    def acked(self, worker: tuple[int, int, int], count: int = 1) -> None:
        outstanding = self.outstanding
        remaining = outstanding.get(worker, 0) - count
        if remaining > 0:
            outstanding[worker] = remaining
        else:
            outstanding.pop(worker, None)

    def load(self, worker: tuple[int, int, int]) -> int:
        return self.outstanding.get(worker, 0)

    def should_shed(
        self, workers: Sequence[tuple[int, int, int]]
    ) -> int | None:
        """The triggering backlog if the query must be shed, else None."""
        bound = self.max_outstanding
        if bound is None:
            return None
        worst = 0
        outstanding = self.outstanding
        for worker in workers:
            load = outstanding.get(worker, 0)
            if load > worst:
                worst = load
        return worst if worst >= bound else None


class ResiliencePolicy:
    """The runtime handle executors carry (mirror of ``Telemetry``).

    Bundles the static :class:`ResilienceConfig` with the mutable
    pieces — one :class:`CircuitBreaker` per worker (lazily created)
    and one :class:`AdmissionController` — behind a single ``enabled``
    flag, so the disabled path costs executors exactly one branch.
    """

    __slots__ = ("enabled", "config", "admission", "_breakers")

    def __init__(
        self, config: ResilienceConfig | None = None, *, enabled: bool = True
    ) -> None:
        self.enabled = enabled and config is not None
        self.config = config if config is not None else ResilienceConfig()
        self.admission = AdmissionController(
            self.config.max_outstanding if self.enabled else None
        )
        self._breakers: dict[tuple[int, int, int], CircuitBreaker] = {}

    def breaker(self, worker: tuple[int, int, int]) -> CircuitBreaker:
        breaker = self._breakers.get(worker)
        if breaker is None:
            breaker = self._breakers[worker] = CircuitBreaker(self.config)
        return breaker

    def breakers(self) -> Mapping[tuple[int, int, int], CircuitBreaker]:
        """Breakers created so far (healthy workers may have none)."""
        return self._breakers

    def clear_breakers(self) -> None:
        """Forget all per-worker breakers.

        Called at a reconfiguration cutover: worker ids are reused by
        the new shape, so breaker state earned by retiring workers must
        not bleed onto their same-id successors.
        """
        self._breakers.clear()

    def deadline_for(
        self, task_deadline: float | None, config_deadline: float | None
    ) -> float | None:
        """Resolve one query's SLO: task > policy > arrangement."""
        if task_deadline is not None:
            return task_deadline
        if self.config.default_deadline is not None:
            return self.config.default_deadline
        return config_deadline


#: Shared disabled handle: the default for every executor, so the
#: no-resilience hot path is one attribute load and one branch.
NULL_RESILIENCE = ResiliencePolicy(None, enabled=False)

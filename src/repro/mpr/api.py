"""The unified executor API: one entry point for every MPR substrate.

Historically each executor had its own constructor with its own
argument order (solution-first) and its own lifecycle quirks; callers
picked a class, not a configuration.  This module inverts that:

* :func:`build_executor` — the one construction path.  Takes the
  arrangement first (``config`` is the decision MPR's optimizer makes;
  the substrate is an implementation detail), picks the substrate via
  ``mode``, and threads a :class:`repro.obs.Telemetry` through every
  layer it builds.  There is no other public way to construct an
  executor — the PR-3-era per-class deprecation shims are gone.
* :class:`MPRSystem` — a convenience wrapper owning an executor plus a
  default-enabled telemetry handle, for scripts and notebooks that
  want answers *and* a latency report without wiring either.

Every executor built here satisfies the :class:`repro.mpr.executor.
MPRExecutor` contract: ``start()``/``submit()``/``flush()``/
``drain()``/``run()``/``close()`` plus the context-manager form, with
serial-equivalent answers across substrates.

For serving, :meth:`MPRSystem.submit_async` returns a
:class:`concurrent.futures.Future` resolving to a typed
:class:`~repro.mpr.results.QueryResult` envelope.  Underneath it a
:class:`_CompletionPump` thread takes exclusive ownership of the
executor and turns the batch-oriented ``submit``/``drain`` cycle into
per-task completions, so a caller (the ``repro.serve`` event loop in
particular) never sits in a ``drain()`` barrier.
"""

from __future__ import annotations

import inspect
import queue as queue_module
import threading
from concurrent.futures import Future
from typing import Any, Mapping, Sequence

from ..knn.base import KNNSolution, Neighbor
from ..objects.tasks import Task, TaskKind
from ..obs import Telemetry
from .config import MPRConfig
from .executor import MPRExecutor, ThreadedMPRExecutor
from .process_executor import QuiesceTimeout, WorkerCrash
from .reconfig import ReconfigEvent, ReconfigManager, ReconfigPolicy
from .resilience import ResilienceConfig
from .results import QueryResult, envelope_answers

__all__ = ["MPRSystem", "build_executor"]

#: The substrates ``build_executor`` knows how to realize.
EXECUTOR_MODES = ("thread", "process")


def build_executor(
    config: MPRConfig,
    solution: KNNSolution,
    objects: Mapping[int, int] | None = None,
    *,
    mode: str = "thread",
    telemetry: Telemetry | None = None,
    check_invariants: bool = False,
    batch_size: int = 16,
    start_method: str = "fork",
    share_graph: bool = True,
    health_check_interval: float = 0.05,
    max_respawns: int = 3,
    metrics: Any | None = None,
    resilience: ResilienceConfig | None = None,
) -> MPRExecutor:
    """Build an executor realizing ``config`` over the chosen substrate.

    Parameters
    ----------
    config:
        The ``(x, y, z)`` core-matrix arrangement to realize.
    solution:
        Prototype kNN solution; each worker gets ``solution.spawn``-ed
        onto its object cell.
    objects:
        Initial object placements ``object_id -> node`` (default: start
        empty and build state through insert tasks).
    mode:
        ``"thread"`` — in-process worker threads (functional semantics,
        GIL-bound); ``"process"`` — the persistent fault-tolerant
        process pool (real parallelism).
    telemetry:
        A :class:`repro.obs.Telemetry` recorded into by every layer
        (router, batcher, workers).  Default: the shared disabled
        handle, which keeps the hot path a single branch.
    check_invariants:
        Thread mode only: assert the Section IV-A partition/replication
        invariants after every ``run()``.
    batch_size, start_method, share_graph, health_check_interval, \
max_respawns, metrics:
        Process mode only: forwarded to the pool (see
        :class:`repro.mpr.process_executor.ProcessPoolService`).
    resilience:
        A :class:`repro.mpr.resilience.ResilienceConfig` enabling the
        resilience layer (``None`` disables it entirely).  Process mode
        gets the full behaviour — deadlines with hedged replica reads,
        admission-controlled shedding, circuit breakers with
        quarantine, a stall watchdog, and degraded
        :class:`~repro.knn.base.PartialResult` answers; thread mode
        realizes the subset that is meaningful without process faults
        (shedding and deadline-miss accounting).

    Returns
    -------
    MPRExecutor
        Unstarted; call ``start()`` or use the context-manager form.
    """
    if objects is None:
        objects = {}
    if mode == "thread":
        return ThreadedMPRExecutor(
            solution, config, objects,
            check_invariants=check_invariants, telemetry=telemetry,
            resilience=resilience,
        )
    if mode == "process":
        if check_invariants:
            raise ValueError(
                "check_invariants is only supported in thread mode"
            )
        from .process_executor import ProcessPoolService

        return ProcessPoolService(
            solution, config, objects,
            batch_size=batch_size,
            start_method=start_method,
            share_graph=share_graph,
            health_check_interval=health_check_interval,
            max_respawns=max_respawns,
            metrics=metrics,
            telemetry=telemetry,
            resilience=resilience,
        )
    raise ValueError(
        f"unknown executor mode {mode!r}; expected one of {EXECUTOR_MODES}"
    )


class _ReconfigureRequest:
    """A pump control item: reconfigure between two drain cycles.

    The pump thread owns the executor once serving starts, so a live
    shape change must go through its queue like everything else — it
    acts as a cycle boundary: tasks queued before it are submitted (and
    ride through the cutover in flight), the reconfiguration runs, and
    tasks queued after it are routed by the new shape.
    """

    __slots__ = ("new_config", "kwargs", "future")

    def __init__(
        self, new_config: MPRConfig, kwargs: dict[str, Any], future: Future
    ) -> None:
        self.new_config = new_config
        self.kwargs = kwargs
        self.future = future


class _CompletionPump:
    """A thread turning the batch ``submit``/``drain`` cycle into futures.

    The executor contract is batch-synchronous: answers only exist
    after a ``drain()`` barrier, and neither executor is thread-safe.
    The pump is the one thread that touches the executor once serving
    starts: it pulls ``(task, future)`` pairs from a queue in FCFS
    order, submits a micro-batch (everything queued, up to
    ``max_batch``), drains, and resolves each query's future with a
    :class:`QueryResult` envelope (update futures resolve to ``None``
    after the drain that made them visible).  Callers — the asyncio
    server above all — therefore get per-task completion without ever
    blocking in the barrier themselves.

    Failure mapping, so a sick pool cannot hang an RPC forever:

    * :class:`QuiesceTimeout` — the queries it names resolve as
      ``TIMEOUT``; the rest of the cycle gets one short follow-up
      drain, then times out too.
    * :class:`WorkerCrash`/``RuntimeError`` — every future of the
      cycle resolves as ``ERROR`` with the crash detail.
    * ``stop()`` — queued-but-unsubmitted tasks resolve as ``TIMEOUT``
      ("shutting down"); the in-flight cycle finishes first.
    """

    def __init__(
        self,
        executor: MPRExecutor,
        *,
        max_batch: int = 256,
        drain_timeout: float | None = 30.0,
    ) -> None:
        self._executor = executor
        self._max_batch = max_batch
        self._drain_timeout = drain_timeout
        self._queue: queue_module.SimpleQueue = queue_module.SimpleQueue()
        self._stopping = threading.Event()
        self._accepts_timeout = "timeout" in inspect.signature(
            executor.drain
        ).parameters
        self._thread = threading.Thread(
            target=self._loop, name="mpr-completion-pump", daemon=True
        )
        self._thread.start()

    def submit(self, task: Task) -> "Future[QueryResult | None]":
        """Enqueue one task; the future resolves when its drain lands."""
        if self._stopping.is_set():
            raise RuntimeError("completion pump is stopped")
        future: Future = Future()
        self._queue.put((task, future))
        return future

    def reconfigure(
        self, new_config: MPRConfig, **kwargs: Any
    ) -> "Future[ReconfigEvent]":
        """Enqueue a live shape change; FCFS with the task stream."""
        if self._stopping.is_set():
            raise RuntimeError("completion pump is stopped")
        future: Future = Future()
        self._queue.put(_ReconfigureRequest(new_config, kwargs, future))
        return future

    def stop(self, timeout: float | None = None) -> None:
        """Finish the in-flight cycle, fail the queue, join the thread."""
        if not self._stopping.is_set():
            self._stopping.set()
            self._queue.put(None)
        self._thread.join(timeout)

    # ------------------------------------------------------------------
    def _drain(self) -> dict[int, Any]:
        if self._accepts_timeout:
            return self._executor.drain(timeout=self._drain_timeout)
        return self._executor.drain()

    def _next_cycle(self) -> list[tuple[Task, Future]] | None:
        """Block for the first item, then sweep the queue (bounded)."""
        item = self._queue.get()
        if item is None:
            return None
        cycle = [item]
        if isinstance(item, _ReconfigureRequest):
            return cycle
        while len(cycle) < self._max_batch:
            try:
                item = self._queue.get_nowait()
            except queue_module.Empty:
                break
            if item is None:
                return cycle  # drain this cycle, then exit the loop
            cycle.append(item)
            if isinstance(item, _ReconfigureRequest):
                break  # cycle boundary: later tasks ride the new shape
        return cycle

    def _resolve(self, cycle: list[Any]) -> None:
        """Run one submit→drain cycle and settle every future in it."""
        request: _ReconfigureRequest | None = None
        submitted: list[tuple[Task, Future]] = []
        for item in cycle:
            if isinstance(item, _ReconfigureRequest):
                request = item
                continue
            task, future = item
            try:
                self._executor.submit(task)
            except Exception as exc:  # routing/admission blew up
                future.set_exception(exc)
                continue
            submitted.append((task, future))
        if request is not None:
            # Reconfigure with this cycle's queries in flight: the wait
            # loop keeps collecting their acks, the drain below settles
            # them — under the old shape on rollback, the new on cutover.
            self._run_reconfigure(request)
        if not submitted:
            return
        try:
            answers = self._drain()
        except QuiesceTimeout as exc:
            answers = self._recover_timeout(submitted, exc)
        except (WorkerCrash, RuntimeError) as exc:
            for task, future in submitted:
                if task.kind is TaskKind.QUERY:
                    future.set_result(
                        QueryResult.failed(task.query_id, str(exc))
                    )
                else:
                    future.set_exception(exc)
            return
        results = envelope_answers(answers)
        for task, future in submitted:
            if task.kind is TaskKind.QUERY:
                result = results.get(task.query_id)
                if result is None:
                    result = QueryResult.timed_out(
                        task.query_id,
                        "query lost by the executor drain",
                    )
                future.set_result(result)
            else:
                future.set_result(None)

    def _run_reconfigure(self, request: _ReconfigureRequest) -> None:
        reconfigure = getattr(self._executor, "reconfigure", None)
        if reconfigure is None:
            request.future.set_exception(
                ValueError(
                    "this executor does not support live reconfiguration"
                )
            )
            return
        try:
            request.future.set_result(
                reconfigure(request.new_config, **request.kwargs)
            )
        except Exception as exc:  # rejected / timed out / crashed
            request.future.set_exception(exc)

    def _recover_timeout(
        self, submitted: list[tuple[Task, Future]], exc: QuiesceTimeout
    ) -> dict[int, Any]:
        """Fail the queries a drain timeout names; salvage the rest.

        The :class:`QuiesceTimeout` carries the affected query ids
        (the satellite fix this PR makes) precisely so we can fail the
        right in-flight RPCs and give everyone else one more — short —
        chance to surface answers that were already merged.
        """
        stuck = set(exc.query_ids)
        for task, future in submitted:
            if task.kind is TaskKind.QUERY and task.query_id in stuck:
                future.set_result(
                    QueryResult.timed_out(task.query_id, str(exc))
                )
        remaining = [
            (task, future)
            for task, future in submitted
            if not (task.kind is TaskKind.QUERY and task.query_id in stuck)
        ]
        submitted[:] = remaining
        try:
            if self._accepts_timeout:
                return self._executor.drain(timeout=1.0)
            return self._executor.drain()
        except Exception:
            return {}

    def _loop(self) -> None:
        while True:
            cycle = self._next_cycle()
            if cycle is None:
                break
            self._resolve(cycle)
            if self._stopping.is_set() and self._queue.empty():
                break
        # Fail whatever raced in behind the sentinel — never hang a
        # caller on a future nobody will resolve.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue_module.Empty:
                break
            if item is None:
                continue
            if isinstance(item, _ReconfigureRequest):
                item.future.set_exception(RuntimeError("shutting down"))
                continue
            task, future = item
            if task.kind is TaskKind.QUERY:
                future.set_result(
                    QueryResult.timed_out(task.query_id, "shutting down")
                )
            else:
                future.set_exception(RuntimeError("shutting down"))


class MPRSystem:
    """An executor bundled with always-on telemetry and reporting.

    The two-line serving setup::

        with MPRSystem(config, solution, objects, mode="process") as system:
            answers = system.run(tasks)
            print(system.report())

    Accepts the same arguments as :func:`build_executor` but defaults
    ``telemetry`` to a fresh *enabled* handle — the wrapper exists to
    make the traced path the easy path.  All executor lifecycle methods
    delegate; :meth:`stats` and :meth:`report` expose the telemetry.

    Two surfaces share the executor, mutually exclusively:

    * the **batch surface** — ``submit``/``flush``/``drain``/``run``,
      the historical blocking cycle; and
    * the **async surface** — :meth:`submit_async` returns a
      :class:`concurrent.futures.Future` per task, resolving to a
      :class:`~repro.mpr.results.QueryResult` envelope (``None`` for
      updates).  First use starts the :class:`_CompletionPump`, which
      then owns the executor: the batch surface raises until
      :meth:`close`, because neither executor is thread-safe and
      interleaving the two would corrupt the drain accounting.
    """

    def __init__(
        self,
        config: MPRConfig,
        solution: KNNSolution,
        objects: Mapping[int, int] | None = None,
        *,
        mode: str = "thread",
        telemetry: Telemetry | None = None,
        **options: Any,
    ) -> None:
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._pump_options = {
            key[len("pump_"):]: options.pop(key)
            for key in ("pump_max_batch", "pump_drain_timeout")
            if key in options
        }
        self.executor = build_executor(
            config, solution, objects,
            mode=mode, telemetry=self.telemetry, **options,
        )
        self.mode = mode
        self._pump: _CompletionPump | None = None
        self._manager: ReconfigManager | None = None

    @property
    def config(self) -> MPRConfig:
        return self.executor.config

    def start(self) -> "MPRSystem":
        self.executor.start()
        return self

    def close(self) -> None:
        if self._manager is not None:
            self._manager.stop()
            self._manager = None
        if self._pump is not None:
            self._pump.stop()
            self._pump = None
        self.executor.close()

    def _guard_batch_surface(self, method: str) -> None:
        if self._pump is not None:
            raise RuntimeError(
                f"MPRSystem.{method}() is unavailable while submit_async's "
                "completion pump owns the executor; use submit_async/"
                "run_results (or close() first)"
            )

    def submit(self, task: Task) -> None:
        self._guard_batch_surface("submit")
        self.executor.submit(task)

    def flush(self) -> None:
        self._guard_batch_surface("flush")
        self.executor.flush()

    def drain(self) -> dict[int, list[Neighbor]]:
        self._guard_batch_surface("drain")
        return self.executor.drain()

    def run(self, tasks: Sequence[Task]) -> dict[int, list[Neighbor]]:
        self._guard_batch_surface("run")
        return self.executor.run(tasks)

    # ------------------------------------------------------------------
    # The async surface (futures + QueryResult envelopes)
    # ------------------------------------------------------------------
    def submit_async(self, task: Task) -> "Future[QueryResult | None]":
        """Submit one task; get a future instead of joining a barrier.

        The returned :class:`concurrent.futures.Future` resolves to a
        :class:`~repro.mpr.results.QueryResult` for queries (every
        outcome — full answer, degraded ``PARTIAL``, shed
        ``OVERLOADED``, drain ``TIMEOUT``, crash ``ERROR`` — is a
        *result*, never an exception) and to ``None`` for updates once
        the drain that made them visible completes.  FCFS order across
        calls is preserved.  First call starts the completion pump and
        locks out the batch surface until :meth:`close`.
        """
        if self._pump is None:
            self.executor.start()
            self._pump = _CompletionPump(self.executor, **self._pump_options)
        return self._pump.submit(task)

    def run_results(
        self, tasks: Sequence[Task]
    ) -> dict[int, QueryResult]:
        """Execute a task stream; return enveloped per-query outcomes.

        The envelope-typed counterpart of :meth:`run`: one
        :class:`~repro.mpr.results.QueryResult` per query id, whatever
        the outcome.  Goes through :meth:`submit_async` when the pump
        is already running, else through one batch ``run()``.
        """
        if self._pump is not None:
            futures = [(task, self.submit_async(task)) for task in tasks]
            return {
                task.query_id: future.result()
                for task, future in futures
                if task.kind is TaskKind.QUERY
            }
        self.start()
        return envelope_answers(self.executor.run(tasks))

    def __enter__(self) -> "MPRSystem":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Live reconfiguration
    # ------------------------------------------------------------------
    def reconfigure(
        self,
        new_config: MPRConfig,
        *,
        trigger: str = "manual",
        warm_timeout: float = 10.0,
        retire_timeout: float = 10.0,
        wait_retire: bool = False,
        timeout: float = 30.0,
    ) -> ReconfigEvent:
        """Change the serving ``(x, y, z)`` live, without downtime.

        Process mode only.  On the batch surface this delegates to
        :meth:`ProcessPoolService.reconfigure
        <repro.mpr.process_executor.ProcessPoolService.reconfigure>`
        directly; once :meth:`submit_async` has started the completion
        pump, the request is enqueued FCFS with the task stream and
        executes between two drain cycles (queries already queued ride
        through the cutover in flight).  Returns the terminal
        :class:`~repro.mpr.reconfig.ReconfigEvent`; raises
        :class:`~repro.mpr.reconfig.ReconfigRejected` when refused and
        ``ValueError`` in thread mode.
        """
        kwargs = dict(
            trigger=trigger,
            warm_timeout=warm_timeout,
            retire_timeout=retire_timeout,
            wait_retire=wait_retire,
            timeout=timeout,
        )
        if self._pump is not None:
            return self._pump.reconfigure(new_config, **kwargs).result()
        reconfigure = getattr(self.executor, "reconfigure", None)
        if reconfigure is None:
            raise ValueError(
                f"executor mode {self.mode!r} does not support live "
                "reconfiguration; use mode='process'"
            )
        self.executor.start()
        return reconfigure(new_config, **kwargs)

    def enable_auto_reconfigure(
        self,
        profile: Any,
        machine: Any,
        *,
        policy: ReconfigPolicy | None = None,
        estimator: Any | None = None,
        interval: float | None = None,
    ) -> ReconfigManager:
        """Attach a :class:`~repro.mpr.reconfig.ReconfigManager`.

        The manager watches this system's telemetry (router counter
        deltas, resilience pressure counters), re-solves the Eq. 5/7
        optimization with hysteresis + cooldown, and calls
        :meth:`reconfigure` with an ``"auto"`` trigger when a switch
        clearly pays.  With ``interval=None`` (default) nothing runs by
        itself — call ``manager.poll()`` from your own loop (the soak
        harness drives synthetic time this way).  With an interval, a
        daemon thread polls continuously; that is only safe once the
        async surface owns the executor, so the completion pump is
        started as a side effect.  :meth:`close` stops the manager.
        """
        if self._manager is not None:
            return self._manager
        self._manager = ReconfigManager(
            self, profile, machine, policy=policy, estimator=estimator
        )
        if interval is not None:
            if self._pump is None:
                self.executor.start()
                self._pump = _CompletionPump(
                    self.executor, **self._pump_options
                )
            self._manager.start(interval)
        return self._manager

    @property
    def reconfig_history(self) -> list[ReconfigEvent]:
        """Audited shape changes, oldest first (empty in thread mode)."""
        return list(getattr(self.executor, "reconfig_history", ()) or ())

    def retune_batch_size(self, arrival_rate: float) -> int:
        """Adapt the pool's dispatch batch size to measured timings.

        Process mode only (the threaded path dispatches unbuffered):
        delegates to :meth:`ProcessPoolService.retune_batch_size
        <repro.mpr.process_executor.ProcessPoolService.retune_batch_size>`
        with this system's always-on telemetry, closing the
        measure → model → retune loop in one call.
        """
        retune = getattr(self.executor, "retune_batch_size", None)
        if retune is None:
            raise ValueError(
                f"executor mode {self.mode!r} has no batch size to tune"
            )
        return retune(arrival_rate)

    def stats(self) -> dict[str, Any]:
        """JSON-ready telemetry snapshot (stages, counters, traces).

        When the executor has reconfigured, a ``"reconfigurations"``
        list (one :meth:`~repro.mpr.reconfig.ReconfigEvent.to_dict`
        entry per attempt, oldest first) rides along.
        """
        stats = self.telemetry.summary()
        history = self.reconfig_history
        if history:
            stats["reconfigurations"] = [
                event.to_dict() for event in history
            ]
        return stats

    def report(self) -> str:
        """Human-readable per-stage latency table (+ reconfig history)."""
        from ..harness.report import telemetry_report

        text = telemetry_report(self.telemetry)
        history = self.reconfig_history
        if history:
            lines = ["reconfigurations:"]
            for event in history:
                old, new = event.old_config, event.new_config
                line = (
                    f"  [{event.trigger}] "
                    f"({old.x},{old.y},{old.z}) -> ({new.x},{new.y},{new.z})"
                    f"  {event.outcome}"
                )
                if event.reason:
                    line += f"  ({event.reason})"
                if event.generation is not None:
                    line += f"  gen={event.generation}"
                lines.append(line)
            text = text.rstrip("\n") + "\n\n" + "\n".join(lines) + "\n"
        return text

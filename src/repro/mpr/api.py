"""The unified executor API: one entry point for every MPR substrate.

Historically each executor had its own constructor with its own
argument order (solution-first) and its own lifecycle quirks; callers
picked a class, not a configuration.  This module inverts that:

* :func:`build_executor` — the one construction path.  Takes the
  arrangement first (``config`` is the decision MPR's optimizer makes;
  the substrate is an implementation detail), picks the substrate via
  ``mode``, and threads a :class:`repro.obs.Telemetry` through every
  layer it builds.  The legacy constructors remain as deprecation
  shims that forward here conceptually (they warn; this path does
  not).
* :class:`MPRSystem` — a convenience wrapper owning an executor plus a
  default-enabled telemetry handle, for scripts and notebooks that
  want answers *and* a latency report without wiring either.

Every executor built here satisfies the :class:`repro.mpr.executor.
MPRExecutor` contract: ``start()``/``submit()``/``flush()``/
``drain()``/``run()``/``close()`` plus the context-manager form, with
serial-equivalent answers across substrates.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..knn.base import KNNSolution, Neighbor
from ..objects.tasks import Task
from ..obs import Telemetry
from .config import MPRConfig
from .executor import MPRExecutor, ThreadedMPRExecutor
from .resilience import ResilienceConfig

__all__ = ["MPRSystem", "build_executor"]

#: The substrates ``build_executor`` knows how to realize.
EXECUTOR_MODES = ("thread", "process")


def build_executor(
    config: MPRConfig,
    solution: KNNSolution,
    objects: Mapping[int, int] | None = None,
    *,
    mode: str = "thread",
    telemetry: Telemetry | None = None,
    check_invariants: bool = False,
    batch_size: int = 16,
    start_method: str = "fork",
    share_graph: bool = True,
    health_check_interval: float = 0.05,
    max_respawns: int = 3,
    metrics: Any | None = None,
    resilience: ResilienceConfig | None = None,
) -> MPRExecutor:
    """Build an executor realizing ``config`` over the chosen substrate.

    Parameters
    ----------
    config:
        The ``(x, y, z)`` core-matrix arrangement to realize.
    solution:
        Prototype kNN solution; each worker gets ``solution.spawn``-ed
        onto its object cell.
    objects:
        Initial object placements ``object_id -> node`` (default: start
        empty and build state through insert tasks).
    mode:
        ``"thread"`` — in-process worker threads (functional semantics,
        GIL-bound); ``"process"`` — the persistent fault-tolerant
        process pool (real parallelism).
    telemetry:
        A :class:`repro.obs.Telemetry` recorded into by every layer
        (router, batcher, workers).  Default: the shared disabled
        handle, which keeps the hot path a single branch.
    check_invariants:
        Thread mode only: assert the Section IV-A partition/replication
        invariants after every ``run()``.
    batch_size, start_method, share_graph, health_check_interval, \
max_respawns, metrics:
        Process mode only: forwarded to the pool (see
        :class:`repro.mpr.process_executor.ProcessPoolService`).
    resilience:
        A :class:`repro.mpr.resilience.ResilienceConfig` enabling the
        resilience layer (``None`` disables it entirely).  Process mode
        gets the full behaviour — deadlines with hedged replica reads,
        admission-controlled shedding, circuit breakers with
        quarantine, a stall watchdog, and degraded
        :class:`~repro.knn.base.PartialResult` answers; thread mode
        realizes the subset that is meaningful without process faults
        (shedding and deadline-miss accounting).

    Returns
    -------
    MPRExecutor
        Unstarted; call ``start()`` or use the context-manager form.
    """
    if objects is None:
        objects = {}
    if mode == "thread":
        return ThreadedMPRExecutor._create(
            solution, config, objects,
            check_invariants=check_invariants, telemetry=telemetry,
            resilience=resilience,
        )
    if mode == "process":
        if check_invariants:
            raise ValueError(
                "check_invariants is only supported in thread mode"
            )
        from .process_executor import ProcessPoolService

        return ProcessPoolService._create(
            solution, config, objects,
            batch_size=batch_size,
            start_method=start_method,
            share_graph=share_graph,
            health_check_interval=health_check_interval,
            max_respawns=max_respawns,
            metrics=metrics,
            telemetry=telemetry,
            resilience=resilience,
        )
    raise ValueError(
        f"unknown executor mode {mode!r}; expected one of {EXECUTOR_MODES}"
    )


class MPRSystem:
    """An executor bundled with always-on telemetry and reporting.

    The two-line serving setup::

        with MPRSystem(config, solution, objects, mode="process") as system:
            answers = system.run(tasks)
            print(system.report())

    Accepts the same arguments as :func:`build_executor` but defaults
    ``telemetry`` to a fresh *enabled* handle — the wrapper exists to
    make the traced path the easy path.  All executor lifecycle methods
    delegate; :meth:`stats` and :meth:`report` expose the telemetry.
    """

    def __init__(
        self,
        config: MPRConfig,
        solution: KNNSolution,
        objects: Mapping[int, int] | None = None,
        *,
        mode: str = "thread",
        telemetry: Telemetry | None = None,
        **options: Any,
    ) -> None:
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.executor = build_executor(
            config, solution, objects,
            mode=mode, telemetry=self.telemetry, **options,
        )
        self.mode = mode

    @property
    def config(self) -> MPRConfig:
        return self.executor.config

    def start(self) -> "MPRSystem":
        self.executor.start()
        return self

    def close(self) -> None:
        self.executor.close()

    def submit(self, task: Task) -> None:
        self.executor.submit(task)

    def flush(self) -> None:
        self.executor.flush()

    def drain(self) -> dict[int, list[Neighbor]]:
        return self.executor.drain()

    def run(self, tasks: Sequence[Task]) -> dict[int, list[Neighbor]]:
        return self.executor.run(tasks)

    def __enter__(self) -> "MPRSystem":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def retune_batch_size(self, arrival_rate: float) -> int:
        """Adapt the pool's dispatch batch size to measured timings.

        Process mode only (the threaded path dispatches unbuffered):
        delegates to :meth:`ProcessPoolService.retune_batch_size
        <repro.mpr.process_executor.ProcessPoolService.retune_batch_size>`
        with this system's always-on telemetry, closing the
        measure → model → retune loop in one call.
        """
        retune = getattr(self.executor, "retune_batch_size", None)
        if retune is None:
            raise ValueError(
                f"executor mode {self.mode!r} has no batch size to tune"
            )
        return retune(arrival_rate)

    def stats(self) -> dict[str, Any]:
        """JSON-ready telemetry snapshot (stages, counters, traces)."""
        return self.telemetry.summary()

    def report(self) -> str:
        """Human-readable per-stage latency table."""
        from ..harness.report import telemetry_report

        return telemetry_report(self.telemetry)

"""A real threaded executor for the MPR core matrix.

This is the *functional* realization of MPR: actual worker threads with
FCFS queues, each running its own spawned kNN solution instance over
its object partition, with a scheduler routing tasks per Algorithms 1–3
and an aggregator merging partial answers.

Its purpose in this reproduction is **correctness**, not speed: CPython
threads share the GIL, so this executor cannot demonstrate the paper's
wall-clock speedups (that is the job of :mod:`repro.sim`, the
discrete-event model of the 19-core machine — DESIGN.md substitution
#1).  What it *does* demonstrate, and what the tests pin down, is the
paper's semantic claims: every scheme returns exactly the answers of a
serial execution in arrival order, for any solution and configuration.
"""

from __future__ import annotations

import queue
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..knn.base import KNNSolution, Neighbor, merge_partial_results
from ..objects.tasks import Task, TaskKind
from .config import MPRConfig
from .core_matrix import MPRRouter, QueryRoute, WorkerId, check_matrix_invariants

_SENTINEL = None


class MPRExecutor(ABC):
    """The contract every core-matrix executor satisfies.

    An executor realizes one MPR arrangement over some worker substrate
    (threads, processes, a simulator) and runs task streams through it.
    The contract — shared by :class:`ThreadedMPRExecutor` and
    :class:`repro.mpr.process_executor.ProcessPoolService`, and pinned
    by ``tests/test_executor_equivalence.py`` — is *serial
    equivalence*: ``run(tasks)`` returns exactly the answers of a
    single-threaded execution in arrival order (Section III), so
    executors are interchangeable wherever one is accepted.
    """

    @property
    @abstractmethod
    def config(self) -> MPRConfig:
        """The realized core-matrix arrangement."""

    @abstractmethod
    def run(self, tasks: Sequence[Task]) -> dict[int, list[Neighbor]]:
        """Execute a task stream; return ``query_id -> aggregated kNN``."""


@dataclass
class _QueryOp:
    query_id: int
    location: int
    k: int


@dataclass
class _InsertOp:
    object_id: int
    location: int


@dataclass
class _DeleteOp:
    object_id: int


class _Worker:
    """One w-core: a thread draining a FCFS queue into a solution."""

    def __init__(
        self,
        worker_id: WorkerId,
        solution: KNNSolution,
        results: "queue.Queue[tuple[int, WorkerId, list[Neighbor]]]",
    ) -> None:
        self.worker_id = worker_id
        self.solution = solution
        self.tasks: "queue.Queue[object]" = queue.Queue()
        self._results = results
        self.thread = threading.Thread(
            target=self._loop, name=f"w-core-{worker_id}", daemon=True
        )
        self.error: BaseException | None = None

    def start(self) -> None:
        self.thread.start()

    def _loop(self) -> None:
        try:
            while True:
                op = self.tasks.get()
                if op is _SENTINEL:
                    return
                if isinstance(op, _QueryOp):
                    partial = self.solution.query(op.location, op.k)
                    self._results.put((op.query_id, self.worker_id, partial))
                elif isinstance(op, _InsertOp):
                    self.solution.insert(op.object_id, op.location)
                else:
                    self.solution.delete(op.object_id)
        except BaseException as exc:  # surfaced by join()
            self.error = exc


class ThreadedMPRExecutor(MPRExecutor):
    """Run a task stream through a real multi-threaded core matrix.

    Parameters
    ----------
    solution:
        A prototype solution; each worker gets ``solution.spawn(cell)``.
    config:
        The core-matrix arrangement to realize.
    objects:
        Initial object placements (partitioned round-robin by column).
    check_invariants:
        When True, the partition/replication invariants of Section IV-A
        are asserted on the final worker contents.
    """

    def __init__(
        self,
        solution: KNNSolution,
        config: MPRConfig,
        objects: Mapping[int, int],
        check_invariants: bool = False,
    ) -> None:
        self._config = config
        self._router = MPRRouter(config)
        self._check_invariants = check_invariants
        contents = self._router.preload_objects(objects)
        self._results: "queue.Queue[tuple[int, WorkerId, list[Neighbor]]]" = (
            queue.Queue()
        )
        self._workers: dict[WorkerId, _Worker] = {
            worker_id: _Worker(worker_id, solution.spawn(cell), self._results)
            for worker_id, cell in contents.items()
        }

    @property
    def config(self) -> MPRConfig:
        return self._config

    def run(self, tasks: Sequence[Task]) -> dict[int, list[Neighbor]]:
        """Execute the stream; return ``query_id -> aggregated kNN``."""
        expected: dict[int, int] = {}
        ks: dict[int, int] = {}
        for worker in self._workers.values():
            worker.start()
        for task in tasks:
            route = self._router.route(task)
            if task.kind is TaskKind.QUERY:
                assert isinstance(route, QueryRoute)
                expected[task.query_id] = len(route.workers)
                ks[task.query_id] = task.k
                op = _QueryOp(task.query_id, task.location, task.k)
                for worker_id in route.workers:
                    self._workers[worker_id].tasks.put(op)
            elif task.kind is TaskKind.INSERT:
                op = _InsertOp(task.object_id, task.location)
                for worker_id in route.workers:
                    self._workers[worker_id].tasks.put(op)
            else:
                op = _DeleteOp(task.object_id)
                for worker_id in route.workers:
                    self._workers[worker_id].tasks.put(op)

        for worker in self._workers.values():
            worker.tasks.put(_SENTINEL)
        for worker in self._workers.values():
            worker.thread.join()
            if worker.error is not None:
                raise RuntimeError(
                    f"worker {worker.worker_id} failed"
                ) from worker.error

        # Aggregation (the a-core's job, done after the fact here).
        partials: dict[int, list[list[Neighbor]]] = {}
        while not self._results.empty():
            query_id, _worker_id, partial = self._results.get_nowait()
            partials.setdefault(query_id, []).append(partial)
        answers: dict[int, list[Neighbor]] = {}
        for query_id, parts in partials.items():
            if len(parts) != expected[query_id]:
                raise RuntimeError(
                    f"query {query_id}: {len(parts)} partials, "
                    f"expected {expected[query_id]}"
                )
            answers[query_id] = merge_partial_results(parts, ks[query_id])

        if self._check_invariants:
            contents = {
                worker_id: worker.solution.object_locations()
                for worker_id, worker in self._workers.items()
            }
            check_matrix_invariants(contents, self._config)
        return answers

    def worker_contents(self) -> dict[WorkerId, dict[int, int]]:
        """Final object placements per worker (after :meth:`run`)."""
        return {
            worker_id: worker.solution.object_locations()
            for worker_id, worker in self._workers.items()
        }


def run_serial_reference(
    solution: KNNSolution,
    objects: Mapping[int, int],
    tasks: Sequence[Task],
) -> dict[int, list[Neighbor]]:
    """Single-threaded serial execution in arrival order (the oracle).

    Section III requires every scheme's execution to be "equivalent to a
    serial execution in the tasks' arrival order"; this produces that
    serial baseline for tests to compare against.
    """
    instance = solution.spawn(objects)
    answers: dict[int, list[Neighbor]] = {}
    for task in tasks:
        if task.kind is TaskKind.QUERY:
            answers[task.query_id] = instance.query(task.location, task.k)
        elif task.kind is TaskKind.INSERT:
            instance.insert(task.object_id, task.location)
        else:
            instance.delete(task.object_id)
    return answers

"""A real threaded executor for the MPR core matrix.

This is the *functional* realization of MPR: actual worker threads with
FCFS queues, each running its own spawned kNN solution instance over
its object partition, with a scheduler routing tasks per Algorithms 1–3
and an aggregator merging partial answers.

Its purpose in this reproduction is **correctness**, not speed: CPython
threads share the GIL, so this executor cannot demonstrate the paper's
wall-clock speedups (that is the job of :mod:`repro.sim`, the
discrete-event model of the 19-core machine — DESIGN.md substitution
#1).  What it *does* demonstrate, and what the tests pin down, is the
paper's semantic claims: every scheme returns exactly the answers of a
serial execution in arrival order, for any solution and configuration.

Construction goes through :func:`repro.mpr.api.build_executor`; the
lifecycle —
``start()``/``submit()``/``flush()``/``drain()``/``close()`` plus the
context-manager form — is shared verbatim with the process pool, so the
two substrates are drop-in interchangeable.
"""

from __future__ import annotations

import queue
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..knn.base import KNNSolution, Neighbor, merge_partial_results
from ..objects.tasks import Task, TaskKind
from ..obs import NULL_TELEMETRY, Telemetry
from .config import MPRConfig
from .core_matrix import MPRRouter, QueryRoute, WorkerId, check_matrix_invariants
from .resilience import (
    NULL_RESILIENCE,
    Overloaded,
    ResilienceConfig,
    ResiliencePolicy,
)

_SENTINEL = None


class MPRExecutor(ABC):
    """The contract every core-matrix executor satisfies.

    An executor realizes one MPR arrangement over some worker substrate
    (threads, processes, a simulator) and runs task streams through it.
    The contract — shared by :class:`ThreadedMPRExecutor` and
    :class:`repro.mpr.process_executor.ProcessPoolService`, and pinned
    by ``tests/test_executor_equivalence.py`` — has two halves:

    * *serial equivalence*: ``run(tasks)`` returns exactly the answers
      of a single-threaded execution in arrival order (Section III), so
      executors are interchangeable wherever one is accepted;
    * *one lifecycle*: ``start()`` → any number of ``submit()`` /
      ``flush()`` / ``drain()`` / ``run()`` calls → ``close()``, with
      the context-manager form doing start/close automatically and
      ``close()`` idempotent.  ``telemetry`` exposes the
      :class:`repro.obs.Telemetry` handle the executor records into.
    """

    @property
    @abstractmethod
    def config(self) -> MPRConfig:
        """The realized core-matrix arrangement."""

    @property
    @abstractmethod
    def telemetry(self) -> Telemetry:
        """The telemetry handle (``NULL_TELEMETRY`` when disabled)."""

    @abstractmethod
    def start(self) -> "MPRExecutor":
        """Bring workers up (idempotent); return ``self``."""

    @abstractmethod
    def close(self) -> None:
        """Tear workers down; idempotent and safe without ``start()``."""

    @abstractmethod
    def submit(self, task: Task) -> None:
        """Route one task into the matrix (starts workers on demand)."""

    @abstractmethod
    def flush(self) -> None:
        """Release any buffered dispatch (latency over amortization)."""

    @abstractmethod
    def drain(self) -> dict[int, list[Neighbor]]:
        """Quiesce and return answers of queries since the last drain."""

    def run(self, tasks: Sequence[Task]) -> dict[int, list[Neighbor]]:
        """Execute a task stream; return ``query_id -> aggregated kNN``."""
        self.start()
        for task in tasks:
            self.submit(task)
        return self.drain()

    def __enter__(self) -> "MPRExecutor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class _QueryOp:
    query_id: int
    location: int
    k: int
    enqueued: float = 0.0


@dataclass
class _InsertOp:
    object_id: int
    location: int
    enqueued: float = 0.0


@dataclass
class _DeleteOp:
    object_id: int
    enqueued: float = 0.0


class _Barrier:
    """A quiesce marker: the worker sets the event when it dequeues it,
    proving everything enqueued before it has been executed.  Costs
    O(workers) per drain instead of per-op ``task_done()`` accounting,
    keeping the hot loop at seed cost."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


class _Worker:
    """One w-core: a thread draining a FCFS queue into a solution.

    The parent quiesces by enqueueing a :class:`_Barrier` and waiting
    on its event, so the loop itself carries no per-op accounting.
    After the first error the loop keeps consuming without executing
    (barriers still fire), and the stored exception surfaces on the
    next ``drain()``.
    """

    def __init__(
        self,
        worker_id: WorkerId,
        solution: KNNSolution,
        results: "queue.Queue[tuple]",
        telemetry: Telemetry,
    ) -> None:
        self.worker_id = worker_id
        self.solution = solution
        self.tasks: "queue.Queue[object]" = queue.Queue()
        self._results = results
        self._telemetry = telemetry
        # Batch query runs only for solutions that override the default
        # query_batch loop: the fallback *is* the per-query loop, so
        # run collection would add queue probes and list building for
        # zero kernel sharing (and the disabled-telemetry path is
        # pinned to seed cost by test_telemetry_overhead.py).
        self._batchable = (
            type(solution).query_batch is not KNNSolution.query_batch
        )
        self.thread = threading.Thread(
            target=self._loop, name=f"w-core-{worker_id}", daemon=True
        )
        self.error: BaseException | None = None

    def start(self) -> None:
        self.thread.start()

    def _loop(self) -> None:
        """Drain the FCFS queue, batching runs of consecutive queries.

        Each blocking ``get()`` is followed by an opportunistic
        non-blocking drain: every immediately-available consecutive
        query joins the current run, which executes as one
        ``query_batch`` call — under load a worker answers its whole
        backlog in a handful of kernel sweeps instead of one search per
        op.  A non-query op ends the run (it is carried over and
        handled next), so the per-worker serial order updates rely on
        is untouched; queries never mutate state, so grouping a run of
        them is equivalence-preserving.
        """
        telemetry = self._telemetry
        tasks = self.tasks
        batchable = self._batchable
        carry: object = None
        while True:
            if carry is not None:
                op, carry = carry, None
            else:
                op = tasks.get()
            if op is _SENTINEL:
                return
            if type(op) is _Barrier:
                op.event.set()
                continue
            if self.error is not None:
                continue  # drain without executing after a failure
            try:
                if isinstance(op, _QueryOp):
                    if batchable:
                        run = [op]
                        # The empty() pre-check keeps the unloaded hot
                        # path at one cheap lock probe instead of a
                        # raised queue.Empty per op.
                        while not tasks.empty():
                            try:
                                upcoming = tasks.get_nowait()
                            except queue.Empty:
                                break
                            if isinstance(upcoming, _QueryOp):
                                run.append(upcoming)
                            else:
                                carry = upcoming
                                break
                        self._execute_queries(run)
                    elif telemetry.enabled:
                        dequeued = time.monotonic()
                        started = time.monotonic()
                        partial = self.solution.query(op.location, op.k)
                        finished = time.monotonic()
                        self._results.put((
                            "partial", op.query_id, self.worker_id, partial,
                            (op.enqueued, dequeued, started, finished),
                        ))
                    else:
                        partial = self.solution.query(op.location, op.k)
                        self._results.put((
                            "partial", op.query_id, self.worker_id,
                            partial, None,
                        ))
                elif telemetry.enabled:
                    dequeued = time.monotonic()
                    started = time.monotonic()
                    if isinstance(op, _InsertOp):
                        self.solution.insert(op.object_id, op.location)
                    else:
                        self.solution.delete(op.object_id)
                    finished = time.monotonic()
                    self._results.put((
                        "update", self.worker_id,
                        (op.enqueued, dequeued, started, finished),
                    ))
                elif isinstance(op, _InsertOp):
                    self.solution.insert(op.object_id, op.location)
                else:
                    self.solution.delete(op.object_id)
            except BaseException as exc:  # surfaced by drain()
                self.error = exc

    def _execute_queries(self, run: list[_QueryOp]) -> None:
        """Answer one run of consecutive queries (one batch call).

        Singleton runs keep the exact per-query path and stamps.  For
        real batches the worker records one ``execute_batch`` span plus
        the queries-per-batch counters, and attributes each query an
        equal share of the batch time so its trace stays complete.
        """
        telemetry = self._telemetry
        solution = self.solution
        results = self._results
        if len(run) == 1:
            op = run[0]
            if telemetry.enabled:
                dequeued = time.monotonic()
                started = time.monotonic()
                partial = solution.query(op.location, op.k)
                finished = time.monotonic()
                results.put((
                    "partial", op.query_id, self.worker_id, partial,
                    (op.enqueued, dequeued, started, finished),
                ))
            else:
                partial = solution.query(op.location, op.k)
                results.put(
                    ("partial", op.query_id, self.worker_id, partial, None)
                )
            return
        locations = [op.location for op in run]
        ks = [op.k for op in run]
        if telemetry.enabled:
            dequeued = time.monotonic()
            started = time.monotonic()
            partials = solution.query_batch(locations, ks)
            finished = time.monotonic()
            telemetry.record("execute_batch", finished - started, start=started)
            telemetry.count("exec.batches")
            telemetry.count("exec.batch_queries", len(run))
            share = (finished - started) / len(run)
            for position, (op, partial) in enumerate(zip(run, partials)):
                t0 = started + position * share
                results.put((
                    "partial", op.query_id, self.worker_id, partial,
                    (op.enqueued, dequeued, t0, t0 + share),
                ))
        else:
            partials = solution.query_batch(locations, ks)
            for op, partial in zip(run, partials):
                results.put(
                    ("partial", op.query_id, self.worker_id, partial, None)
                )


class ThreadedMPRExecutor(MPRExecutor):
    """Run task streams through a real multi-threaded core matrix.

    Parameters
    ----------
    solution:
        A prototype solution; each worker gets ``solution.spawn(cell)``.
    config:
        The core-matrix arrangement to realize.
    objects:
        Initial object placements (partitioned round-robin by column).
    check_invariants:
        When True, the partition/replication invariants of Section IV-A
        are asserted on the worker contents after every :meth:`run`.
    telemetry:
        A :class:`repro.obs.Telemetry` to record spans into (default:
        the shared disabled handle — zero overhead).

    Workers are persistent: :meth:`start` spawns the threads once and
    any number of :meth:`submit`/:meth:`drain`/:meth:`run` calls reuse
    them until :meth:`close`.  ``flush()`` is a no-op — the threaded
    path dispatches per task, there is nothing buffered.

    Construct via :func:`repro.mpr.api.build_executor`
    (``mode="thread"``), the one public construction path; the direct
    constructor exists for the facade and for tests.
    """

    def __init__(
        self,
        solution: KNNSolution,
        config: MPRConfig,
        objects: Mapping[int, int],
        check_invariants: bool = False,
        *,
        telemetry: Telemetry | None = None,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        self._config = config
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # Threads neither crash nor stall the way processes do, so the
        # threaded realization of the resilience layer is admission
        # control (shed on deep worker queues) plus deadline-miss
        # accounting; hedges/breakers/degraded answers live in the
        # process pool, whose replicas actually fail independently.
        self._resilience = (
            ResiliencePolicy(resilience)
            if resilience is not None
            else NULL_RESILIENCE
        )
        self._shed: dict[int, Overloaded] = {}
        self._armed: dict[int, tuple[float, float]] = {}
        #: Queries that finished past their SLO (resilience only).
        self.deadline_misses = 0
        self._router = MPRRouter(config, telemetry=self._telemetry)
        self._check_invariants = check_invariants
        contents = self._router.preload_objects(objects)
        self._results: "queue.Queue[tuple]" = queue.Queue()
        self._workers: dict[WorkerId, _Worker] = {
            worker_id: _Worker(
                worker_id, solution.spawn(cell), self._results, self._telemetry
            )
            for worker_id, cell in contents.items()
        }
        #: Pending query bookkeeping since the last drain.
        self._expected: dict[int, int] = {}
        self._ks: dict[int, int] = {}
        self._started = False
        self._closed = False
        self._running = False  # fast flag for the per-submit start check

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def config(self) -> MPRConfig:
        return self._config

    @property
    def telemetry(self) -> Telemetry:
        return self._telemetry

    @property
    def running(self) -> bool:
        return self._started and not self._closed

    def start(self) -> "ThreadedMPRExecutor":
        if self._closed:
            raise RuntimeError("executor is closed")
        if not self._started:
            for worker in self._workers.values():
                worker.start()
            self._started = True
            self._running = True
        return self

    def close(self) -> None:
        """Stop every worker thread (idempotent, usable un-started)."""
        if self._closed:
            return
        self._closed = True
        self._running = False
        if not self._started:
            return
        for worker in self._workers.values():
            worker.tasks.put(_SENTINEL)
        for worker in self._workers.values():
            worker.thread.join()

    # ------------------------------------------------------------------
    # Dispatch and collection
    # ------------------------------------------------------------------
    def submit(self, task: Task) -> None:
        """Route one task to its workers' FCFS queues."""
        if not self._running:
            self.start()
        telemetry = self._telemetry
        if telemetry.enabled:
            dispatch_start = time.monotonic()
        route = self._router.route(task)
        if task.kind is TaskKind.QUERY:
            assert isinstance(route, QueryRoute)
            if self._resilience.enabled and self._admit(task, route) is False:
                return
            self._expected[task.query_id] = len(route.workers)
            self._ks[task.query_id] = task.k
            op = _QueryOp(task.query_id, task.location, task.k)
        elif task.kind is TaskKind.INSERT:
            op = _InsertOp(task.object_id, task.location)
        else:
            op = _DeleteOp(task.object_id)
        if telemetry.enabled:
            op.enqueued = time.monotonic()
            if task.kind is TaskKind.QUERY:
                telemetry.begin_trace(task.query_id, route.workers)
        for worker_id in route.workers:
            self._workers[worker_id].tasks.put(op)
        if telemetry.enabled:
            query_id = task.query_id if task.kind is TaskKind.QUERY else None
            telemetry.record(
                "dispatch",
                time.monotonic() - dispatch_start,
                start=dispatch_start,
                query_id=query_id,
            )

    def _admit(self, task: Task, route: QueryRoute) -> bool:
        """Admission + deadline arming for one query (resilience only).

        The per-worker FCFS queue depth *is* the outstanding-work
        ledger here, so the shed decision reads it directly: a query
        whose deepest target queue is at the bound is rejected with a
        typed :class:`Overloaded` answer.  Admitted queries with an SLO
        (task > resilience default > arrangement default) are armed for
        deadline-miss accounting at the next :meth:`drain`.
        """
        bound = self._resilience.config.max_outstanding
        if bound is not None:
            backlog = max(
                self._workers[worker_id].tasks.qsize()
                for worker_id in route.workers
            )
            if backlog >= bound:
                self._shed[task.query_id] = Overloaded(
                    task.query_id, backlog, bound
                )
                if self._telemetry.enabled:
                    self._telemetry.count("resilience.shed")
                return False
        slo = self._resilience.deadline_for(
            task.deadline, self._config.default_deadline
        )
        if slo is not None:
            self._armed[task.query_id] = (time.monotonic(), slo)
        return True

    def flush(self) -> None:
        """No-op: the threaded path dispatches per task, unbuffered."""

    def drain(self) -> dict[int, list[Neighbor]]:
        """Wait for every queue to empty; merge and return the answers."""
        self.start()
        barriers: list[_Barrier] = []
        for worker in self._workers.values():
            barrier = _Barrier()
            worker.tasks.put(barrier)
            barriers.append(barrier)
        for barrier in barriers:
            barrier.event.wait()
        for worker in self._workers.values():
            if worker.error is not None:
                raise RuntimeError(
                    f"worker {worker.worker_id} failed"
                ) from worker.error

        telemetry = self._telemetry
        partials: dict[int, list[list[Neighbor]]] = {}
        while not self._results.empty():
            message = self._results.get_nowait()
            if message[0] == "partial":
                _, query_id, worker_id, partial, stamps = message
                partials.setdefault(query_id, []).append(partial)
                if telemetry.enabled and stamps is not None:
                    self._record_stamps(query_id, worker_id, stamps)
            elif telemetry.enabled:  # ("update", worker_id, stamps)
                _, worker_id, stamps = message
                enqueued, dequeued, started, finished = stamps
                telemetry.record(
                    "queue_wait", dequeued - enqueued,
                    start=enqueued, worker=worker_id,
                )
                telemetry.record(
                    "update", finished - started,
                    start=started, worker=worker_id,
                )

        answers: dict[int, list[Neighbor]] = {}
        for query_id, parts in partials.items():
            if len(parts) != self._expected[query_id]:
                raise RuntimeError(
                    f"query {query_id}: {len(parts)} partials, "
                    f"expected {self._expected[query_id]}"
                )
            if telemetry.enabled:
                merge_start = time.monotonic()
                answers[query_id] = merge_partial_results(
                    parts, self._ks[query_id]
                )
                telemetry.record(
                    "merge", time.monotonic() - merge_start,
                    start=merge_start, query_id=query_id,
                )
                trace = telemetry.trace(query_id)
                if trace is not None:
                    telemetry.record("response", trace.response_time)
            else:
                answers[query_id] = merge_partial_results(
                    parts, self._ks[query_id]
                )
        self._expected.clear()
        self._ks.clear()
        if self._resilience.enabled:
            self._settle_resilient(answers)
        return answers

    def _settle_resilient(self, answers: dict[int, list[Neighbor]]) -> None:
        """Fold shed verdicts in; account deadline misses.

        With telemetry on, a query's miss is judged by its stitched
        trace (submit → last span); without traces the drain's own
        clock bounds the completion time from above — conservative, but
        it never misses a true miss.
        """
        now = time.monotonic()
        telemetry = self._telemetry
        for query_id, (submitted, slo) in self._armed.items():
            finished = None
            if telemetry.enabled:
                trace = telemetry.trace(query_id)
                if trace is not None and trace.spans:
                    finished = max(span.end for span in trace.spans)
            elapsed = (
                finished - submitted if finished is not None
                else now - submitted
            )
            if elapsed > slo:
                self.deadline_misses += 1
                if telemetry.enabled:
                    telemetry.count("resilience.deadline_misses")
        self._armed.clear()
        for query_id, overloaded in self._shed.items():
            answers[query_id] = overloaded
        self._shed.clear()

    def _record_stamps(
        self, query_id: int, worker_id: WorkerId, stamps: tuple
    ) -> None:
        """Stitch one worker's query timing tuple into the trace."""
        telemetry = self._telemetry
        enqueued, dequeued, started, finished = stamps
        telemetry.record(
            "queue_wait", dequeued - enqueued,
            start=enqueued, query_id=query_id, worker=worker_id,
        )
        telemetry.record(
            "execute", finished - started,
            start=started, query_id=query_id, worker=worker_id,
        )
        telemetry.record(
            "ack", time.monotonic() - finished,
            start=finished, query_id=query_id, worker=worker_id,
        )

    def run(self, tasks: Sequence[Task]) -> dict[int, list[Neighbor]]:
        """Execute the stream; return ``query_id -> aggregated kNN``."""
        answers = super().run(tasks)
        if self._check_invariants:
            check_matrix_invariants(self.worker_contents(), self._config)
        return answers

    def worker_contents(self) -> dict[WorkerId, dict[int, int]]:
        """Object placements per worker (valid after a drain)."""
        return {
            worker_id: worker.solution.object_locations()
            for worker_id, worker in self._workers.items()
        }


def run_serial_reference(
    solution: KNNSolution,
    objects: Mapping[int, int],
    tasks: Sequence[Task],
) -> dict[int, list[Neighbor]]:
    """Single-threaded serial execution in arrival order (the oracle).

    Section III requires every scheme's execution to be "equivalent to a
    serial execution in the tasks' arrival order"; this produces that
    serial baseline for tests to compare against.
    """
    instance = solution.spawn(objects)
    answers: dict[int, list[Neighbor]] = {}
    for task in tasks:
        if task.kind is TaskKind.QUERY:
            answers[task.query_id] = instance.query(task.location, task.k)
        elif task.kind is TaskKind.INSERT:
            instance.insert(task.object_id, task.location)
        else:
            instance.delete(task.object_id)
    return answers

"""Analytical models of Section IV-B: response time and throughput.

These are the formulas MPR solves to self-configure:

* **Equation 3** — M/G/1-style expected response time of a single FCFS
  queue serving a Poisson mixture of queries and updates (imported from
  the TOAIN paper [10]).
* **Equation 2 / Lemma 1** — the same formula mapped onto one w-core of
  a core matrix: per-core query rate ``λq / y`` and update rate
  ``λu / x``.
* **Equation 5** — ``Rq = F(x) = tw + τ·x``: mean query response time of
  a configuration.
* **Equation 7** — ``G(x)``: the maximum query arrival rate satisfying
  both the response-time bound (6a) and the capacity constraint (6b).

The multi-layer extension (Section IV-C) reduces the per-layer query
load to ``λq / z`` while updates replicate to every layer; the optimizer
enumerates ``z`` and solves the single-layer problem per layer.

Beyond the paper's two formulas we also model the *control-plane* cores
(scheduler writes, aggregator merges, dispatcher hops) as explicit
capacity constraints — the paper invokes these informally ("the
scheduler will be overloaded if (λq·x + λu·y)·τ' > 1", Section IV-C)
and they are what makes F-Rep throughput collapse to 0 in Table III.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..knn.calibration import AlgorithmProfile
from .config import MPRConfig, enumerate_configs

INFINITY = math.inf


@dataclass(frozen=True)
class MachineSpec:
    """Multicore machine characteristics.

    ``queue_write_time`` is the paper's τ' (one w-queue write by an
    s-core); ``merge_time`` is the a-core's time per partial result;
    ``dispatch_time`` is the d-core's time per dispatched task.  The
    model constant τ of Equation 1 is ``queue_write_time + merge_time``.
    The defaults reproduce the magnitudes of the paper's case study on
    its 2×10-core Xeon (see EXPERIMENTS.md).
    """

    total_cores: int = 19
    queue_write_time: float = 3e-6
    merge_time: float = 3e-6
    dispatch_time: float = 1e-6

    def __post_init__(self) -> None:
        if self.total_cores < 2:
            raise ValueError("need at least 2 cores (1 worker + 1 scheduler)")
        if min(self.queue_write_time, self.merge_time, self.dispatch_time) < 0:
            raise ValueError("per-operation times must be non-negative")

    @property
    def tau(self) -> float:
        """The τ of Equation 1 (scheduling + aggregation per partition)."""
        return self.queue_write_time + self.merge_time


@dataclass(frozen=True)
class Workload:
    """Arrival-rate characterization ``(λq, λu)`` of Section IV-B."""

    lambda_q: float
    lambda_u: float

    def __post_init__(self) -> None:
        if self.lambda_q < 0 or self.lambda_u < 0:
            raise ValueError("arrival rates must be non-negative")


def single_queue_response_time(
    lambda_q: float, lambda_u: float, profile: AlgorithmProfile
) -> float:
    """Equation 3: expected query response time of one FCFS queue.

    Returns ``inf`` when the queue is overloaded (utilization >= 1).
    """
    utilization = lambda_q * profile.tq + lambda_u * profile.tu
    if utilization >= 1.0:
        return INFINITY
    numerator = lambda_q * (profile.vq + profile.tq**2) + lambda_u * (
        profile.vu + profile.tu**2
    )
    return numerator / (2.0 * (1.0 - utilization)) + profile.tq


def worker_sojourn_time(
    config: MPRConfig, workload: Workload, profile: AlgorithmProfile
) -> float:
    """Equation 2 (Lemma 1): expected time a query spends at a w-core.

    Maps the single-queue formula onto a w-core: per-core query rate
    ``λq / (y·z)`` (rows within the layer times layers) and update rate
    ``λu / x``.
    """
    return single_queue_response_time(
        config.worker_query_rate(workload.lambda_q),
        config.worker_update_rate(workload.lambda_u),
        profile,
    )


def control_plane_overloaded(
    config: MPRConfig, workload: Workload, machine: MachineSpec
) -> bool:
    """True when the s-core, a-core, or d-core cannot keep up."""
    write_load = (
        config.scheduler_write_rate(workload.lambda_q, workload.lambda_u)
        * machine.queue_write_time
    )
    if write_load >= 1.0:
        return True
    merge_load = config.aggregator_merge_rate(workload.lambda_q) * machine.merge_time
    if merge_load >= 1.0:
        return True
    dispatch_load = (
        config.dispatcher_rate(workload.lambda_q, workload.lambda_u)
        * machine.dispatch_time
    )
    return dispatch_load >= 1.0


def response_time(
    config: MPRConfig,
    workload: Workload,
    profile: AlgorithmProfile,
    machine: MachineSpec,
) -> float:
    """Equation 5: ``Rq = tw + τ·x`` (``inf`` when any core overloads).

    When ``x = 1`` no aggregation happens, so only the queue-write
    component of τ applies (the paper's schemes drop the a-core there).
    """
    if config.total_cores > machine.total_cores:
        return INFINITY
    if control_plane_overloaded(config, workload, machine):
        return INFINITY
    tw = worker_sojourn_time(config, workload, profile)
    if math.isinf(tw):
        return INFINITY
    overhead = machine.queue_write_time * config.x
    if config.x > 1:
        overhead += machine.merge_time * config.x
    if config.z > 1:
        overhead += machine.dispatch_time
    return tw + overhead


def max_throughput_closed_form(
    config: MPRConfig,
    lambda_u: float,
    profile: AlgorithmProfile,
    machine: MachineSpec,
    rq_bound: float,
) -> float:
    """Equation 7's closed form, generalized to z layers.

    Solves constraints (6a) (response-time bound) and (6b) (worker
    capacity) for the largest admissible λq, then intersects with the
    control-plane capacity constraints.  Returns 0 when even λq = 0
    violates a constraint.
    """
    x, y, z = config.x, config.y, config.z
    tq, tu = profile.tq, profile.tu
    gamma_q, gamma_u = profile.gamma_q, profile.gamma_u

    overhead = machine.queue_write_time * x
    if x > 1:
        overhead += machine.merge_time * x
    if z > 1:
        overhead += machine.dispatch_time
    slack = rq_bound - tq - overhead
    if slack <= 0:
        return 0.0

    lambda_u_core = lambda_u / x
    if lambda_u_core * tu >= 1.0:
        return 0.0

    # (6b): per-core capacity. λq_core = λq / (y z).
    cap_capacity = (1.0 - lambda_u_core * tu) / tq * (y * z)

    # (6a): response-time bound, solved for λq (derivation in module doc).
    numerator = 2.0 * (1.0 - lambda_u_core * tu) * slack - lambda_u_core * tu * tu * (
        1.0 + gamma_u
    )
    if numerator <= 0:
        return 0.0
    denominator = tq * tq * (1.0 + gamma_q) + 2.0 * slack * tq
    cap_response = numerator / denominator * (y * z)

    # Control-plane capacity caps.
    caps = [cap_capacity, cap_response]
    if machine.queue_write_time > 0:
        scheduler_budget = 1.0 / machine.queue_write_time - lambda_u * y
        caps.append(max(scheduler_budget, 0.0) * z / x)
    if x > 1 and machine.merge_time > 0:
        caps.append(z / (x * machine.merge_time))
    if z > 1 and machine.dispatch_time > 0:
        caps.append(max(1.0 / machine.dispatch_time - z * lambda_u, 0.0))
    return max(min(caps), 0.0)


def max_throughput(
    config: MPRConfig,
    lambda_u: float,
    profile: AlgorithmProfile,
    machine: MachineSpec,
    rq_bound: float,
    tolerance: float = 1.0,
) -> float:
    """Maximum sustainable λq for a configuration (binary search).

    Cross-validates the closed form: searches the largest λq whose
    modelled response time stays within ``rq_bound`` and keeps every
    core under capacity.  Used by tests to confirm Equation 7 and by the
    optimizer when profiles are empirical.
    """
    def feasible(lambda_q: float) -> bool:
        rt = response_time(config, Workload(lambda_q, lambda_u), profile, machine)
        return rt <= rq_bound

    if not feasible(0.0):
        return 0.0
    low, high = 0.0, 1.0
    while feasible(high):
        low = high
        high *= 2.0
        if high > 1e12:
            return high
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if feasible(mid):
            low = mid
        else:
            high = mid
    return low


def max_update_rate(
    config: MPRConfig,
    lambda_q: float,
    profile: AlgorithmProfile,
    machine: MachineSpec,
    rq_bound: float,
    tolerance: float = 1.0,
) -> float:
    """Largest λu sustainable at a fixed λq under the response bound.

    The dual of Equation 7 — useful for capacity questions phrased as
    "how many position updates can we absorb at this query load?".
    """
    def feasible(lambda_u: float) -> bool:
        rt = response_time(config, Workload(lambda_q, lambda_u), profile, machine)
        return rt <= rq_bound

    if not feasible(0.0):
        return 0.0
    low, high = 0.0, 1.0
    while feasible(high):
        low = high
        high *= 2.0
        if high > 1e12:
            return high
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if feasible(mid):
            low = mid
        else:
            high = mid
    return low


def feasible_frontier(
    config: MPRConfig,
    profile: AlgorithmProfile,
    machine: MachineSpec,
    rq_bound: float,
    num_points: int = 9,
) -> list[tuple[float, float]]:
    """Sample the (λq, λu) feasibility frontier of a configuration.

    Returns ``num_points`` points ``(λq, λu_max(λq))`` with λq spread
    from 0 to the configuration's zero-update maximum throughput.  The
    region under the curve is where the configuration meets ``rq_bound``.
    """
    if num_points < 2:
        raise ValueError("num_points must be at least 2")
    peak_lambda_q = max_throughput_closed_form(
        config, 0.0, profile, machine, rq_bound
    )
    frontier: list[tuple[float, float]] = []
    for step in range(num_points):
        lambda_q = peak_lambda_q * step / (num_points - 1)
        # Back off a hair from the open boundary at the final point.
        probe = min(lambda_q, peak_lambda_q * 0.999)
        frontier.append(
            (probe, max_update_rate(config, probe, profile, machine, rq_bound))
        )
    return frontier


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of MPR's self-configuration."""

    config: MPRConfig
    objective_value: float
    evaluations: dict[MPRConfig, float]


def optimize_response_time(
    workload: Workload,
    profile: AlgorithmProfile,
    machine: MachineSpec,
    max_layers: int | None = None,
    fixed_layers: int | None = None,
) -> OptimizationResult:
    """Pick the configuration minimizing Equation 5's ``Rq``.

    ``fixed_layers = 1`` yields 1MPR; ``None`` explores all layer counts
    (full MPR).  Ties are broken toward fewer total cores, then fewer
    layers (a deterministic, resource-frugal choice).
    """
    evaluations: dict[MPRConfig, float] = {}
    for config in enumerate_configs(machine.total_cores, max_layers=max_layers):
        if fixed_layers is not None and config.z != fixed_layers:
            continue
        evaluations[config] = response_time(config, workload, profile, machine)
    if not evaluations:
        raise ValueError("no feasible configuration for this machine")
    best = min(
        evaluations,
        key=lambda c: (evaluations[c], c.total_cores, c.z, c.x),
    )
    return OptimizationResult(best, evaluations[best], evaluations)


def optimize_throughput(
    lambda_u: float,
    profile: AlgorithmProfile,
    machine: MachineSpec,
    rq_bound: float = 0.1,
    max_layers: int | None = None,
    fixed_layers: int | None = None,
) -> OptimizationResult:
    """Pick the configuration maximizing Equation 7's throughput bound."""
    evaluations: dict[MPRConfig, float] = {}
    for config in enumerate_configs(machine.total_cores, max_layers=max_layers):
        if fixed_layers is not None and config.z != fixed_layers:
            continue
        evaluations[config] = max_throughput_closed_form(
            config, lambda_u, profile, machine, rq_bound
        )
    if not evaluations:
        raise ValueError("no feasible configuration for this machine")
    best = max(
        evaluations,
        key=lambda c: (evaluations[c], -c.total_cores, -c.z, -c.x),
    )
    return OptimizationResult(best, evaluations[best], evaluations)

"""MPR configurations ``(x, y, z)`` and their core accounting.

Section V-B: "An MPR configuration (x, y, z) uses xyz (w-cores) + 1
(d-core) + z (s-cores) + z (a-cores) cores.  The exceptions are when
x = 1, no a-cores are used and when z = 1, no d-core is used."

The enumeration below reproduces the paper's configuration space: for
every layer count ``z`` and partition count ``x``, the replica count
``y`` is the largest that fits the core budget.  With 19 cores and
``max_layers = 5`` this yields exactly the 31 configurations of
Figure 4 (the paper does not spell out its layer cap; 5 is the value
that matches its count — see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class MPRConfig:
    """A core-matrix arrangement: x partitions, y replicas, z layers.

    ``default_deadline`` is the arrangement-level query SLO in seconds
    (the target the resilience layer enforces per query when neither
    the task nor the :class:`~repro.mpr.resilience.ResilienceConfig`
    names one).  It is execution policy, not geometry: it never
    participates in ordering, equality, or core accounting.
    """

    x: int
    y: int
    z: int
    default_deadline: float | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.x < 1 or self.y < 1 or self.z < 1:
            raise ValueError(f"x, y, z must all be >= 1, got {self}")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be positive, got {self.default_deadline}"
            )

    # ------------------------------------------------------------------
    # Core accounting (Section V-B)
    # ------------------------------------------------------------------
    @property
    def worker_cores(self) -> int:
        return self.x * self.y * self.z

    @property
    def dispatcher_cores(self) -> int:
        return 1 if self.z > 1 else 0

    @property
    def scheduler_cores(self) -> int:
        return self.z

    @property
    def aggregator_cores(self) -> int:
        return self.z if self.x > 1 else 0

    @property
    def total_cores(self) -> int:
        return (
            self.worker_cores
            + self.dispatcher_cores
            + self.scheduler_cores
            + self.aggregator_cores
        )

    # ------------------------------------------------------------------
    # Derived rates: how the single stream splits across cores
    # ------------------------------------------------------------------
    def worker_query_rate(self, lambda_q: float) -> float:
        """Query arrival rate at one w-core (queries fan out over rows
        and layers; every w-core of the chosen row serves the query)."""
        return lambda_q / (self.y * self.z)

    def worker_update_rate(self, lambda_u: float) -> float:
        """Update arrival rate at one w-core (updates are split over the
        x columns but replicated across rows and layers)."""
        return lambda_u / self.x

    def scheduler_write_rate(self, lambda_q: float, lambda_u: float) -> float:
        """w-queue writes per second performed by one s-core.

        A layer's s-core writes x queues per query routed to its layer
        (rate λq / z) and y queues per update (updates reach every
        layer).  Section IV-C's overload condition is this rate times
        the per-write time exceeding 1.
        """
        return (lambda_q / self.z) * self.x + lambda_u * self.y

    def aggregator_merge_rate(self, lambda_q: float) -> float:
        """Partial results merged per second by one a-core."""
        if self.x == 1:
            return 0.0
        return (lambda_q / self.z) * self.x

    def dispatcher_rate(self, lambda_q: float, lambda_u: float) -> float:
        """Tasks per second handled by the d-core (updates hit all layers)."""
        if self.z == 1:
            return 0.0
        return lambda_q + lambda_u * self.z

    def describe(self) -> str:
        return (
            f"x={self.x} y={self.y} z={self.z} "
            f"(w={self.worker_cores}, d={self.dispatcher_cores}, "
            f"s={self.scheduler_cores}, a={self.aggregator_cores}, "
            f"total={self.total_cores})"
        )


def max_replicas(total_cores: int, x: int, z: int) -> int:
    """Largest y such that ``MPRConfig(x, y, z)`` fits ``total_cores``."""
    overhead = (1 if z > 1 else 0) + z + (z if x > 1 else 0)
    budget = total_cores - overhead
    return budget // (x * z)


def enumerate_configs(
    total_cores: int, max_layers: int | None = None
) -> list[MPRConfig]:
    """All maximal-y configurations that fit the core budget.

    For each ``(x, z)`` the configuration with the largest feasible
    ``y`` is kept (smaller y wastes cores and is never better under the
    models).  ``max_layers`` bounds z; with ``total_cores=19`` and
    ``max_layers=5`` this returns the paper's 31 configurations.
    """
    if total_cores < 2:
        return []
    configs: list[MPRConfig] = []
    z = 0
    while True:
        z += 1
        if max_layers is not None and z > max_layers:
            break
        found_for_z = False
        x = 0
        while True:
            x += 1
            y = max_replicas(total_cores, x, z)
            if y < 1:
                break
            configs.append(MPRConfig(x, y, z))
            found_for_z = True
        if not found_for_z:
            break
    return configs


def full_replication_config(total_cores: int) -> MPRConfig:
    """F-Rep: one partition, all available workers as replicas, one layer."""
    y = max_replicas(total_cores, x=1, z=1)
    if y < 1:
        raise ValueError(f"{total_cores} cores cannot host F-Rep")
    return MPRConfig(1, y, 1)


def full_partitioning_config(total_cores: int) -> MPRConfig:
    """F-Part: one replica, all available workers as partitions, one layer."""
    overhead = 1 + 1  # s-core + a-core (x > 1 in any non-trivial case)
    x = total_cores - overhead
    if x < 1:
        raise ValueError(f"{total_cores} cores cannot host F-Part")
    if x == 1:
        return MPRConfig(1, 1, 1)
    return MPRConfig(x, 1, 1)

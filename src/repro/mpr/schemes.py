"""The four multiprocessing schemes: F-Rep, F-Part, 1MPR, MPR.

A *scheme* is a recipe that turns (machine, workload, algorithm
profile, target measure) into a concrete :class:`MPRConfig`:

* **F-Rep** — full replication: ``x = 1``, every available worker a
  replica row (Section III);
* **F-Part** — full partitioning: ``y = 1``, every available worker a
  partition column;
* **1MPR** — MPR restricted to a single layer (``z = 1``), configured
  by the Section IV-B optimization;
* **MPR** — the full multi-layer scheme, enumerating ``z`` and solving
  the per-layer optimization (Section IV-C).

F-Rep and F-Part ignore the workload (that rigidity is the paper's
point); the MPR variants self-configure from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..knn.calibration import AlgorithmProfile
from .analysis import (
    MachineSpec,
    OptimizationResult,
    Workload,
    optimize_response_time,
    optimize_throughput,
)
from .config import (
    MPRConfig,
    full_partitioning_config,
    full_replication_config,
)

#: Layer cap used when enumerating full-MPR configurations, chosen to
#: match the paper's 31-configuration space on 19 cores (see config.py).
DEFAULT_MAX_LAYERS = 5


class Objective(Enum):
    """The target macro measure of Section I."""

    RESPONSE_TIME = "response-time"
    THROUGHPUT = "throughput"


class Scheme(Enum):
    F_REP = "F-Rep"
    F_PART = "F-Part"
    ONE_MPR = "1MPR"
    MPR = "MPR"


@dataclass(frozen=True)
class SchemeChoice:
    """A scheme's configuration decision for a given environment."""

    scheme: Scheme
    config: MPRConfig
    objective: Objective
    predicted_value: float


def configure_scheme(
    scheme: Scheme,
    workload: Workload,
    profile: AlgorithmProfile,
    machine: MachineSpec,
    objective: Objective = Objective.RESPONSE_TIME,
    rq_bound: float = 0.1,
    max_layers: int = DEFAULT_MAX_LAYERS,
) -> SchemeChoice:
    """Resolve a scheme to a concrete configuration.

    For F-Rep / F-Part the configuration is fixed by the core budget;
    ``predicted_value`` still reports the model's estimate under it (so
    benches can show the predicted overload).  For 1MPR / MPR the
    configuration is the optimizer's pick for ``objective``.
    """
    from .analysis import max_throughput_closed_form, response_time

    if scheme is Scheme.F_REP or scheme is Scheme.F_PART:
        if scheme is Scheme.F_REP:
            config = full_replication_config(machine.total_cores)
        else:
            config = full_partitioning_config(machine.total_cores)
        if objective is Objective.RESPONSE_TIME:
            value = response_time(config, workload, profile, machine)
        else:
            value = max_throughput_closed_form(
                config, workload.lambda_u, profile, machine, rq_bound
            )
        return SchemeChoice(scheme, config, objective, value)

    fixed_layers = 1 if scheme is Scheme.ONE_MPR else None
    result: OptimizationResult
    if objective is Objective.RESPONSE_TIME:
        result = optimize_response_time(
            workload, profile, machine,
            max_layers=max_layers, fixed_layers=fixed_layers,
        )
    else:
        result = optimize_throughput(
            workload.lambda_u, profile, machine,
            rq_bound=rq_bound, max_layers=max_layers, fixed_layers=fixed_layers,
        )
    return SchemeChoice(scheme, result.config, objective, result.objective_value)


def configure_all_schemes(
    workload: Workload,
    profile: AlgorithmProfile,
    machine: MachineSpec,
    objective: Objective = Objective.RESPONSE_TIME,
    rq_bound: float = 0.1,
    max_layers: int = DEFAULT_MAX_LAYERS,
) -> dict[Scheme, SchemeChoice]:
    """Configuration decisions of all four schemes (bench convenience)."""
    return {
        scheme: configure_scheme(
            scheme, workload, profile, machine,
            objective=objective, rq_bound=rq_bound, max_layers=max_layers,
        )
        for scheme in Scheme
    }

"""Generic (irregular) worker groupings — Section IV-C's optimality claim.

"A more generic grouping of the η w-cores would allow groups (rows)
with different numbers of workers.  Moreover, the query loads assigned
to the groups could also be different. [...] We can show that the
optimal configuration of our rectangular core matrix structure is
optimal in query response time under any generic grouping schemes."

This module models those irregular arrangements analytically so the
claim can be exercised: a :class:`GenericGrouping` assigns each group
``g`` a worker count ``n_g`` (its partition width) and a query share
``p_g``; each group holds a full replica partitioned ``n_g`` ways and
updates are split within each group.  The expected query response time
follows the same M/G/1 mapping as Equation 2, applied per group and
averaged by query share.

:func:`random_grouping` and :func:`proportional_shares` provide the
adversaries; tests and the ablation bench check that no sampled
generic grouping beats the optimal rectangular configuration.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from ..knn.calibration import AlgorithmProfile
from .analysis import MachineSpec, Workload, single_queue_response_time
from .config import MPRConfig


@dataclass(frozen=True)
class GenericGrouping:
    """An irregular one-layer arrangement of worker cores.

    ``group_sizes[g]`` is the number of partition columns in group g;
    ``query_shares[g]`` is the fraction of the query stream routed to
    it.  A rectangular core matrix (x, y) is the special case of y
    groups of size x with equal shares.
    """

    group_sizes: tuple[int, ...]
    query_shares: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.group_sizes:
            raise ValueError("need at least one group")
        if len(self.group_sizes) != len(self.query_shares):
            raise ValueError("group_sizes and query_shares must align")
        if any(size < 1 for size in self.group_sizes):
            raise ValueError("group sizes must be positive")
        if any(share < 0 for share in self.query_shares):
            raise ValueError("query shares must be non-negative")
        total = sum(self.query_shares)
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
            raise ValueError(f"query shares must sum to 1, got {total}")

    @property
    def worker_cores(self) -> int:
        return sum(self.group_sizes)

    @classmethod
    def rectangular(cls, config: MPRConfig) -> "GenericGrouping":
        """The grouping equivalent of a single-layer core matrix."""
        if config.z != 1:
            raise ValueError("generic groupings model single-layer schemes")
        share = 1.0 / config.y
        return cls((config.x,) * config.y, (share,) * config.y)


def grouping_response_time(
    grouping: GenericGrouping,
    workload: Workload,
    profile: AlgorithmProfile,
    machine: MachineSpec,
) -> float:
    """Expected query response time of a generic grouping.

    Per group g: query rate ``p_g λq`` hits all ``n_g`` workers of the
    group; updates are split within the group (rate ``λu / n_g`` per
    worker).  The group's sojourn follows Equation 3 per worker; the
    scheme-level mean weights groups by their query share.  Scheduling
    and aggregation overhead mirrors Equation 1: ``τ · n_g``.
    Returns ``inf`` when any worker or the scheduler overloads.
    """
    lambda_q, lambda_u = workload.lambda_q, workload.lambda_u
    # Scheduler: one write per worker of the chosen group per query,
    # one write per group-column... updates are written once per group
    # (then one queue per group member row — single layer: one row per
    # group), i.e. one write per group per update.
    write_rate = (
        sum(
            share * lambda_q * size
            for share, size in zip(grouping.query_shares, grouping.group_sizes)
        )
        + lambda_u * len(grouping.group_sizes)
    )
    if write_rate * machine.queue_write_time >= 1.0:
        return math.inf

    mean = 0.0
    for size, share in zip(grouping.group_sizes, grouping.query_shares):
        group_query_rate = share * lambda_q
        per_worker_update_rate = lambda_u / size
        sojourn = single_queue_response_time(
            group_query_rate, per_worker_update_rate, profile
        )
        if math.isinf(sojourn):
            return math.inf
        overhead = machine.queue_write_time * size
        if size > 1:
            overhead += machine.merge_time * size
        mean += share * (sojourn + overhead)
    return mean


def proportional_shares(group_sizes: Sequence[int]) -> tuple[float, ...]:
    """Query shares proportional to group size (a natural policy)."""
    total = sum(group_sizes)
    if total <= 0:
        raise ValueError("group sizes must be positive")
    return tuple(size / total for size in group_sizes)


def equal_shares(num_groups: int) -> tuple[float, ...]:
    if num_groups < 1:
        raise ValueError("need at least one group")
    return (1.0 / num_groups,) * num_groups


def random_grouping(
    worker_budget: int, rng: random.Random, max_group: int = 6
) -> GenericGrouping:
    """A random irregular grouping of exactly ``worker_budget`` workers.

    Group sizes are random in ``1..max_group``; query shares are drawn
    from a Dirichlet-like renormalized uniform sample, so both the
    structure and the load split are adversarial.
    """
    if worker_budget < 1:
        raise ValueError("worker budget must be positive")
    sizes: list[int] = []
    remaining = worker_budget
    while remaining > 0:
        size = rng.randint(1, min(remaining, max_group))
        sizes.append(size)
        remaining -= size
    raw = [rng.uniform(0.2, 1.0) for _ in sizes]
    total = sum(raw)
    shares = tuple(value / total for value in raw)
    # Renormalize exactly (guard against float drift).
    correction = 1.0 - sum(shares)
    shares = shares[:-1] + (shares[-1] + correction,)
    return GenericGrouping(tuple(sizes), shares)


def best_rectangular(
    worker_budget: int,
    workload: Workload,
    profile: AlgorithmProfile,
    machine: MachineSpec,
) -> tuple[GenericGrouping, float]:
    """The best rectangular grouping of at most ``worker_budget`` workers."""
    best: GenericGrouping | None = None
    best_value = math.inf
    for x in range(1, worker_budget + 1):
        y = worker_budget // x
        if y < 1:
            break
        grouping = GenericGrouping.rectangular(MPRConfig(x, y, 1))
        value = grouping_response_time(grouping, workload, profile, machine)
        if value < best_value:
            best, best_value = grouping, value
    if best is None:  # pragma: no cover - worker_budget >= 1 guarantees one
        raise ValueError("no rectangular grouping fits the budget")
    return best, best_value

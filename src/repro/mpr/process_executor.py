"""A persistent, fault-tolerant multiprocessing executor.

The threaded executor (:mod:`repro.mpr.executor`) proves functional
correctness but cannot show wall-clock speedup under CPython's GIL.
:class:`ProcessPoolService` runs each w-core as an OS *process* — the
literal "multi-processing" of the paper's title — and keeps it alive
across calls, the way a serving system would:

* **persistent workers** — processes start once (``start()`` or the
  context manager) and serve any number of ``run()``/``submit()``
  calls; the road network and each worker's object partition are
  pickled to the child once, mirroring MPR's one-time replica
  construction;
* **batched dispatch** — one queue message carries up to
  ``batch_size`` tasks, amortizing the ~tens-of-μs per-message pickle
  and queue cost (the τ' the paper models, magnified ~1000× by
  ``multiprocessing``) over the batch; ``flush()`` releases partial
  batches for latency-sensitive streams;
* **supervision** — the parent polls worker liveness while waiting on
  results; a dead worker (crash, SIGKILL) is respawned from its
  replica's object cell and the in-flight batches are replayed, so
  final answers are indistinguishable from a fault-free run.

Results travel over one dedicated ``Pipe`` per worker rather than a
shared result ``Queue``.  A shared queue serializes every worker's acks
through one cross-process write lock, and a worker SIGKILLed inside
that critical section leaks the semaphore forever — deadlocking every
*surviving* worker's acks (observed deterministically in the respawn
tests).  With one pipe per worker there is exactly one writer per
channel, no lock to leak, and a crash can only corrupt the dead
worker's own pipe, which the respawn replaces wholesale.

Fault-tolerance argument, in MPR's own terms: every ``(layer, column)``
cell is replicated across the ``y`` rows (Section IV-A), so a worker's
object set is never lost with the process.  The service keeps the
authoritative copy of each cell — its initial contents plus every
*acknowledged* update batch — which is exactly the state any row
sibling holds.  A respawned worker is ``solution.spawn``-ed from that
cell and replays the unacknowledged batch suffix in FCFS order;
because solutions are deterministic, the replayed partials equal the
lost ones (duplicates from ack races are idempotent and deduplicated
per ``(query, worker)``).

Per-stage timings and counters stream into a
:class:`repro.harness.PoolMetrics`, which the benchmarks and the DES
calibration (:func:`repro.sim.measurement.machine_spec_from_pool`)
consume.

Use :func:`run_batch_speedup` for the historical headline
demonstration (1 vs N workers); :class:`ProcessMPRExecutor` remains as
the one-shot compatibility wrapper.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import warnings
from multiprocessing import connection as mp_connection
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..graph.kernels import KERNEL_CALLS
from ..harness.metrics import PoolMetrics
from ..knn.base import KNNSolution, Neighbor, merge_partial_results
from ..objects.tasks import Task, TaskKind
from ..obs import NULL_TELEMETRY, Telemetry
from .config import MPRConfig
from .core_matrix import (
    MPRRouter,
    QueryRoute,
    RouteBatcher,
    WorkerBatch,
    WorkerId,
)
from .executor import MPRExecutor

_STOP = ("stop",)


def _run_ops(solution, ops, partials, op_timings, monotonic) -> None:
    """Execute one batch's ops, grouping consecutive queries.

    Maximal runs of back-to-back queries are answered by one
    ``solution.query_batch`` call (shared kernel sweeps); updates and
    singleton queries keep the per-op path.  Queries never mutate
    state, so grouping a run preserves the batch's serial semantics —
    updates still execute at exactly their FCFS position.

    When ``op_timings`` is a list, timing entries are appended:
    ``("q", query_id, t0, t1)`` for a singleton query, ``("qb",
    (query_ids...), t0, t1)`` for a grouped run, ``("u", t0, t1)`` for
    an update.  ``None`` skips all clock reads (telemetry disabled).
    """
    index = 0
    total = len(ops)
    while index < total:
        op = ops[index]
        if op[0] != "query":
            started = monotonic() if op_timings is not None else 0.0
            if op[0] == "insert":
                solution.insert(op[1], op[2])
            else:
                solution.delete(op[1])
            if op_timings is not None:
                op_timings.append(("u", started, monotonic()))
            index += 1
            continue
        end = index + 1
        while end < total and ops[end][0] == "query":
            end += 1
        run = ops[index:end]
        started = monotonic() if op_timings is not None else 0.0
        if len(run) == 1:
            _, query_id, location, k = run[0]
            partials.append((query_id, solution.query(location, k)))
            if op_timings is not None:
                op_timings.append(("q", query_id, started, monotonic()))
        else:
            answers = solution.query_batch(
                [op[2] for op in run], [op[3] for op in run]
            )
            for op, answer in zip(run, answers):
                partials.append((op[1], answer))
            if op_timings is not None:
                op_timings.append(
                    ("qb", tuple(op[1] for op in run), started, monotonic())
                )
        index = end


def _worker_main(
    solution: KNNSolution, worker_id, inbox, results, stamp_timings: bool = False
) -> None:
    """Child process: serve batches until told to stop.

    One ``("batch", seq, ops)`` message is acknowledged by one
    ``("done", worker_id, seq, partials)`` message carrying every query
    partial of the batch — the ack doubles as the result envelope, so
    the return path is batch-amortized too.  Runs of consecutive
    queries inside a batch execute as one ``query_batch`` call (see
    :func:`_run_ops`).  ``results`` is this worker's private pipe end:
    no lock is shared with sibling workers, so this process dying
    mid-send cannot wedge anyone else.

    With ``stamp_timings`` (telemetry enabled in the parent) the ack
    grows a compact timing tuple — ``(t_recv, t_ack_send, per-op
    timings, kernel_delta)`` in the shared ``time.monotonic`` clock —
    from which the parent stitches ``queue_wait``/``execute``/``ack``
    spans.  Per-op entries are ``("q", query_id, t0, t1)`` for
    singleton queries, ``("qb", (query_ids...), t0, t1)`` for grouped
    query runs, and ``("u", t0, t1)`` for updates; ``kernel_delta`` is
    this batch's increment to the child's ``KERNEL_CALLS`` diagnostic
    counters, which the parent folds into its own copy (fork gives each
    child separate counter memory).
    """
    monotonic = time.monotonic
    while True:
        message = inbox.get()
        received = monotonic() if stamp_timings else 0.0
        kind = message[0]
        if kind == "stop":
            results.send(("stopped", worker_id))
            return
        if kind != "batch":  # pragma: no cover - protocol guard
            results.send(("error", worker_id, -1, f"unknown message {kind!r}"))
            return
        _, seq, ops = message
        partials = []
        try:
            if stamp_timings:
                op_timings: list[tuple] = []
                kernel_before = dict(KERNEL_CALLS)
                _run_ops(solution, ops, partials, op_timings, monotonic)
                kernel_delta = {
                    name: count - kernel_before.get(name, 0)
                    for name, count in KERNEL_CALLS.items()
                    if count != kernel_before.get(name, 0)
                }
            else:
                _run_ops(solution, ops, partials, None, monotonic)
        except Exception as exc:
            results.send(("error", worker_id, seq, repr(exc)))
            return
        if stamp_timings:
            results.send((
                "done", worker_id, seq, partials,
                (received, monotonic(), op_timings, kernel_delta),
            ))
        else:
            results.send(("done", worker_id, seq, partials))


class _WorkerState:
    """Parent-side ledger for one w-core: process + replica cell + log."""

    def __init__(self, worker_id: WorkerId, cell: Mapping[int, int]) -> None:
        self.worker_id = worker_id
        #: The replica's object cell: initial contents plus every
        #: acknowledged update — the state a respawn restarts from.
        self.cell: dict[int, int] = dict(cell)
        #: Dispatched-but-unacknowledged batches, in seq order.
        self.unacked: dict[int, tuple] = {}
        #: Monotonic send stamp per in-flight batch (telemetry only).
        self.sent_at: dict[int, float] = {}
        self.next_seq = 0
        self.respawns = 0
        self.failed: str | None = None
        self.process: mp.process.BaseProcess | None = None
        self.inbox = None
        #: Parent-held read end of this worker's private result pipe.
        self.reader = None

    def acknowledge(self, seq: int) -> bool:
        """Apply an ack: advance the durable cell past batch ``seq``.

        Returns False for a duplicate ack (a replayed batch whose
        original ack survived the crash) — those are ignored.
        """
        ops = self.unacked.pop(seq, None)
        if ops is None:
            return False
        for op in ops:
            if op[0] == "insert":
                self.cell[op[1]] = op[2]
            elif op[0] == "delete":
                self.cell.pop(op[1], None)
        return True


class WorkerCrash(RuntimeError):
    """A worker died irrecoverably (poison task or respawn limit)."""


class ProcessPoolService(MPRExecutor):
    """A persistent process pool realizing one MPR core matrix.

    Parameters
    ----------
    solution:
        Prototype solution; each worker gets ``solution.spawn(cell)``.
    config:
        The ``(x, y, z)`` arrangement to realize.
    objects:
        Initial object placements (partitioned round-robin by column).
    batch_size:
        Tasks per queue message.  1 reproduces per-task dispatch; the
        sweep in ``benchmarks/bench_process_pool.py`` shows the
        trade-off.
    start_method:
        ``multiprocessing`` start method.  Under ``fork`` workers
        inherit the parent's memory copy-on-write; under ``spawn`` the
        worker payload is pickled — which is why the pool publishes the
        road network to shared memory first (see ``share_graph``).
    share_graph:
        When True (the default) and the solution exposes its
        :class:`~repro.graph.road_network.RoadNetwork`, ``start()``
        publishes the network's CSR arrays to a
        ``multiprocessing.shared_memory`` segment
        (:func:`repro.graph.shared.publish_shared_graph`).  Workers —
        including respawned ones — then attach the same segment
        zero-copy during unpickling; the graph itself is never pickled
        per worker.  ``close()`` unlinks the segment.  If the network
        was already published by an outer owner, the pool borrows that
        segment and leaves its lifecycle alone.
    health_check_interval:
        How long one result-pipe wait may block before the supervisor
        re-checks worker liveness (seconds).
    max_respawns:
        Per-worker crash budget; exceeding it raises
        :class:`WorkerCrash` instead of looping on a poison batch.

    telemetry:
        A :class:`repro.obs.Telemetry` handle.  When enabled, workers
        stamp monotonic timings into their acks and the parent stitches
        per-query ``dispatch``/``queue_wait``/``execute``/``merge``/
        ``ack`` traces; when disabled (the default) the wire protocol
        and hot path are identical to the untraced pool.

    Lifecycle: ``start()`` → any number of ``submit()``/``flush()``/
    ``drain()``/``run()`` calls → ``close()``.  The context manager
    form does start/close automatically; ``close()`` is idempotent.

    .. deprecated:: construct via
       :func:`repro.mpr.api.build_executor` (``mode="process"``).
    """

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "Constructing ProcessPoolService directly is deprecated; use "
            "repro.mpr.api.build_executor(config, solution, objects, "
            "mode='process')",
            DeprecationWarning,
            stacklevel=2,
        )
        self._init(*args, **kwargs)

    @classmethod
    def _create(cls, *args, **kwargs) -> "ProcessPoolService":
        """Warning-free construction path used by the facade."""
        self = cls.__new__(cls)
        self._init(*args, **kwargs)
        return self

    def _init(
        self,
        solution: KNNSolution,
        config: MPRConfig,
        objects: Mapping[int, int],
        *,
        batch_size: int = 16,
        start_method: str = "fork",
        share_graph: bool = True,
        health_check_interval: float = 0.05,
        max_respawns: int = 3,
        metrics: PoolMetrics | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if health_check_interval <= 0:
            raise ValueError("health_check_interval must be positive")
        if max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        self._solution = solution
        self._config = config
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._router = MPRRouter(config, telemetry=self._telemetry)
        self._batcher = RouteBatcher(
            self._router, batch_size, telemetry=self._telemetry
        )
        self._context = mp.get_context(start_method)
        self._share_graph = share_graph
        self._shared_graph = None  # owning handle, set by start()
        self._health_check_interval = health_check_interval
        self._max_respawns = max_respawns
        self.metrics = metrics if metrics is not None else PoolMetrics()
        contents = self._router.preload_objects(objects)
        self._workers: dict[WorkerId, _WorkerState] = {
            worker_id: _WorkerState(worker_id, cell)
            for worker_id, cell in contents.items()
        }
        #: Pending query bookkeeping: expected partial count, requested
        #: k, and received partials keyed by worker (dedup on replay).
        self._expected: dict[int, int] = {}
        self._ks: dict[int, int] = {}
        self._partials: dict[int, dict[WorkerId, list[Neighbor]]] = {}
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def config(self) -> MPRConfig:
        return self._config

    @property
    def telemetry(self) -> Telemetry:
        return self._telemetry

    @property
    def running(self) -> bool:
        return self._started and not self._closed

    def start(self) -> "ProcessPoolService":
        """Spawn every worker process (no-op if already running)."""
        if self._closed:
            raise RuntimeError("pool is closed")
        if not self._started:
            if self._share_graph:
                self._publish_graph()
            for state in self._workers.values():
                self._spawn(state)
            self._started = True
        return self

    def _publish_graph(self) -> None:
        """Put the solution's road network into shared memory, if any.

        Every subsequent worker pickle — initial spawn and respawn alike
        — then ships a ~100-byte attach token instead of the CSR arrays.
        Networks already published by an outer owner are borrowed as-is
        (their token is inherited by the pickles; lifecycle untouched).
        """
        network = getattr(self._solution, "network", None)
        if network is None:
            network = getattr(self._solution, "_network", None)
        if network is None or getattr(network, "_shared_meta", None) is not None:
            return
        from ..graph.shared import publish_shared_graph

        self._shared_graph = publish_shared_graph(network)

    def __enter__(self) -> "ProcessPoolService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: stop messages, bounded wait, then force.

        Workers that acknowledge the stop within ``timeout`` seconds
        exit cleanly; stragglers (hung or already dead) are terminated.
        Safe to call twice and safe to call without ``start()``.
        """
        if self._closed:
            return
        self._closed = True
        if not self._started:
            self._unpublish_graph()
            return
        live = {
            state.worker_id: state
            for state in self._workers.values()
            if state.process is not None and state.process.is_alive()
        }
        for state in live.values():
            try:
                state.inbox.put(_STOP)
            except (OSError, ValueError):  # pragma: no cover - queue gone
                pass
        deadline = time.monotonic() + timeout
        pending = set(live)
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            readers = self._live_readers()
            if not readers:
                break
            ready = mp_connection.wait(readers, timeout=min(remaining, 0.1))
            if not ready:
                pending = {
                    worker_id for worker_id in pending
                    if self._workers[worker_id].process.is_alive()
                }
                continue
            for reader in ready:
                message = self._receive(reader)
                if message is not None and message[0] == "stopped":
                    pending.discard(message[1])
        for state in self._workers.values():
            process = state.process
            if process is None:
                continue
            process.join(timeout=max(deadline - time.monotonic(), 0.1))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for state in self._workers.values():
            self._retire_reader(state)
        # Only after every worker is down: no process can still be
        # mid-attach, so unlinking the segment cannot race a respawn.
        self._unpublish_graph()

    def _unpublish_graph(self) -> None:
        if self._shared_graph is not None:
            self._shared_graph.close()
            self._shared_graph = None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def submit(self, task: Task) -> None:
        """Route one task; full batches are dispatched immediately."""
        self.start()
        self.metrics.tasks_submitted += 1
        stamping = self._telemetry.enabled
        t0 = time.monotonic() if stamping else 0.0
        with self.metrics.timed("dispatch", events=0):
            route, ready = self._batcher.add(task)
        if task.kind is TaskKind.QUERY:
            assert isinstance(route, QueryRoute)
            self.metrics.queries_submitted += 1
            self._expected[task.query_id] = len(route.workers)
            self._ks[task.query_id] = task.k
            if stamping:
                self._telemetry.begin_trace(task.query_id, route.workers)
        else:
            self.metrics.updates_submitted += 1
        self._send_batches(ready)
        if stamping:
            query_id = task.query_id if task.kind is TaskKind.QUERY else None
            self._telemetry.record(
                "dispatch", time.monotonic() - t0, start=t0, query_id=query_id
            )
        # Opportunistically drain acks so the result pipes stay short.
        self._collect_ready()

    def flush(self) -> None:
        """Dispatch every partial batch (latency over amortization)."""
        if not self._started or self._closed:
            return
        with self.metrics.timed("dispatch", events=0):
            ready = self._batcher.flush()
        self._send_batches(ready)

    @property
    def batch_size(self) -> int:
        return self._batcher.batch_size

    def set_batch_size(self, batch_size: int) -> None:
        """Change the dispatch batch size for subsequent submits.

        Already-buffered ops are flushed first so no op waits on the
        *old* threshold while the new one is in force — the switch is
        FCFS-transparent.
        """
        self.flush()
        self._batcher.set_batch_size(batch_size)

    def retune_batch_size(
        self, arrival_rate: float, *, candidates: tuple[int, ...] | None = None
    ) -> int:
        """Adapt ``batch_size`` to measured timings; return the choice.

        Calibrates the stage-cost model from this pool's own telemetry
        (:func:`repro.sim.measurement.machine_spec_from_telemetry`) and
        picks the candidate minimizing modeled Rq at ``arrival_rate``
        (per-worker tasks/second) with fanout ``x`` — one merge per
        partial (see :mod:`repro.mpr.batching`).  With telemetry
        disabled the model falls back to :class:`MachineSpec` defaults,
        which still yields a sane size.  No-op if the choice matches
        the current size.
        """
        from .batching import DEFAULT_BATCH_CANDIDATES, recommend_batch_size

        choice = recommend_batch_size(
            self._telemetry, arrival_rate,
            candidates=(
                candidates if candidates is not None
                else DEFAULT_BATCH_CANDIDATES
            ),
            fanout=self._config.x,
        )
        if choice != self._batcher.batch_size:
            self.set_batch_size(choice)
            if self._telemetry.enabled:
                self._telemetry.count("pool.batch_retunes")
        return choice

    def _send_batches(self, batches: Sequence[WorkerBatch]) -> None:
        stamping = self._telemetry.enabled
        for worker_id, ops in batches:
            state = self._workers[worker_id]
            self._ensure_alive(state)
            seq = state.next_seq
            state.next_seq += 1
            state.unacked[seq] = ops
            if stamping:
                state.sent_at[seq] = time.monotonic()
            with self.metrics.timed("dispatch"):
                state.inbox.put(("batch", seq, ops))
            self.metrics.batches_sent += 1
            self.metrics.messages_sent += 1
            self.metrics.ops_dispatched += len(ops)

    # ------------------------------------------------------------------
    # Collection and supervision
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> dict[int, list[Neighbor]]:
        """Flush, wait until the pool quiesces, return finished answers.

        Returns the aggregated top-k for every query submitted since
        the previous drain.  ``timeout`` bounds the total wait
        (``None`` = wait as long as workers keep making progress);
        worker death during the wait triggers respawn + replay.
        """
        self.flush()
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._outstanding():
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"pool did not quiesce within {timeout} s "
                    f"({self._outstanding()} batches outstanding)"
                )
            with self.metrics.timed("wait", events=0):
                readers = self._live_readers()
                if readers:
                    ready = mp_connection.wait(
                        readers, timeout=self._health_check_interval
                    )
                else:  # every worker dead: wait out one interval
                    time.sleep(self._health_check_interval)
                    ready = []
            messages = [
                message
                for reader in ready
                if (message := self._receive(reader)) is not None
            ]
            if not messages:
                self._check_health()
                continue
            for message in messages:
                self._handle(message)
        return self._finish_answers()

    def run(self, tasks: Sequence[Task]) -> dict[int, list[Neighbor]]:
        """Submit a whole stream and drain it; workers stay alive."""
        self.start()
        for task in tasks:
            self.submit(task)
        return self.drain()

    def worker_pids(self) -> dict[WorkerId, int]:
        """Live worker process ids (fault-injection hooks)."""
        return {
            worker_id: state.process.pid
            for worker_id, state in self._workers.items()
            if state.process is not None and state.process.pid is not None
        }

    def _outstanding(self) -> int:
        return sum(len(state.unacked) for state in self._workers.values())

    def _live_readers(self) -> list:
        return [
            state.reader
            for state in self._workers.values()
            if state.reader is not None
        ]

    def _receive(self, reader):
        """Read one message off a result pipe; retire it on EOF.

        EOF means the writing worker is gone (its buffered messages
        stay readable until then, so no surviving ack is lost); the
        reader is dropped from the wait set until a respawn replaces
        it.  Returns the message, or None for a retired reader.
        """
        try:
            return reader.recv()
        except (EOFError, OSError):
            for state in self._workers.values():
                if state.reader is reader:
                    self._retire_reader(state)
                    break
            return None

    @staticmethod
    def _retire_reader(state: _WorkerState) -> None:
        if state.reader is None:
            return
        try:
            state.reader.close()
        except OSError:  # pragma: no cover - already closed
            pass
        state.reader = None

    def _collect_ready(self) -> None:
        while True:
            readers = self._live_readers()
            if not readers:
                return
            ready = mp_connection.wait(readers, timeout=0)
            if not ready:
                return
            for reader in ready:
                message = self._receive(reader)
                if message is not None:
                    self._handle(message)

    def _handle(self, message: tuple) -> None:
        kind = message[0]
        if kind == "done":
            if len(message) == 5:
                _, worker_id, seq, partials, stamps = message
            else:
                _, worker_id, seq, partials = message
                stamps = None
            state = self._workers[worker_id]
            if stamps is not None and self._telemetry.enabled:
                self._record_batch_stamps(state, seq, stamps)
            state.acknowledge(seq)
            state.sent_at.pop(seq, None)
            for query_id, partial in partials:
                self.metrics.partials_received += 1
                self._partials.setdefault(query_id, {})[worker_id] = partial
        elif kind == "error":
            _, worker_id, seq, detail = message
            self._workers[worker_id].failed = detail
            raise WorkerCrash(
                f"worker {worker_id} failed on batch {seq}: {detail}"
            )
        elif kind == "stopped":  # late stop ack from a prior close
            pass
        else:  # pragma: no cover - protocol guard
            raise RuntimeError(f"unknown pool message {message!r}")

    def _record_batch_stamps(
        self, state: _WorkerState, seq: int, stamps: tuple
    ) -> None:
        """Stitch one stamped ack into spans and stage histograms.

        ``stamps`` is the worker's ``(t_recv, t_ack_send, op_timings,
        kernel_delta)``; combined with the parent's send stamp this
        yields one ``queue_wait`` span for the batch (attributed to
        every query in it), an ``execute`` span per query, an
        ``update`` histogram sample per update op, and one ``ack`` span
        (pipe transit, measured at read time).  A grouped ``("qb", ...)``
        run additionally records an ``execute_batch`` histogram span
        plus the ``exec.batches``/``exec.batch_queries`` counters, and
        each of its queries gets an equal *share* of the run as its
        ``execute`` span — batched queries cannot be timed individually,
        but their traces stay complete.  ``kernel_delta`` folds the
        child's ``KERNEL_CALLS`` increments into the parent's counters.
        Replayed batches restamp the same ``(stage, worker)`` slots;
        last report wins inside the trace.
        """
        t_recv, t_ack_send, op_timings, kernel_delta = stamps
        if kernel_delta:
            KERNEL_CALLS.update(kernel_delta)
        telemetry = self._telemetry
        worker_id = state.worker_id
        sent = state.sent_at.get(seq)
        ack_wait = time.monotonic() - t_ack_send
        queue_wait = max(t_recv - sent, 0.0) if sent is not None else None
        query_ids: list[int] = []
        for entry in op_timings:
            if entry[0] == "q":
                query_ids.append(entry[1])
            elif entry[0] == "qb":
                query_ids.extend(entry[1])
        if queue_wait is not None:
            if query_ids:
                for query_id in query_ids:
                    telemetry.record(
                        "queue_wait", queue_wait,
                        start=sent, query_id=query_id, worker=worker_id,
                    )
            else:  # pure-update batch: histogram only, once
                telemetry.record("queue_wait", queue_wait, start=sent)
        for entry in op_timings:
            if entry[0] == "q":
                _, query_id, t0, t1 = entry
                telemetry.record(
                    "execute", t1 - t0,
                    start=t0, query_id=query_id, worker=worker_id,
                )
            elif entry[0] == "qb":
                _, run_ids, t0, t1 = entry
                telemetry.record("execute_batch", t1 - t0, start=t0)
                telemetry.count("exec.batches")
                telemetry.count("exec.batch_queries", len(run_ids))
                share = (t1 - t0) / len(run_ids)
                for position, query_id in enumerate(run_ids):
                    span_start = t0 + position * share
                    telemetry.record(
                        "execute", share,
                        start=span_start, query_id=query_id, worker=worker_id,
                    )
            else:
                _, t0, t1 = entry
                telemetry.record("update", t1 - t0, start=t0)
        if query_ids:
            for query_id in query_ids:
                telemetry.record(
                    "ack", ack_wait,
                    start=t_ack_send, query_id=query_id, worker=worker_id,
                )
        else:
            telemetry.record("ack", ack_wait, start=t_ack_send)

    def _finish_answers(self) -> dict[int, list[Neighbor]]:
        stamping = self._telemetry.enabled
        with self.metrics.timed("aggregate", events=len(self._expected)):
            answers: dict[int, list[Neighbor]] = {}
            for query_id, expected in self._expected.items():
                parts = self._partials.get(query_id, {})
                if len(parts) != expected:
                    raise RuntimeError(
                        f"query {query_id}: {len(parts)} partials, "
                        f"expected {expected}"
                    )
                if stamping:
                    with self._telemetry.span("merge", query_id=query_id):
                        answers[query_id] = merge_partial_results(
                            list(parts.values()), self._ks[query_id]
                        )
                else:
                    answers[query_id] = merge_partial_results(
                        list(parts.values()), self._ks[query_id]
                    )
        if stamping:
            for query_id in self._expected:
                trace = self._telemetry.trace(query_id)
                if trace is not None and trace.spans:
                    self._telemetry.record("response", trace.response_time)
        self._expected.clear()
        self._ks.clear()
        self._partials.clear()
        return answers

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def _check_health(self) -> None:
        for state in self._workers.values():
            if state.unacked:
                self._ensure_alive(state)

    def _ensure_alive(self, state: _WorkerState) -> None:
        process = state.process
        if process is not None and process.is_alive():
            return
        if state.failed is not None:
            raise WorkerCrash(
                f"worker {state.worker_id} is failed: {state.failed}"
            )
        if state.respawns >= self._max_respawns:
            raise WorkerCrash(
                f"worker {state.worker_id} exceeded the respawn budget "
                f"({self._max_respawns}); last batches: "
                f"{sorted(state.unacked)}"
            )
        self._respawn(state)

    def _spawn(self, state: _WorkerState) -> None:
        state.inbox = self._context.Queue()
        reader, writer = self._context.Pipe(duplex=False)
        state.reader = reader
        state.process = self._context.Process(
            target=_worker_main,
            args=(
                self._solution.spawn(dict(state.cell)),
                state.worker_id,
                state.inbox,
                writer,
                self._telemetry.enabled,
            ),
            daemon=True,
        )
        state.process.start()
        # Drop the parent's writer copy *before* any later fork: the
        # worker must be the pipe's only writer so its death raises EOF
        # on our end (and no sibling inherits a stray write fd).
        writer.close()

    def _respawn(self, state: _WorkerState) -> None:
        """Rebuild a dead worker from its replica cell; replay its log.

        A death can race with its last ack (the ack may be sitting in
        its result pipe), so pending acks are consumed first — replays
        of batches whose ack did survive are then skipped or, if
        already re-sent, deduplicated downstream.
        """
        if state.process is not None:
            # A cleanly-exited worker (poison task) flushes its error
            # report on exit; joining first makes it visible below so
            # poison surfaces as WorkerCrash instead of a replay loop.
            state.process.join(timeout=1.0)
        self._collect_ready()
        self._retire_reader(state)  # residual acks were drained above
        state.respawns += 1
        self.metrics.respawns += 1
        self.metrics.batches_replayed += len(state.unacked)
        if self._telemetry.enabled:
            self._telemetry.count("pool.respawns")
        self._spawn(state)
        stamping = self._telemetry.enabled
        for seq in sorted(state.unacked):
            if stamping:
                # Replays restamp their queue_wait from the re-send, so
                # the stitched trace reflects the run that produced the
                # surviving ack.
                state.sent_at[seq] = time.monotonic()
            state.inbox.put(("batch", seq, state.unacked[seq]))
            self.metrics.messages_sent += 1


class ProcessMPRExecutor(MPRExecutor):
    """One-shot batch wrapper over :class:`ProcessPoolService`.

    Preserved for compatibility with the original executor: workers are
    spawned per :meth:`run` and torn down afterwards, with per-task
    dispatch (``batch_size=1``).  New code should hold a process-mode
    executor from :func:`repro.mpr.api.build_executor` instead.

    .. deprecated:: construct via
       :func:`repro.mpr.api.build_executor` (``mode="process"``).
    """

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "Constructing ProcessMPRExecutor directly is deprecated; use "
            "repro.mpr.api.build_executor(config, solution, objects, "
            "mode='process')",
            DeprecationWarning,
            stacklevel=2,
        )
        self._init(*args, **kwargs)

    @classmethod
    def _create(cls, *args, **kwargs) -> "ProcessMPRExecutor":
        """Warning-free construction path used by the facade."""
        self = cls.__new__(cls)
        self._init(*args, **kwargs)
        return self

    def _init(
        self,
        solution: KNNSolution,
        config: MPRConfig,
        objects: Mapping[int, int],
        start_method: str = "fork",
        *,
        telemetry: Telemetry | None = None,
    ) -> None:
        self._service = ProcessPoolService._create(
            solution, config, objects,
            batch_size=1, start_method=start_method, telemetry=telemetry,
        )

    @property
    def config(self) -> MPRConfig:
        return self._service.config

    @property
    def telemetry(self) -> Telemetry:
        return self._service.telemetry

    def start(self) -> "ProcessMPRExecutor":
        self._service.start()
        return self

    def close(self) -> None:
        self._service.close()

    def submit(self, task: Task) -> None:
        self._service.submit(task)

    def flush(self) -> None:
        self._service.flush()

    def drain(self) -> dict[int, list[Neighbor]]:
        return self._service.drain()

    def run(self, tasks: Sequence[Task]) -> dict[int, list[Neighbor]]:
        """One-shot: spawn workers, run the batch, tear them down."""
        with self._service as pool:
            return pool.run(tasks)


@dataclass(frozen=True)
class SpeedupReport:
    """Wall-clock comparison of 1-worker vs N-worker batch execution."""

    num_queries: int
    workers: int
    serial_seconds: float
    parallel_seconds: float

    @property
    def speedup(self) -> float:
        if self.parallel_seconds <= 0:
            return float("inf")
        return self.serial_seconds / self.parallel_seconds


def run_batch_speedup(
    solution: KNNSolution,
    objects: Mapping[int, int],
    query_locations: Sequence[int],
    k: int = 10,
    workers: int = 4,
    start_method: str = "fork",
    batch_size: int = 16,
) -> SpeedupReport:
    """Execute a query batch on 1 process vs ``workers`` processes.

    Uses an F-Rep arrangement (x = 1, y = workers): each process holds
    the full object set, queries round-robin across processes — the
    configuration MPR picks for a pure-query load.  Demonstrates that
    process-level replication achieves the speedup the GIL denies to
    threads (bench_motivation's counterpart, with real parallelism).
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    from ..objects.tasks import QueryTask

    tasks = [
        QueryTask(float(position), position, location, k)
        for position, location in enumerate(query_locations)
    ]

    def timed_run(num_workers: int) -> float:
        config = MPRConfig(1, num_workers, 1)
        with ProcessPoolService._create(
            solution, config, dict(objects),
            batch_size=batch_size, start_method=start_method,
        ) as pool:
            start = time.perf_counter()
            pool.run(tasks)
            return time.perf_counter() - start

    serial = timed_run(1)
    parallel = timed_run(workers)
    return SpeedupReport(
        num_queries=len(query_locations),
        workers=workers,
        serial_seconds=serial,
        parallel_seconds=parallel,
    )

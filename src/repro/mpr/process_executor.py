"""A persistent, fault-tolerant multiprocessing executor.

The threaded executor (:mod:`repro.mpr.executor`) proves functional
correctness but cannot show wall-clock speedup under CPython's GIL.
:class:`ProcessPoolService` runs each w-core as an OS *process* — the
literal "multi-processing" of the paper's title — and keeps it alive
across calls, the way a serving system would:

* **persistent workers** — processes start once (``start()`` or the
  context manager) and serve any number of ``run()``/``submit()``
  calls; the road network and each worker's object partition are
  pickled to the child once, mirroring MPR's one-time replica
  construction;
* **batched dispatch** — one queue message carries up to
  ``batch_size`` tasks, amortizing the ~tens-of-μs per-message pickle
  and queue cost (the τ' the paper models, magnified ~1000× by
  ``multiprocessing``) over the batch; ``flush()`` releases partial
  batches for latency-sensitive streams;
* **supervision** — the parent polls worker liveness while waiting on
  results; a dead worker (crash, SIGKILL) is respawned from its
  replica's object cell and the in-flight batches are replayed, so
  final answers are indistinguishable from a fault-free run.

Results travel over one dedicated ``Pipe`` per worker rather than a
shared result ``Queue``.  A shared queue serializes every worker's acks
through one cross-process write lock, and a worker SIGKILLed inside
that critical section leaks the semaphore forever — deadlocking every
*surviving* worker's acks (observed deterministically in the respawn
tests).  With one pipe per worker there is exactly one writer per
channel, no lock to leak, and a crash can only corrupt the dead
worker's own pipe, which the respawn replaces wholesale.

Fault-tolerance argument, in MPR's own terms: every ``(layer, column)``
cell is replicated across the ``y`` rows (Section IV-A), so a worker's
object set is never lost with the process.  The service keeps the
authoritative copy of each cell — its initial contents plus every
*acknowledged* update batch — which is exactly the state any row
sibling holds.  A respawned worker is ``solution.spawn``-ed from that
cell and replays the unacknowledged batch suffix in FCFS order;
because solutions are deterministic, the replayed partials equal the
lost ones (duplicates from ack races are idempotent and deduplicated
per ``(query, worker)``).

Per-stage timings and counters stream into a
:class:`repro.harness.PoolMetrics`, which the benchmarks and the DES
calibration (:func:`repro.sim.measurement.machine_spec_from_pool`)
consume.

Use :func:`run_batch_speedup` for the historical headline
demonstration (1 vs N workers).  Construction goes through
:func:`repro.mpr.api.build_executor` (``mode="process"``), the one
public construction path.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import time
from multiprocessing import connection as mp_connection
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..graph.kernels import KERNEL_CALLS
from ..harness.metrics import PoolMetrics
from ..knn.base import KNNSolution, Neighbor, merge_partial_results
from ..objects.tasks import Task, TaskKind
from ..obs import NULL_TELEMETRY, Telemetry
from .config import MPRConfig
from .core_matrix import (
    MPRRouter,
    QueryRoute,
    RouteBatcher,
    WorkerBatch,
    WorkerId,
)
from .executor import MPRExecutor
from .reconfig import ReconfigEvent, ReconfigRejected
from .resilience import (
    NULL_RESILIENCE,
    CircuitBreaker,
    Overloaded,
    ResilienceConfig,
    ResiliencePolicy,
)

_STOP = ("stop",)


def _run_ops(solution, ops, partials, op_timings, monotonic) -> None:
    """Execute one batch's ops, grouping consecutive queries.

    Maximal runs of back-to-back queries are answered by one
    ``solution.query_batch`` call (shared kernel sweeps); updates and
    singleton queries keep the per-op path.  Queries never mutate
    state, so grouping a run preserves the batch's serial semantics —
    updates still execute at exactly their FCFS position.

    When ``op_timings`` is a list, timing entries are appended:
    ``("q", query_id, t0, t1)`` for a singleton query, ``("qb",
    (query_ids...), t0, t1)`` for a grouped run, ``("u", t0, t1)`` for
    an update.  ``None`` skips all clock reads (telemetry disabled).
    """
    index = 0
    total = len(ops)
    while index < total:
        op = ops[index]
        if op[0] != "query":
            started = monotonic() if op_timings is not None else 0.0
            if op[0] == "insert":
                solution.insert(op[1], op[2])
            else:
                solution.delete(op[1])
            if op_timings is not None:
                op_timings.append(("u", started, monotonic()))
            index += 1
            continue
        end = index + 1
        while end < total and ops[end][0] == "query":
            end += 1
        run = ops[index:end]
        started = monotonic() if op_timings is not None else 0.0
        if len(run) == 1:
            _, query_id, location, k = run[0]
            partials.append((query_id, solution.query(location, k)))
            if op_timings is not None:
                op_timings.append(("q", query_id, started, monotonic()))
        else:
            answers = solution.query_batch(
                [op[2] for op in run], [op[3] for op in run]
            )
            for op, answer in zip(run, answers):
                partials.append((op[1], answer))
            if op_timings is not None:
                op_timings.append(
                    ("qb", tuple(op[1] for op in run), started, monotonic())
                )
        index = end


def _worker_main(
    solution: KNNSolution, worker_id, inbox, results, stamp_timings: bool = False
) -> None:
    """Child process: serve batches until told to stop.

    One ``("batch", seq, ops)`` message is acknowledged by one
    ``("done", worker_id, seq, partials)`` message carrying every query
    partial of the batch — the ack doubles as the result envelope, so
    the return path is batch-amortized too.  Runs of consecutive
    queries inside a batch execute as one ``query_batch`` call (see
    :func:`_run_ops`).  ``results`` is this worker's private pipe end:
    no lock is shared with sibling workers, so this process dying
    mid-send cannot wedge anyone else.

    With ``stamp_timings`` (telemetry enabled in the parent) the ack
    grows a compact timing tuple — ``(t_recv, t_ack_send, per-op
    timings, kernel_delta)`` in the shared ``time.monotonic`` clock —
    from which the parent stitches ``queue_wait``/``execute``/``ack``
    spans.  Per-op entries are ``("q", query_id, t0, t1)`` for
    singleton queries, ``("qb", (query_ids...), t0, t1)`` for grouped
    query runs, and ``("u", t0, t1)`` for updates; ``kernel_delta`` is
    this batch's increment to the child's ``KERNEL_CALLS`` diagnostic
    counters, which the parent folds into its own copy (fork gives each
    child separate counter memory).
    """
    monotonic = time.monotonic
    while True:
        message = inbox.get()
        received = monotonic() if stamp_timings else 0.0
        kind = message[0]
        if kind == "stop":
            results.send(("stopped", worker_id))
            return
        if kind != "batch":  # pragma: no cover - protocol guard
            results.send(("error", worker_id, -1, f"unknown message {kind!r}"))
            return
        _, seq, ops = message
        partials = []
        try:
            if stamp_timings:
                op_timings: list[tuple] = []
                kernel_before = dict(KERNEL_CALLS)
                _run_ops(solution, ops, partials, op_timings, monotonic)
                kernel_delta = {
                    name: count - kernel_before.get(name, 0)
                    for name, count in KERNEL_CALLS.items()
                    if count != kernel_before.get(name, 0)
                }
            else:
                _run_ops(solution, ops, partials, None, monotonic)
        except Exception as exc:
            results.send(("error", worker_id, seq, repr(exc)))
            return
        if stamp_timings:
            results.send((
                "done", worker_id, seq, partials,
                (received, monotonic(), op_timings, kernel_delta),
            ))
        else:
            results.send(("done", worker_id, seq, partials))


class _WorkerState:
    """Parent-side ledger for one w-core: process + replica cell + log."""

    def __init__(self, worker_id: WorkerId, cell: Mapping[int, int]) -> None:
        self.worker_id = worker_id
        #: The replica's object cell: initial contents plus every
        #: acknowledged update — the state a respawn restarts from.
        self.cell: dict[int, int] = dict(cell)
        #: Dispatched-but-unacknowledged batches, in seq order.
        self.unacked: dict[int, tuple] = {}
        #: Monotonic send stamp per in-flight batch (telemetry or
        #: resilience enabled; feeds traces and the stall watchdog).
        self.sent_at: dict[int, float] = {}
        #: Batches parked while this worker's circuit breaker is open;
        #: moved back into ``unacked`` and replayed on the half-open
        #: trial respawn (resilience only).
        self.quarantined: dict[int, tuple] = {}
        #: Poison batches (the worker reported an execution error on
        #: them) — never replayed, kept for inspection (resilience only).
        self.poisoned: dict[int, tuple] = {}
        #: True once a death has been processed (breaker fed, batches
        #: quarantined) so repeated health checks do not re-count it.
        self.down = False
        #: Which fleet this worker belongs to: ``"current"`` (serving),
        #: ``"transition"`` (warming toward a new shape), or
        #: ``"retiring"`` (draining pre-cutover work before stopping).
        self.group = "current"
        #: True once a graceful stop message has been queued (retiring
        #: workers are stopped exactly once).
        self.stop_sent = False
        self.next_seq = 0
        self.respawns = 0
        self.failed: str | None = None
        self.process: mp.process.BaseProcess | None = None
        self.inbox = None
        #: Parent-held read end of this worker's private result pipe.
        self.reader = None

    def acknowledge(self, seq: int) -> bool:
        """Apply an ack: advance the durable cell past batch ``seq``.

        Returns False for a duplicate ack (a replayed batch whose
        original ack survived the crash) — those are ignored.
        """
        ops = self.unacked.pop(seq, None)
        if ops is None:
            return False
        for op in ops:
            if op[0] == "insert":
                self.cell[op[1]] = op[2]
            elif op[0] == "delete":
                self.cell.pop(op[1], None)
        return True


class WorkerCrash(RuntimeError):
    """A worker died irrecoverably (poison task or respawn limit)."""


class QuiesceTimeout(TimeoutError):
    """``drain(timeout=)`` expired with batches still outstanding.

    Carries the stuck ``(worker_id, seq)`` batches *and* the affected
    query ids, so a serving tier can fail exactly the in-flight RPCs
    that will never get an answer instead of failing the connection.
    """

    def __init__(
        self,
        message: str,
        *,
        pending: Sequence[tuple[WorkerId, int]] = (),
        query_ids: Sequence[int] = (),
    ) -> None:
        super().__init__(message)
        #: Unacknowledged ``(worker_id, seq)`` batches at expiry.
        self.pending: tuple[tuple[WorkerId, int], ...] = tuple(pending)
        #: Every query implicated in those batches (plus, with the
        #: resilience layer on, queries still unresolved at expiry).
        self.query_ids: tuple[int, ...] = tuple(query_ids)


class _Transition:
    """The half-built replacement matrix of one in-flight shape change.

    Holds everything the supervisor needs to either promote the new
    shape at cutover or discard it wholesale on rollback: the target
    router/batcher pair (warming against ``NULL_TELEMETRY`` so dual-fed
    updates do not double-count), the warming worker states, and the
    phase deadline.  The old shape's state is deliberately *not* here —
    rollback must be a pure discard.
    """

    __slots__ = (
        "event", "new_config", "router", "batcher", "workers",
        "warm_deadline", "retire_timeout", "started", "fault",
    )

    def __init__(
        self,
        event: ReconfigEvent,
        new_config: MPRConfig,
        router: MPRRouter,
        batcher: RouteBatcher,
        workers: dict[WorkerId, "_WorkerState"],
        *,
        warm_deadline: float,
        retire_timeout: float,
        started: float,
    ) -> None:
        self.event = event
        self.new_config = new_config
        self.router = router
        self.batcher = batcher
        self.workers = workers
        self.warm_deadline = warm_deadline
        self.retire_timeout = retire_timeout
        self.started = started
        #: First fault observed while warming (worker death or error
        #: report); processed by ``_advance_transition`` → rollback.
        self.fault: str | None = None


class ProcessPoolService(MPRExecutor):
    """A persistent process pool realizing one MPR core matrix.

    Parameters
    ----------
    solution:
        Prototype solution; each worker gets ``solution.spawn(cell)``.
    config:
        The ``(x, y, z)`` arrangement to realize.
    objects:
        Initial object placements (partitioned round-robin by column).
    batch_size:
        Tasks per queue message.  1 reproduces per-task dispatch; the
        sweep in ``benchmarks/bench_process_pool.py`` shows the
        trade-off.
    start_method:
        ``multiprocessing`` start method.  Under ``fork`` workers
        inherit the parent's memory copy-on-write; under ``spawn`` the
        worker payload is pickled — which is why the pool publishes the
        road network to shared memory first (see ``share_graph``).
    share_graph:
        When True (the default) and the solution exposes its
        :class:`~repro.graph.road_network.RoadNetwork`, ``start()``
        publishes the network's CSR arrays to a
        ``multiprocessing.shared_memory`` segment
        (:func:`repro.graph.shared.publish_shared_graph`).  Workers —
        including respawned ones — then attach the same segment
        zero-copy during unpickling; the graph itself is never pickled
        per worker.  ``close()`` unlinks the segment.  If the network
        was already published by an outer owner, the pool borrows that
        segment and leaves its lifecycle alone.
    health_check_interval:
        How long one result-pipe wait may block before the supervisor
        re-checks worker liveness (seconds).
    max_respawns:
        Per-worker crash budget; exceeding it raises
        :class:`WorkerCrash` instead of looping on a poison batch.
        With ``resilience`` enabled the budget is superseded by the
        per-worker circuit breaker's exponential backoff.
    resilience:
        A :class:`repro.mpr.resilience.ResilienceConfig` enabling the
        resilience layer: per-query deadlines with hedged replica
        reads, admission-controlled load shedding (typed
        :class:`~repro.mpr.resilience.Overloaded` answers), per-worker
        circuit breakers with quarantine, a stall watchdog, and
        degraded :class:`~repro.knn.base.PartialResult` answers when a
        partition column has no live replica.  ``None`` (the default)
        disables all of it — the hot path then pays a single branch,
        exactly like disabled telemetry.

    telemetry:
        A :class:`repro.obs.Telemetry` handle.  When enabled, workers
        stamp monotonic timings into their acks and the parent stitches
        per-query ``dispatch``/``queue_wait``/``execute``/``merge``/
        ``ack`` traces; when disabled (the default) the wire protocol
        and hot path are identical to the untraced pool.

    Lifecycle: ``start()`` → any number of ``submit()``/``flush()``/
    ``drain()``/``run()`` calls → ``close()``.  The context manager
    form does start/close automatically; ``close()`` is idempotent.

    Construct via :func:`repro.mpr.api.build_executor`
    (``mode="process"``), the one public construction path; the direct
    constructor exists for the facade and for tests.
    """

    def __init__(
        self,
        solution: KNNSolution,
        config: MPRConfig,
        objects: Mapping[int, int],
        *,
        batch_size: int = 16,
        start_method: str = "fork",
        share_graph: bool = True,
        health_check_interval: float = 0.05,
        max_respawns: int = 3,
        metrics: PoolMetrics | None = None,
        telemetry: Telemetry | None = None,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        if health_check_interval <= 0:
            raise ValueError("health_check_interval must be positive")
        if max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        self._solution = solution
        self._config = config
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._resilience = (
            ResiliencePolicy(resilience)
            if resilience is not None
            else NULL_RESILIENCE
        )
        self._router = MPRRouter(config, telemetry=self._telemetry)
        self._batcher = RouteBatcher(
            self._router, batch_size, telemetry=self._telemetry,
            admission=(
                self._resilience.admission
                if self._resilience.enabled
                else None
            ),
        )
        self._context = mp.get_context(start_method)
        self._share_graph = share_graph
        self._shared_graph = None  # owning handle, set by start()
        self._health_check_interval = health_check_interval
        self._max_respawns = max_respawns
        self.metrics = metrics if metrics is not None else PoolMetrics()
        contents = self._router.preload_objects(objects)
        self._workers: dict[WorkerId, _WorkerState] = {
            worker_id: _WorkerState(worker_id, cell)
            for worker_id, cell in contents.items()
        }
        #: Submit-time object ledger: the authoritative ``object ->
        #: node`` map in FCFS submit order.  Per-worker acked cells lag
        #: behind dispatch, and per-worker seqs are not globally
        #: ordered, so this — not a merge of the cells — is the exact
        #: snapshot a reconfiguration hands to the new shape.
        self._objects: dict[int, int] = dict(objects)
        #: Result-pipe reader -> owning worker state, across *all*
        #: groups (current, transition, retiring).  The dispatch key:
        #: after a cutover the retiring fleet shares worker ids with the
        #: current one, so messages route by pipe identity, never by id.
        self._reader_owners: dict = {}
        #: Shape generation, bumped at every cutover.  Queries stamp the
        #: generation they were routed under (resilience only, and only
        #: once it is non-zero) so hedging never crosses a cutover.
        self._generation = 0
        self._query_gen: dict[int, int] = {}
        self._transition: _Transition | None = None
        self._retiring: list[_WorkerState] = []
        self._retire_deadline = 0.0
        self._retire_started = 0.0
        self._retire_event: ReconfigEvent | None = None
        #: Audit log of every reconfiguration attempt (completed,
        #: rolled back, and rejected alike), oldest first.
        self.reconfig_history: list[ReconfigEvent] = []
        #: Trips after repeated rolled-back transitions; while open,
        #: ``begin_reconfigure`` rejects instead of churning workers.
        self._reconfig_breaker = CircuitBreaker(ResilienceConfig(
            breaker_failures=2, backoff_base=5.0, backoff_factor=2.0,
            backoff_max=60.0,
        ))
        #: Pending query bookkeeping: expected partial count, requested
        #: k, and received partials keyed by worker (dedup on replay).
        self._expected: dict[int, int] = {}
        self._ks: dict[int, int] = {}
        self._partials: dict[int, dict[WorkerId, list[Neighbor]]] = {}
        # Resilience-only per-query state (empty unless enabled).  The
        # resilient paths dedup per *column* — a hedge targets a sibling
        # row of the same column, first answer per column wins.
        self._locations: dict[int, int] = {}
        self._columns: dict[int, tuple[tuple[int, int], ...]] = {}
        self._accepted: dict[
            int, dict[tuple[int, int], tuple[WorkerId, list[Neighbor]]]
        ] = {}
        #: Rows tried per (query, column) — seeded lazily from ``_rows``
        #: on the first hedge decision, so the no-fault submit path pays
        #: one int store instead of a dict-of-sets allocation.
        self._attempted: dict[int, dict[tuple[int, int], set[int]]] = {}
        self._rows: dict[int, int] = {}
        self._missing: dict[int, set[tuple[int, int]]] = {}
        self._shed: dict[int, Overloaded] = {}
        self._slo: dict[int, float] = {}
        self._deadline_heap: list[tuple[float, int]] = []
        #: Per-layer ``((layer, col), ...)`` tuples — every query routed
        #: to a layer shares the same column set, so cache it.
        self._layer_columns: dict[int, tuple[tuple[int, int], ...]] = {}
        #: Static part of the SLO resolution (policy > arrangement);
        #: per query only ``task.deadline`` can override it.
        self._fallback_slo = (
            self._resilience.config.default_deadline
            if self._resilience.config.default_deadline is not None
            else config.default_deadline
        ) if self._resilience.enabled else None
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def config(self) -> MPRConfig:
        return self._config

    @property
    def telemetry(self) -> Telemetry:
        return self._telemetry

    @property
    def generation(self) -> int:
        """Shape generation: 0 at start, +1 per completed cutover."""
        return self._generation

    @property
    def running(self) -> bool:
        return self._started and not self._closed

    def start(self) -> "ProcessPoolService":
        """Spawn every worker process (no-op if already running)."""
        if self._closed:
            raise RuntimeError("pool is closed")
        if not self._started:
            if self._share_graph:
                self._publish_graph()
            for state in self._workers.values():
                self._spawn(state)
            self._started = True
        return self

    def _publish_graph(self) -> None:
        """Put the solution's road network into shared memory, if any.

        Every subsequent worker pickle — initial spawn and respawn alike
        — then ships a ~100-byte attach token instead of the CSR arrays.
        Networks already published by an outer owner are borrowed as-is
        (their token is inherited by the pickles; lifecycle untouched).
        Networks attached from a disk cache (``RoadNetwork.open_cache``)
        need no segment at all: their pickle already ships the memmap
        attach token, and each worker maps the same files in O(1), so
        shared-memory publication is skipped for them.
        """
        network = getattr(self._solution, "network", None)
        if network is None:
            network = getattr(self._solution, "_network", None)
        if (
            network is None
            or getattr(network, "_shared_meta", None) is not None
            or getattr(network, "_cache_meta", None) is not None
        ):
            return
        from ..graph.shared import publish_shared_graph

        self._shared_graph = publish_shared_graph(network)

    def __enter__(self) -> "ProcessPoolService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: stop messages, bounded wait, then force.

        Workers that acknowledge the stop within ``timeout`` seconds
        exit cleanly; stragglers escalate join → ``terminate()``
        (SIGTERM) → ``kill()`` (SIGKILL).  The last rung matters: a
        worker wedged mid-``recv`` or SIGSTOPped leaves SIGTERM pending
        forever, but SIGKILL cannot be blocked or deferred.  Reader
        retirement and the shared-memory unlink run in a ``finally`` so
        the segment is never leaked, whatever state the workers are in.
        Safe to call twice and safe to call without ``start()``.
        """
        if self._closed:
            return
        self._closed = True
        if not self._started:
            self._unpublish_graph()
            return
        if self._transition is not None:
            # A half-built shape dies with the pool; this is not a
            # transition *failure*, so the reconfig breaker is not fed.
            self._transition_failed("pool closed mid-transition",
                                    feed_breaker=False)
        targets = list(self._workers.values()) + list(self._retiring)
        try:
            live = {
                state
                for state in targets
                if state.process is not None and state.process.is_alive()
            }
            for state in live:
                if state.stop_sent:
                    continue
                try:
                    state.inbox.put(_STOP)
                except (OSError, ValueError):  # pragma: no cover - queue gone
                    pass
            deadline = time.monotonic() + timeout
            pending = set(live)
            while pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                readers = self._live_readers()
                if not readers:
                    break
                ready = mp_connection.wait(
                    readers, timeout=min(remaining, 0.1)
                )
                if not ready:
                    pending = {
                        state for state in pending
                        if state.process.is_alive()
                    }
                    continue
                for reader in ready:
                    owner = self._reader_owners.get(reader)
                    message = self._receive(reader)
                    if (
                        message is not None
                        and message[0] == "stopped"
                        and owner is not None
                    ):
                        pending.discard(owner)
            for state in targets:
                process = state.process
                if process is None:
                    continue
                process.join(timeout=max(deadline - time.monotonic(), 0.1))
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=1.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=1.0)
        finally:
            for state in targets:
                self._retire_reader(state)
            self._retiring.clear()
            self._reader_owners.clear()
            # Only after every worker is down: no process can still be
            # mid-attach, so unlinking the segment cannot race a respawn.
            self._unpublish_graph()

    def _unpublish_graph(self) -> None:
        if self._shared_graph is not None:
            self._shared_graph.close()
            self._shared_graph = None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def submit(self, task: Task) -> None:
        """Route one task; full batches are dispatched immediately.

        With resilience enabled the submit is admission-controlled: a
        query routed at a worker whose backlog is at the configured
        bound is *shed* — it gets a typed :class:`Overloaded` answer
        from the next :meth:`drain` instead of joining the queue — and
        an admitted query arms its deadline (task SLO, else the
        resilience default, else the arrangement default).
        """
        self.start()
        if self._transition is not None or self._retiring:
            self._advance_transition(time.monotonic())
        if self._resilience.enabled:
            self._submit_resilient(task)
            return
        self.metrics.tasks_submitted += 1
        stamping = self._telemetry.enabled
        t0 = time.monotonic() if stamping else 0.0
        with self.metrics.timed("dispatch", events=0):
            route, ready = self._batcher.add(task)
        if task.kind is TaskKind.QUERY:
            assert isinstance(route, QueryRoute)
            self.metrics.queries_submitted += 1
            self._expected[task.query_id] = len(route.workers)
            self._ks[task.query_id] = task.k
            if stamping:
                self._telemetry.begin_trace(task.query_id, route.workers)
        else:
            self.metrics.updates_submitted += 1
            self._record_update(task)
        self._send_batches(ready)
        if stamping:
            query_id = task.query_id if task.kind is TaskKind.QUERY else None
            self._telemetry.record(
                "dispatch", time.monotonic() - t0, start=t0, query_id=query_id
            )
        # Opportunistically drain acks so the result pipes stay short.
        self._collect_ready()

    def _submit_resilient(self, task: Task) -> None:
        """The admission/deadline-aware variant of :meth:`submit`."""
        self.metrics.tasks_submitted += 1
        stamping = self._telemetry.enabled
        t0 = time.monotonic() if stamping else 0.0
        with self.metrics.timed("dispatch", events=0):
            route, ready, backlog = self._batcher.offer(task)
        if task.kind is TaskKind.QUERY:
            assert isinstance(route, QueryRoute)
            self.metrics.queries_submitted += 1
            query_id = task.query_id
            if backlog is not None:
                self.metrics.shed += 1
                self._shed[query_id] = Overloaded(
                    query_id, backlog, self._resilience.config.max_outstanding
                )
                if stamping:
                    self._telemetry.count("resilience.shed")
            else:
                self._ks[query_id] = task.k
                self._locations[query_id] = task.location
                layer = route.workers[0][0]
                columns = self._layer_columns.get(layer)
                if columns is None:
                    columns = self._layer_columns[layer] = tuple(
                        (worker[0], worker[2]) for worker in route.workers
                    )
                self._columns[query_id] = columns
                self._rows[query_id] = route.row
                slo = (
                    task.deadline if task.deadline is not None
                    else self._fallback_slo
                )
                if slo is not None:
                    self._slo[query_id] = slo
                    heapq.heappush(
                        self._deadline_heap,
                        (time.monotonic() + slo, query_id),
                    )
                if self._generation:
                    self._query_gen[query_id] = self._generation
                if stamping:
                    self._telemetry.begin_trace(query_id, route.workers)
        else:
            self.metrics.updates_submitted += 1
            self._record_update(task)
        self._send_batches(ready)
        if stamping:
            query_id = task.query_id if task.kind is TaskKind.QUERY else None
            self._telemetry.record(
                "dispatch", time.monotonic() - t0, start=t0, query_id=query_id
            )
        self._collect_ready()

    def _record_update(self, task: Task) -> None:
        """Advance the submit-time object ledger; dual-feed a warming
        shape.  Runs *after* the serving router validated the update,
        so the transition feed can never see an invalid op."""
        if task.kind is TaskKind.INSERT:
            self._objects[task.object_id] = task.location
        else:
            self._objects.pop(task.object_id, None)
        if self._transition is not None:
            self._feed_transition(task)

    def flush(self) -> None:
        """Dispatch every partial batch (latency over amortization)."""
        if not self._started or self._closed:
            return
        with self.metrics.timed("dispatch", events=0):
            ready = self._batcher.flush()
        self._send_batches(ready)

    @property
    def batch_size(self) -> int:
        return self._batcher.batch_size

    def set_batch_size(self, batch_size: int) -> None:
        """Change the dispatch batch size for subsequent submits.

        Already-buffered ops are flushed first so no op waits on the
        *old* threshold while the new one is in force — the switch is
        FCFS-transparent.
        """
        self.flush()
        self._batcher.set_batch_size(batch_size)

    def retune_batch_size(
        self, arrival_rate: float, *, candidates: tuple[int, ...] | None = None
    ) -> int:
        """Adapt ``batch_size`` to measured timings; return the choice.

        Calibrates the stage-cost model from this pool's own telemetry
        (:func:`repro.sim.measurement.machine_spec_from_telemetry`) and
        picks the candidate minimizing modeled Rq at ``arrival_rate``
        (per-worker tasks/second) with fanout ``x`` — one merge per
        partial (see :mod:`repro.mpr.batching`).  With telemetry
        disabled the model falls back to :class:`MachineSpec` defaults,
        which still yields a sane size.  No-op if the choice matches
        the current size.
        """
        from .batching import DEFAULT_BATCH_CANDIDATES, recommend_batch_size

        choice = recommend_batch_size(
            self._telemetry, arrival_rate,
            candidates=(
                candidates if candidates is not None
                else DEFAULT_BATCH_CANDIDATES
            ),
            fanout=self._config.x,
        )
        if choice != self._batcher.batch_size:
            self.set_batch_size(choice)
            if self._telemetry.enabled:
                self._telemetry.count("pool.batch_retunes")
        return choice

    def _send_batches(self, batches: Sequence[WorkerBatch]) -> None:
        stamping = self._telemetry.enabled or self._resilience.enabled
        for worker_id, ops in batches:
            state = self._workers[worker_id]
            self._ensure_alive(state)
            seq = state.next_seq
            state.next_seq += 1
            state.unacked[seq] = ops
            if stamping:
                state.sent_at[seq] = time.monotonic()
            with self.metrics.timed("dispatch"):
                state.inbox.put(("batch", seq, ops))
            self.metrics.batches_sent += 1
            self.metrics.messages_sent += 1
            self.metrics.ops_dispatched += len(ops)

    # ------------------------------------------------------------------
    # Collection and supervision
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> dict[int, list[Neighbor]]:
        """Flush, wait until the pool quiesces, return finished answers.

        Returns the aggregated top-k for every query submitted since
        the previous drain.  ``timeout`` bounds the total wait
        (``None`` = wait as long as workers keep making progress); on
        expiry the raised :class:`TimeoutError` lists every outstanding
        ``(worker_id, seq)`` batch so the caller can see exactly which
        cells never acknowledged.  Worker death during the wait
        triggers respawn + replay; with resilience enabled, queries
        past their deadline are hedged to a sibling replica row and
        columns with no live replica resolve as degraded
        :class:`~repro.knn.base.PartialResult` answers instead of
        blocking forever.
        """
        self.flush()
        if self._resilience.enabled:
            return self._drain_resilient(timeout)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._transition is not None or self._retiring:
                self._advance_transition(time.monotonic())
            if not self._outstanding():
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise self._quiesce_failure(timeout)
            with self.metrics.timed("wait", events=0):
                readers = self._live_readers()
                if readers:
                    ready = mp_connection.wait(
                        readers, timeout=self._health_check_interval
                    )
                else:  # every worker dead: wait out one interval
                    time.sleep(self._health_check_interval)
                    ready = []
            handled = False
            for reader in ready:
                owner = self._reader_owners.get(reader)
                message = self._receive(reader)
                if message is not None:
                    handled = True
                    self._handle(message, owner)
            if not handled:
                self._check_health()
        if self._transition is not None or self._retiring:
            self._advance_transition(time.monotonic())
        return self._finish_answers()

    def _quiesce_failure(self, timeout: float | None) -> QuiesceTimeout:
        """Diagnostic for a drain timeout: name every unacked batch and
        every query id those batches (or unresolved hedges) strand."""
        states = list(self._workers.values()) + list(self._retiring)
        pending = sorted(
            (state.worker_id, seq)
            for state in states
            for seq in state.unacked
        )
        query_ids = {
            op[1]
            for state in states
            for ops in state.unacked.values()
            for op in ops
            if op[0] == "query"
        }
        if self._resilience.enabled:
            query_ids.update(
                query_id for query_id in self._columns
                if not self._is_resolved(query_id)
            )
        else:
            # Without resilience no answer is delivered on a timeout at
            # all, but the *stuck* queries are the ones named: any query
            # whose partials are incomplete is implicated.
            query_ids.update(
                query_id
                for query_id, expected in self._expected.items()
                if len(self._partials.get(query_id, ())) != expected
            )
        affected = sorted(query_ids)
        return QuiesceTimeout(
            f"pool did not quiesce within {timeout} s; "
            f"{len(pending)} batches outstanding (worker, seq): {pending}; "
            f"affected query ids: {affected}",
            pending=pending,
            query_ids=affected,
        )

    def _drain_resilient(
        self, timeout: float | None
    ) -> dict[int, list[Neighbor]]:
        """Deadline/hedge/degrade-aware drain loop.

        Loops until every batch is acknowledged (or quarantined) *and*
        every submitted query is resolved — answered on all its
        columns, or explicitly degraded.  Once nothing is in flight,
        any still-unresolved query is force-resolved: hedged to an
        untried replica row when one exists, degraded otherwise — the
        loop can therefore never hang on a dead column.
        """
        wall = None if timeout is None else time.monotonic() + timeout
        while True:
            now = time.monotonic()
            if self._transition is not None or self._retiring:
                self._advance_transition(now)
            self._enforce_deadlines(now)
            outstanding = self._outstanding()
            if not outstanding and not self._has_unresolved():
                break
            if wall is not None and now >= wall:
                raise self._quiesce_failure(timeout)
            if not outstanding:
                self._force_resolve(now)
                continue
            wait_for = self._health_check_interval
            if self._deadline_heap:
                wait_for = min(
                    wait_for, max(self._deadline_heap[0][0] - now, 0.001)
                )
            with self.metrics.timed("wait", events=0):
                readers = self._live_readers()
                if readers:
                    ready = mp_connection.wait(readers, timeout=wait_for)
                else:
                    time.sleep(wait_for)
                    ready = []
            handled = False
            for reader in ready:
                owner = self._reader_owners.get(reader)
                message = self._receive(reader)
                if message is not None:
                    handled = True
                    self._handle(message, owner)
            if not handled:
                self._check_health()
        if self._transition is not None or self._retiring:
            self._advance_transition(time.monotonic())
        return self._finish_answers_resilient()

    def run(self, tasks: Sequence[Task]) -> dict[int, list[Neighbor]]:
        """Submit a whole stream and drain it; workers stay alive."""
        self.start()
        for task in tasks:
            self.submit(task)
        return self.drain()

    def worker_pids(self) -> dict[WorkerId, int]:
        """Live worker process ids (fault-injection hooks)."""
        return {
            worker_id: state.process.pid
            for worker_id, state in self._workers.items()
            if state.process is not None and state.process.pid is not None
        }

    def _outstanding(self) -> int:
        total = sum(len(state.unacked) for state in self._workers.values())
        for state in self._retiring:
            total += len(state.unacked)
        return total

    def _live_readers(self) -> list:
        return list(self._reader_owners)

    def _receive(self, reader):
        """Read one message off a result pipe; retire it on EOF.

        EOF means the writing worker is gone (its buffered messages
        stay readable until then, so no surviving ack is lost); the
        reader is dropped from the wait set until a respawn replaces
        it.  A warming worker's EOF marks the in-flight transition
        faulted — processed (as a rollback) by ``_advance_transition``.
        Returns the message, or None for a retired reader.
        """
        try:
            return reader.recv()
        except (EOFError, OSError):
            state = self._reader_owners.get(reader)
            if state is not None:
                self._retire_reader(state)
                if (
                    state.group == "transition"
                    and self._transition is not None
                    and self._transition.fault is None
                ):
                    self._transition.fault = (
                        f"worker {state.worker_id} died while warming"
                    )
            return None

    def _retire_reader(self, state: _WorkerState) -> None:
        reader = state.reader
        if reader is None:
            return
        self._reader_owners.pop(reader, None)
        try:
            reader.close()
        except OSError:  # pragma: no cover - already closed
            pass
        state.reader = None

    def _collect_ready(self) -> None:
        while True:
            readers = self._live_readers()
            if not readers:
                return
            ready = mp_connection.wait(readers, timeout=0)
            if not ready:
                return
            for reader in ready:
                owner = self._reader_owners.get(reader)
                message = self._receive(reader)
                if message is not None:
                    self._handle(message, owner)

    def _handle(self, message: tuple, state: _WorkerState | None = None) -> None:
        """Process one worker message.

        ``state`` is the pipe's owning worker (resolved by the caller
        *before* the read, since EOF pops the owner map).  Dispatching
        on the state object rather than the wire worker id is what
        keeps a post-cutover retiring fleet — whose ids collide with
        the current one — unambiguous.
        """
        kind = message[0]
        if kind == "done":
            if len(message) == 5:
                _, worker_id, seq, partials, stamps = message
            else:
                _, worker_id, seq, partials = message
                stamps = None
            if state is None:
                state = self._workers.get(worker_id)
                if state is None:  # pragma: no cover - late stray ack
                    return
            if state.group == "transition":
                # Probe or catch-up ack: no queries, no stamps recorded
                # (dual-fed updates must not double-count histograms).
                state.acknowledge(seq)
                state.sent_at.pop(seq, None)
                return
            resilient = self._resilience.enabled
            if not resilient:
                if stamps is not None and self._telemetry.enabled:
                    self._record_batch_stamps(state, seq, stamps)
                state.acknowledge(seq)
                state.sent_at.pop(seq, None)
                for query_id, partial in partials:
                    self.metrics.partials_received += 1
                    self._partials.setdefault(query_id, {})[
                        worker_id
                    ] = partial
                return
            self._handle_done_resilient(state, seq, partials, stamps)
        elif kind == "error":
            _, worker_id, seq, detail = message
            if state is None:
                state = self._workers.get(worker_id)
                if state is None:  # pragma: no cover - late stray error
                    return
            if state.group == "transition":
                if self._transition is not None and self._transition.fault is None:
                    self._transition.fault = (
                        f"worker {worker_id} failed while warming "
                        f"batch {seq}: {detail}"
                    )
                return
            if self._resilience.enabled:
                self._handle_poison(state, seq, detail)
                return
            state.failed = detail
            raise WorkerCrash(
                f"worker {worker_id} failed on batch {seq}: {detail}"
            )
        elif kind == "stopped":  # graceful exit ack (retire or close)
            pass
        else:  # pragma: no cover - protocol guard
            raise RuntimeError(f"unknown pool message {message!r}")

    def _handle_done_resilient(
        self,
        state: _WorkerState,
        seq: int,
        partials: list,
        stamps: tuple | None,
    ) -> None:
        """A resilient ack: per-column first-answer-wins dedup.

        A hedge means the same query may be answered by two rows of one
        column; the first partial per ``(layer, column)`` is accepted,
        later ones from a *different* worker are dropped as duplicates
        (their telemetry spans are skipped too, so a traced query keeps
        exactly one ``execute`` span).  Replays from the *same* worker
        overwrite idempotently, as in the non-resilient path.
        """
        worker_id = state.worker_id
        column = (worker_id[0], worker_id[2])
        telemetry_on = self._telemetry.enabled
        stamping = stamps is not None and telemetry_on
        # Only needed as the span-skip set; None skips the allocation.
        duplicates: set[int] | None = set() if stamping else None
        metrics = self.metrics
        accepted_map = self._accepted
        pending = self._columns
        for query_id, partial in partials:
            metrics.partials_received += 1
            if query_id not in pending:
                # Query already finished (late ack after a prior drain)
                # or was shed: nothing to attribute the spans to.
                if duplicates is not None:
                    duplicates.add(query_id)
                continue
            accepted = accepted_map.get(query_id)
            if accepted is None:
                accepted = accepted_map[query_id] = {}
            else:
                prior = accepted.get(column)
                if prior is not None and prior[0] != worker_id:
                    metrics.duplicate_acks += 1
                    if telemetry_on:
                        self._telemetry.count("resilience.duplicate_acks")
                    if duplicates is not None:
                        duplicates.add(query_id)
                    continue
            accepted[column] = (worker_id, partial)
            # A late answer beats a provisional degrade decision.
            missing = self._missing.get(query_id)
            if missing is not None:
                missing.discard(column)
        if stamping:
            self._record_batch_stamps(state, seq, stamps, skip=duplicates)
        ops = state.unacked.get(seq)
        if state.acknowledge(seq) and state.group == "current":
            # Retiring acks skip the ledgers: the cutover cleared the
            # admission counts and breakers, whose keys now belong to
            # the same-id workers of the new shape.
            self._resilience.admission.acked(worker_id, len(ops))
            breaker = self._resilience.breakers().get(worker_id)
            if breaker is not None:
                breaker.record_success()
        state.sent_at.pop(seq, None)

    def _handle_poison(
        self, state: _WorkerState, seq: int, detail: str
    ) -> None:
        """A worker reported an execution error on batch ``seq``.

        The batch is *poison*: quarantined permanently (never replayed
        — replaying would crash-loop every replica it touches) and the
        worker, which exits after reporting, is respawned without
        feeding the circuit breaker.  Queries in the batch resolve via
        hedge/degrade; updates in it are dropped on this replica and
        kept in ``state.poisoned`` for inspection — the price of not
        wedging the whole column on one bad op.
        """
        ops = state.unacked.pop(seq, None)
        state.sent_at.pop(seq, None)
        if ops is not None:
            state.poisoned[seq] = ops
            self._resilience.admission.acked(state.worker_id, len(ops))
            self.metrics.batches_quarantined += 1
            if self._telemetry.enabled:
                self._telemetry.count("resilience.quarantined")
        state.down = True  # exit is expected: skip the breaker
        self._respawn_resilient(state)

    def _record_batch_stamps(
        self,
        state: _WorkerState,
        seq: int,
        stamps: tuple,
        skip: frozenset[int] | set[int] = frozenset(),
    ) -> None:
        """Stitch one stamped ack into spans and stage histograms.

        ``stamps`` is the worker's ``(t_recv, t_ack_send, op_timings,
        kernel_delta)``; combined with the parent's send stamp this
        yields one ``queue_wait`` span for the batch (attributed to
        every query in it), an ``execute`` span per query, an
        ``update`` histogram sample per update op, and one ``ack`` span
        (pipe transit, measured at read time).  A grouped ``("qb", ...)``
        run additionally records an ``execute_batch`` histogram span
        plus the ``exec.batches``/``exec.batch_queries`` counters, and
        each of its queries gets an equal *share* of the run as its
        ``execute`` span — batched queries cannot be timed individually,
        but their traces stay complete.  ``kernel_delta`` folds the
        child's ``KERNEL_CALLS`` increments into the parent's counters.
        Replayed batches restamp the same ``(stage, worker)`` slots;
        last report wins inside the trace.  ``skip`` names queries whose
        per-query spans must *not* be recorded — duplicate answers of a
        hedged query, whose accepted answer already carries the spans.
        """
        t_recv, t_ack_send, op_timings, kernel_delta = stamps
        if kernel_delta:
            KERNEL_CALLS.update(kernel_delta)
        telemetry = self._telemetry
        worker_id = state.worker_id
        sent = state.sent_at.get(seq)
        ack_wait = time.monotonic() - t_ack_send
        queue_wait = max(t_recv - sent, 0.0) if sent is not None else None
        query_ids: list[int] = []
        for entry in op_timings:
            if entry[0] == "q":
                query_ids.append(entry[1])
            elif entry[0] == "qb":
                query_ids.extend(entry[1])
        if skip:
            query_ids = [qid for qid in query_ids if qid not in skip]
        if queue_wait is not None:
            if query_ids:
                for query_id in query_ids:
                    telemetry.record(
                        "queue_wait", queue_wait,
                        start=sent, query_id=query_id, worker=worker_id,
                    )
            else:  # pure-update batch: histogram only, once
                telemetry.record("queue_wait", queue_wait, start=sent)
        for entry in op_timings:
            if entry[0] == "q":
                _, query_id, t0, t1 = entry
                if query_id in skip:
                    continue
                telemetry.record(
                    "execute", t1 - t0,
                    start=t0, query_id=query_id, worker=worker_id,
                )
            elif entry[0] == "qb":
                _, run_ids, t0, t1 = entry
                telemetry.record("execute_batch", t1 - t0, start=t0)
                telemetry.count("exec.batches")
                telemetry.count("exec.batch_queries", len(run_ids))
                share = (t1 - t0) / len(run_ids)
                for position, query_id in enumerate(run_ids):
                    if query_id in skip:
                        continue
                    span_start = t0 + position * share
                    telemetry.record(
                        "execute", share,
                        start=span_start, query_id=query_id, worker=worker_id,
                    )
            else:
                _, t0, t1 = entry
                telemetry.record("update", t1 - t0, start=t0)
        if query_ids:
            for query_id in query_ids:
                telemetry.record(
                    "ack", ack_wait,
                    start=t_ack_send, query_id=query_id, worker=worker_id,
                )
        else:
            telemetry.record("ack", ack_wait, start=t_ack_send)

    def _finish_answers(self) -> dict[int, list[Neighbor]]:
        stamping = self._telemetry.enabled
        with self.metrics.timed("aggregate", events=len(self._expected)):
            answers: dict[int, list[Neighbor]] = {}
            for query_id, expected in self._expected.items():
                parts = self._partials.get(query_id, {})
                if len(parts) != expected:
                    raise RuntimeError(
                        f"query {query_id}: {len(parts)} partials, "
                        f"expected {expected}"
                    )
                if stamping:
                    with self._telemetry.span("merge", query_id=query_id):
                        answers[query_id] = merge_partial_results(
                            list(parts.values()), self._ks[query_id]
                        )
                else:
                    answers[query_id] = merge_partial_results(
                        list(parts.values()), self._ks[query_id]
                    )
        if stamping:
            for query_id in self._expected:
                trace = self._telemetry.trace(query_id)
                if trace is not None and trace.spans:
                    self._telemetry.record("response", trace.response_time)
        self._expected.clear()
        self._ks.clear()
        self._partials.clear()
        return answers

    def _finish_answers_resilient(self) -> dict[int, list[Neighbor]]:
        """Merge accepted columns; flag degraded and shed queries.

        A query whose columns all answered merges to a plain list,
        bit-identical to the non-resilient path.  A query with degraded
        columns merges the survivors into a
        :class:`~repro.knn.base.PartialResult` naming the missing
        ``(layer, column)`` cells; a shed query maps to its
        :class:`Overloaded` verdict.
        """
        stamping = self._telemetry.enabled
        events = len(self._columns) + len(self._shed)
        with self.metrics.timed("aggregate", events=events):
            answers: dict[int, list[Neighbor]] = {}
            for query_id, columns in self._columns.items():
                accepted = self._accepted.get(query_id, {})
                missing = sorted(
                    column for column in columns if column not in accepted
                )
                parts = [partial for _worker, partial in accepted.values()]
                if stamping:
                    with self._telemetry.span("merge", query_id=query_id):
                        answers[query_id] = merge_partial_results(
                            parts, self._ks[query_id],
                            missing_columns=missing,
                        )
                else:
                    answers[query_id] = merge_partial_results(
                        parts, self._ks[query_id], missing_columns=missing
                    )
                if missing:
                    self.metrics.degraded += 1
                    if stamping:
                        self._telemetry.count("resilience.degraded")
            for query_id, overloaded in self._shed.items():
                answers[query_id] = overloaded
        if stamping:
            for query_id in self._columns:
                trace = self._telemetry.trace(query_id)
                if trace is not None and trace.spans:
                    self._telemetry.record("response", trace.response_time)
        self._columns.clear()
        self._locations.clear()
        self._accepted.clear()
        self._attempted.clear()
        self._rows.clear()
        self._missing.clear()
        self._shed.clear()
        self._slo.clear()
        self._deadline_heap.clear()
        self._ks.clear()
        self._query_gen.clear()
        return answers

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def _check_health(self) -> None:
        if self._resilience.enabled:
            self._check_health_resilient(time.monotonic())
            return
        for state in self._workers.values():
            if state.unacked:
                self._ensure_alive(state)

    def _check_health_resilient(self, now: float) -> None:
        """Liveness sweep: stalls, deaths, and half-open breaker trials.

        Unlike the plain sweep this also visits workers with *no*
        unacked work — a quarantined (breaker-open) worker holds its
        batches outside ``unacked``, and its half-open retry can only
        fire from here.
        """
        stall_timeout = self._resilience.config.stall_timeout
        for state in self._workers.values():
            process = state.process
            alive = process is not None and process.is_alive()
            if alive:
                if (
                    stall_timeout is not None
                    and state.sent_at
                    and now - min(state.sent_at.values()) > stall_timeout
                ):
                    # Live but silent past the watchdog (SIGSTOPped or
                    # wedged in a syscall): SIGKILL converts the stall
                    # into the well-understood crash/replay path.
                    process.kill()
                    process.join(timeout=1.0)
                    self.metrics.stall_kills += 1
                    if self._telemetry.enabled:
                        self._telemetry.count("resilience.stall_kills")
                    self._handle_death(state, now)
                continue
            if state.unacked or state.quarantined:
                self._handle_death(state, now)

    def _ensure_alive(self, state: _WorkerState) -> None:
        process = state.process
        if process is not None and process.is_alive():
            return
        if self._resilience.enabled:
            self._handle_death(state, time.monotonic())
            return
        if state.failed is not None:
            raise WorkerCrash(
                f"worker {state.worker_id} is failed: {state.failed}"
            )
        if state.respawns >= self._max_respawns:
            raise WorkerCrash(
                f"worker {state.worker_id} exceeded the respawn budget "
                f"({self._max_respawns}); last batches: "
                f"{sorted(state.unacked)}"
            )
        self._respawn(state)

    def _handle_death(self, state: _WorkerState, now: float) -> None:
        """Resilient death processing: feed the breaker, maybe respawn.

        The first observation of a death records one breaker failure;
        crossing the consecutive-failure threshold opens the breaker
        and quarantines the in-flight batches.  A respawn happens only
        when the breaker allows it (always while closed; one half-open
        trial per backoff window while open) — so a crash-looping cell
        costs an exponentially shrinking respawn rate instead of a
        tight fork loop, and its queries hedge or degrade meanwhile.
        """
        breaker = self._resilience.breaker(state.worker_id)
        if not state.down:
            state.down = True
            if breaker.record_failure(now):
                self.metrics.breaker_opens += 1
                if self._telemetry.enabled:
                    self._telemetry.count("resilience.breaker_open")
                self._quarantine(state)
        if breaker.allow(now):
            self._respawn_resilient(state)
        else:
            # Batches dispatched while the breaker was already open
            # (the send path only learns of the death here) must not
            # count as outstanding either: park them with the rest.
            self._quarantine(state)

    def _quarantine(self, state: _WorkerState) -> None:
        """Park a broken worker's in-flight batches outside ``unacked``.

        Quarantined batches stop counting as outstanding (the drain
        loop must not wait on a cell the breaker declared down) and
        release their admission debt; the half-open respawn moves them
        back and replays them in seq order.
        """
        if not state.unacked:
            return
        admission = self._resilience.admission
        moved = 0
        for seq, ops in state.unacked.items():
            state.quarantined[seq] = ops
            admission.acked(state.worker_id, len(ops))
            moved += 1
        state.unacked.clear()
        state.sent_at.clear()
        self.metrics.batches_quarantined += moved
        if self._telemetry.enabled:
            self._telemetry.count("resilience.quarantined", moved)

    def _respawn_resilient(self, state: _WorkerState) -> None:
        """Respawn with quarantine replay (the breaker-gated variant).

        Differs from :meth:`_respawn` in two ways: quarantined batches
        rejoin the unacked log (and re-enter the admission ledger)
        before the replay, and the per-worker respawn budget does not
        apply — the circuit breaker's exponential backoff is the
        crash-loop bound instead.
        """
        if state.process is not None:
            state.process.join(timeout=1.0)
        self._collect_ready()
        self._retire_reader(state)
        if state.quarantined:
            admission = self._resilience.admission
            for seq, ops in state.quarantined.items():
                state.unacked[seq] = ops
                admission.dispatched((state.worker_id,), len(ops))
            state.quarantined.clear()
        state.respawns += 1
        self.metrics.respawns += 1
        self.metrics.batches_replayed += len(state.unacked)
        if self._telemetry.enabled:
            self._telemetry.count("pool.respawns")
        self._spawn(state)
        state.down = False
        now = time.monotonic()
        for seq in sorted(state.unacked):
            state.sent_at[seq] = now
            state.inbox.put(("batch", seq, state.unacked[seq]))
            self.metrics.messages_sent += 1

    # ------------------------------------------------------------------
    # Deadlines, hedges, and degraded answers (resilience only)
    # ------------------------------------------------------------------
    def _is_resolved(self, query_id: int) -> bool:
        accepted = self._accepted.get(query_id, ())
        missing = self._missing.get(query_id, ())
        return all(
            column in accepted or column in missing
            for column in self._columns[query_id]
        )

    def _has_unresolved(self) -> bool:
        return any(
            not self._is_resolved(query_id) for query_id in self._columns
        )

    def _enforce_deadlines(self, now: float) -> None:
        """Pop due deadlines; hedge (or degrade) the late queries.

        A query still unresolved at its deadline counts one miss and
        re-arms for another SLO window, so a hedge that itself lands on
        a dying worker gets hedged again until the rows are exhausted.
        """
        heap = self._deadline_heap
        while heap and heap[0][0] <= now:
            _due, query_id = heapq.heappop(heap)
            if query_id not in self._columns or self._is_resolved(query_id):
                continue
            self.metrics.deadline_misses += 1
            if self._telemetry.enabled:
                self._telemetry.count("resilience.deadline_misses")
            self._resolve_query(query_id, now, force=False)
            if not self._is_resolved(query_id):
                heapq.heappush(heap, (now + self._slo[query_id], query_id))

    def _force_resolve(self, now: float) -> None:
        """Nothing in flight: settle every still-unresolved query.

        With zero outstanding batches no answer can arrive on its own,
        so each unanswered column either gets a hedge to an untried row
        (re-entering the drain loop) or is degraded.  Attempted-row
        sets grow monotonically, so this terminates within ``y`` rounds
        per column.
        """
        for query_id in self._columns:
            if not self._is_resolved(query_id):
                self._resolve_query(query_id, now, force=True)

    def _resolve_query(
        self, query_id: int, now: float, *, force: bool
    ) -> None:
        """Hedge or degrade every unanswered column of one query."""
        accepted = self._accepted.get(query_id, ())
        missing = self._missing.get(query_id, set())
        if self._query_gen.get(query_id, 0) != self._generation:
            # Routed under a shape that has since cut over: its replica
            # rows are retiring, and the current matrix holds different
            # cells, so a hedge would return the wrong column contents.
            # Wait for the retiring workers (which are respawned on
            # death until drained); degrade only when forced — i.e.
            # when nothing is in flight that could still answer.
            if force:
                for column in self._columns[query_id]:
                    if column not in accepted and column not in missing:
                        self._degrade(query_id, column)
            return
        hedge_enabled = self._resilience.config.hedge
        for column in self._columns[query_id]:
            if column in accepted or column in missing:
                continue
            row = (
                self._pick_hedge_row(query_id, column, now)
                if hedge_enabled
                else None
            )
            if row is not None:
                self._dispatch_hedge(query_id, column, row, now)
            elif force or not hedge_enabled or self._column_down(column):
                self._degrade(query_id, column)
            # else: every row is attempted but some attempt is still in
            # flight (replay pending) — keep waiting for it.

    def _column_down(self, column: tuple[int, int]) -> bool:
        """True when no replica row of ``column`` can currently serve."""
        layer, col = column
        breakers = self._resilience.breakers()
        for row in range(self._config.y):
            breaker = breakers.get((layer, row, col))
            if breaker is None or breaker.state != CircuitBreaker.OPEN:
                return False
        return True

    def _attempted_rows(
        self, query_id: int, column: tuple[int, int]
    ) -> set[int]:
        """Rows already tried for ``(query, column)``, seeded lazily.

        The submit path records only the originally routed row (one int
        store); the full per-column set materializes here, on the first
        hedge decision for the query.
        """
        attempted = self._attempted.get(query_id)
        if attempted is None:
            row = self._rows[query_id]
            attempted = self._attempted[query_id] = {
                col: {row} for col in self._columns[query_id]
            }
        return attempted[column]

    def _pick_hedge_row(
        self, query_id: int, column: tuple[int, int], now: float
    ) -> int | None:
        """Least-loaded untried replica row whose breaker permits work."""
        layer, col = column
        attempted = self._attempted_rows(query_id, column)
        breakers = self._resilience.breakers()
        admission = self._resilience.admission
        best_row: int | None = None
        best_load = 0
        for row in range(self._config.y):
            if row in attempted:
                continue
            breaker = breakers.get((layer, row, col))
            if breaker is not None and not breaker.allow(now):
                continue
            load = admission.load((layer, row, col))
            if best_row is None or load < best_load:
                best_row = row
                best_load = load
        return best_row

    def _dispatch_hedge(
        self, query_id: int, column: tuple[int, int], row: int, now: float
    ) -> None:
        """Re-issue one query to a sibling replica row of ``column``.

        The hedge is a single-op batch through the normal seq/unacked
        machinery, so it survives crashes of its target exactly like a
        first-class dispatch; queries never mutate state, so the
        original answering later is harmless (first answer wins).
        """
        layer, col = column
        target: WorkerId = (layer, row, col)
        state = self._workers[target]
        self._ensure_alive(state)
        ops = (
            ("query", query_id, self._locations[query_id],
             self._ks[query_id]),
        )
        seq = state.next_seq
        state.next_seq += 1
        state.unacked[seq] = ops
        state.sent_at[seq] = now
        state.inbox.put(("batch", seq, ops))
        self._attempted_rows(query_id, column).add(row)
        self._resilience.admission.dispatched((target,), 1)
        self.metrics.hedges += 1
        self.metrics.batches_sent += 1
        self.metrics.messages_sent += 1
        self.metrics.ops_dispatched += 1
        if self._telemetry.enabled:
            self._telemetry.count("resilience.hedges")

    def _degrade(self, query_id: int, column: tuple[int, int]) -> None:
        """Give up on one column for one query: answer without it."""
        self._missing.setdefault(query_id, set()).add(column)

    # ------------------------------------------------------------------
    # Live reconfiguration (shape changes without downtime)
    # ------------------------------------------------------------------
    def begin_reconfigure(
        self,
        new_config: MPRConfig,
        *,
        trigger: str = "manual",
        warm_timeout: float = 10.0,
        retire_timeout: float = 10.0,
    ) -> ReconfigEvent:
        """Start a supervised transition to ``new_config``; non-blocking.

        Spawns the new shape's workers (attaching to the already-
        published shared-memory/memmap graph), hands each an exact
        object-cell snapshot from the submit-time ledger, and sends an
        empty *probe* batch whose ack proves the spawn + graph attach +
        cell load completed end to end.  The old shape keeps serving
        throughout; updates submitted from now on are dual-fed to the
        warming cells.  The transition then advances opportunistically
        from the submit/drain paths (or :meth:`reconfigure`'s wait
        loop): once every probe is acked the router/batcher pair is
        swapped atomically; any warming fault or the ``warm_timeout``
        expiring rolls back to the old shape instead.

        Raises :class:`ReconfigRejected` (recording a rejected event)
        when the target equals the current shape, a transition is
        already in flight, the previous shape is still retiring, or the
        reconfiguration circuit breaker is open.
        """
        self.start()
        now = time.monotonic()
        if new_config == self._config:
            self._reject_reconfigure(
                new_config, trigger, "target equals the current shape"
            )
        if self._transition is not None:
            self._reject_reconfigure(
                new_config, trigger, "a transition is already in flight"
            )
        if self._retiring:
            self._reject_reconfigure(
                new_config, trigger, "the previous shape is still retiring"
            )
        if not self._reconfig_breaker.allow(now):
            self._reject_reconfigure(
                new_config, trigger,
                "reconfiguration breaker open after repeated rollbacks",
            )
        event = ReconfigEvent(
            started_at=time.time(),
            old_config=self._config,
            new_config=new_config,
            trigger=trigger,
        )
        router = MPRRouter(new_config, telemetry=NULL_TELEMETRY)
        contents = router.preload_objects(dict(self._objects))
        workers: dict[WorkerId, _WorkerState] = {}
        for worker_id, cell in contents.items():
            state = _WorkerState(worker_id, cell)
            state.group = "transition"
            workers[worker_id] = state
        batcher = RouteBatcher(
            router, self._batcher.batch_size, telemetry=NULL_TELEMETRY
        )
        self._transition = _Transition(
            event, new_config, router, batcher, workers,
            warm_deadline=now + warm_timeout,
            retire_timeout=retire_timeout,
            started=now,
        )
        self.reconfig_history.append(event)
        if self._telemetry.enabled:
            self._telemetry.count("reconfig.attempts")
        try:
            for state in workers.values():
                self._spawn(state)
                seq = state.next_seq
                state.next_seq += 1
                state.unacked[seq] = ()
                state.sent_at[seq] = time.monotonic()
                state.inbox.put(("batch", seq, ()))
        except Exception as exc:  # pragma: no cover - spawn failure
            self._transition_failed(f"spawn failed: {exc!r}")
            raise
        return event

    def reconfigure(
        self,
        new_config: MPRConfig,
        *,
        trigger: str = "manual",
        warm_timeout: float = 10.0,
        retire_timeout: float = 10.0,
        wait_retire: bool = False,
        timeout: float = 30.0,
    ) -> ReconfigEvent:
        """Transition to ``new_config`` and wait for the outcome.

        Blocks until the transition completes (cutover done) or rolls
        back; with ``wait_retire`` also until the old shape has fully
        retired.  In-flight and newly arriving acks from the serving
        shape keep being collected while waiting, so calling this with
        queries outstanding is safe.  Returns the terminal
        :class:`ReconfigEvent`; raises :class:`ReconfigRejected` as
        :meth:`begin_reconfigure` does, or ``TimeoutError`` if the
        transition does not settle within ``timeout`` seconds.
        """
        event = self.begin_reconfigure(
            new_config, trigger=trigger,
            warm_timeout=warm_timeout, retire_timeout=retire_timeout,
        )
        deadline = time.monotonic() + timeout
        while True:
            now = time.monotonic()
            self._advance_transition(now)
            if event.outcome != "pending" and not (
                wait_retire and self._retiring
            ):
                break
            if now >= deadline:
                raise TimeoutError(
                    f"reconfiguration to ({new_config.x}, {new_config.y}, "
                    f"{new_config.z}) did not settle within {timeout} s "
                    f"(outcome={event.outcome!r})"
                )
            readers = self._live_readers()
            if readers:
                ready = mp_connection.wait(
                    readers, timeout=self._health_check_interval
                )
                for reader in ready:
                    owner = self._reader_owners.get(reader)
                    message = self._receive(reader)
                    if message is not None:
                        self._handle(message, owner)
            else:  # pragma: no cover - every process dead
                time.sleep(self._health_check_interval)
        return event

    def transition_pids(self) -> dict[WorkerId, int]:
        """Warming-worker pids of the in-flight transition (chaos hooks)."""
        if self._transition is None:
            return {}
        return {
            worker_id: state.process.pid
            for worker_id, state in self._transition.workers.items()
            if state.process is not None and state.process.pid is not None
        }

    def _reject_reconfigure(
        self, new_config: MPRConfig, trigger: str, reason: str
    ) -> None:
        wall = time.time()
        event = ReconfigEvent(
            started_at=wall,
            old_config=self._config,
            new_config=new_config,
            trigger=trigger,
            outcome="rejected",
            reason=reason,
            finished_at=wall,
        )
        self.reconfig_history.append(event)
        if self._telemetry.enabled:
            self._telemetry.count("reconfig.rejected")
        raise ReconfigRejected(reason)

    def _feed_transition(self, task: Task) -> None:
        """Dual-feed one update to the warming shape's cells.

        The warming batcher buffers like the serving one; full batches
        dispatch immediately, partial ones are flushed at cutover.
        Because each worker inbox is FCFS, every catch-up batch is
        applied before any post-cutover batch reaches the same worker —
        the new cells are exactly the ledger state at cutover.
        """
        transition = self._transition
        _route, ready = transition.batcher.add(task)
        transition.event.catchup_ops += 1
        if ready:
            self._send_transition_batches(transition.workers, ready)

    def _send_transition_batches(
        self,
        workers: Mapping[WorkerId, _WorkerState],
        batches: Sequence[WorkerBatch],
    ) -> None:
        for worker_id, ops in batches:
            state = workers[worker_id]
            seq = state.next_seq
            state.next_seq += 1
            state.unacked[seq] = ops
            state.sent_at[seq] = time.monotonic()
            state.inbox.put(("batch", seq, ops))

    def _advance_transition(self, now: float) -> None:
        """One supervision step of the transition state machine.

        Called from the submit and drain paths whenever a transition or
        a retiring fleet exists (one branch otherwise): detects warming
        faults (→ rollback), performs the cutover once every probe is
        acked, enforces the warm deadline, and progresses retirement.
        """
        transition = self._transition
        if transition is not None:
            if transition.fault is None:
                for state in transition.workers.values():
                    process = state.process
                    if process is None or not process.is_alive():
                        transition.fault = (
                            f"worker {state.worker_id} died while warming"
                        )
                        break
            if transition.fault is not None:
                self._transition_failed(transition.fault)
            elif all(
                0 not in state.unacked
                for state in transition.workers.values()
            ):
                # Every probe acked: spawn + graph attach + cell load
                # proven end to end.  Catch-up batches may still be in
                # flight — per-worker FCFS guarantees they apply before
                # anything the new shape is sent after the swap.
                self._cutover(now)
            elif now >= transition.warm_deadline:
                self._transition_failed(
                    "warm phase timed out before every probe was acked"
                )
        self._check_retiring(now)

    def _cutover(self, now: float) -> None:
        """Swap the new shape in — atomic from the router's perspective.

        Both batchers are flushed first so every buffered op is
        dispatched under the shape that routed it; then the
        router/batcher/worker-map references swap in one supervisor
        step (no query can be routed to a retiring cell afterwards),
        the generation counter bumps, and the old fleet moves to the
        retiring list to finish its in-flight work.
        """
        transition = self._transition
        event = transition.event
        with self.metrics.timed("dispatch", events=0):
            old_ready = self._batcher.flush()
        self._send_batches(old_ready)
        self._send_transition_batches(
            transition.workers, transition.batcher.flush()
        )
        event.inflight_at_cutover = self._outstanding()
        old_states = list(self._workers.values())
        for state in old_states:
            state.group = "retiring"
            # Quarantined batches die with the shape: their queries
            # resolve via the stale-generation degrade path, their
            # updates are already in the ledger the new cells loaded.
            state.quarantined.clear()
        self._retiring.extend(old_states)
        self._retire_deadline = now + transition.retire_timeout
        self._retire_started = now
        self._retire_event = event
        for state in transition.workers.values():
            state.group = "current"
        self._workers = transition.workers
        transition.router.adopt_telemetry(self._telemetry)
        transition.batcher.adopt_telemetry(self._telemetry)
        self._router = transition.router
        self._batcher = transition.batcher
        self._config = transition.new_config
        self._layer_columns.clear()
        self._fallback_slo = (
            self._resilience.config.default_deadline
            if self._resilience.config.default_deadline is not None
            else transition.new_config.default_deadline
        ) if self._resilience.enabled else None
        self._generation += 1
        if self._resilience.enabled:
            # Worker ids are reused by the new shape: breaker state and
            # admission debt earned by the old fleet must not bleed
            # onto same-id successors.  Retiring acks skip both ledgers
            # (gated by group), so clearing cannot go negative.
            self._batcher.admission = self._resilience.admission
            self._resilience.clear_breakers()
            self._resilience.admission.outstanding.clear()
        self._transition = None
        self._reconfig_breaker.record_success()
        event.outcome = "completed"
        event.finished_at = time.time()
        event.generation = self._generation
        event.phases["warm"] = now - transition.started
        self.metrics.reconfigurations += 1
        if self._telemetry.enabled:
            self._telemetry.count("reconfig.completed")
            if event.catchup_ops:
                self._telemetry.count(
                    "reconfig.catchup_ops", event.catchup_ops
                )
            self._telemetry.record(
                "reconfig.warm", now - transition.started,
                start=transition.started,
            )

    def _transition_failed(
        self, reason: str, *, feed_breaker: bool = True
    ) -> None:
        """Roll back: discard the half-built shape, keep the old one.

        The serving shape was never touched — no router swap happened,
        no old worker was stopped — so rollback is a pure discard of
        the warming fleet.  Feeds the reconfiguration circuit breaker
        (unless the rollback is administrative, e.g. pool close).
        """
        transition = self._transition
        if transition is None:
            return
        self._transition = None
        for state in transition.workers.values():
            process = state.process
            if process is not None and process.is_alive():
                process.kill()
        for state in transition.workers.values():
            if state.process is not None:
                state.process.join(timeout=1.0)
            self._retire_reader(state)
        event = transition.event
        event.outcome = "rolled_back"
        event.reason = reason
        event.finished_at = time.time()
        event.phases["warm"] = time.monotonic() - transition.started
        self.metrics.reconfig_rollbacks += 1
        if self._telemetry.enabled:
            self._telemetry.count("reconfig.rollbacks")
        if feed_breaker and self._reconfig_breaker.record_failure(
            time.monotonic()
        ):
            if self._telemetry.enabled:
                self._telemetry.count("reconfig.breaker_open")

    def _check_retiring(self, now: float) -> None:
        """Progress the retiring fleet toward zero.

        A retiring worker that still owes pre-cutover answers is kept
        (and respawned breaker-free if it dies, stall-killed if it goes
        silent) until its unacked log drains; a drained worker gets one
        graceful stop, then SIGKILL past the retire deadline.  When the
        last one exits, the retire phase duration is recorded on the
        owning event.
        """
        if not self._retiring:
            return
        stall_timeout = (
            self._resilience.config.stall_timeout
            if self._resilience.enabled
            else None
        )
        finished: list[_WorkerState] = []
        for state in self._retiring:
            process = state.process
            alive = process is not None and process.is_alive()
            if state.unacked:
                if not alive:
                    self._respawn_retiring(state)
                elif (
                    stall_timeout is not None
                    and state.sent_at
                    and now - min(state.sent_at.values()) > stall_timeout
                ):
                    process.kill()
                    process.join(timeout=1.0)
                    self.metrics.stall_kills += 1
                    if self._telemetry.enabled:
                        self._telemetry.count("resilience.stall_kills")
                    self._respawn_retiring(state)
                continue
            if alive:
                if not state.stop_sent:
                    try:
                        state.inbox.put(_STOP)
                    except (OSError, ValueError):  # pragma: no cover
                        pass
                    state.stop_sent = True
                elif now >= self._retire_deadline:
                    process.kill()
                    process.join(timeout=1.0)
            else:
                if process is not None:
                    process.join(timeout=1.0)
                self._retire_reader(state)
                finished.append(state)
        if finished:
            for state in finished:
                self._retiring.remove(state)
            if not self._retiring:
                event = self._retire_event
                if event is not None:
                    event.phases["retire"] = now - self._retire_started
                    self._retire_event = None
                if self._telemetry.enabled:
                    self._telemetry.record(
                        "reconfig.retire", now - self._retire_started,
                        start=self._retire_started,
                    )

    def _respawn_retiring(self, state: _WorkerState) -> None:
        """Rebuild a dead retiring worker that still owes answers.

        Breaker-free by design: after the cutover the breaker and
        admission keys belong to the new shape's same-id workers, so a
        retiring respawn must not touch them.  The replica-cell +
        unacked-replay correctness argument is identical to
        :meth:`_respawn`.
        """
        if state.process is not None:
            state.process.join(timeout=1.0)
        self._collect_ready()  # a death can race its last ack
        self._retire_reader(state)
        if not state.unacked:
            return  # the racing acks just drained it: nothing to replay
        state.respawns += 1
        self.metrics.respawns += 1
        self.metrics.batches_replayed += len(state.unacked)
        if self._telemetry.enabled:
            self._telemetry.count("pool.respawns")
        self._spawn(state)
        state.down = False
        replay_stamp = time.monotonic()
        for seq in sorted(state.unacked):
            state.sent_at[seq] = replay_stamp
            state.inbox.put(("batch", seq, state.unacked[seq]))
            self.metrics.messages_sent += 1

    def _spawn(self, state: _WorkerState) -> None:
        state.inbox = self._context.Queue()
        reader, writer = self._context.Pipe(duplex=False)
        state.reader = reader
        self._reader_owners[reader] = state
        state.process = self._context.Process(
            target=_worker_main,
            args=(
                self._solution.spawn(dict(state.cell)),
                state.worker_id,
                state.inbox,
                writer,
                self._telemetry.enabled,
            ),
            daemon=True,
        )
        state.process.start()
        # Drop the parent's writer copy *before* any later fork: the
        # worker must be the pipe's only writer so its death raises EOF
        # on our end (and no sibling inherits a stray write fd).
        writer.close()

    def _respawn(self, state: _WorkerState) -> None:
        """Rebuild a dead worker from its replica cell; replay its log.

        A death can race with its last ack (the ack may be sitting in
        its result pipe), so pending acks are consumed first — replays
        of batches whose ack did survive are then skipped or, if
        already re-sent, deduplicated downstream.
        """
        if state.process is not None:
            # A cleanly-exited worker (poison task) flushes its error
            # report on exit; joining first makes it visible below so
            # poison surfaces as WorkerCrash instead of a replay loop.
            state.process.join(timeout=1.0)
        self._collect_ready()
        self._retire_reader(state)  # residual acks were drained above
        state.respawns += 1
        self.metrics.respawns += 1
        self.metrics.batches_replayed += len(state.unacked)
        if self._telemetry.enabled:
            self._telemetry.count("pool.respawns")
        self._spawn(state)
        stamping = self._telemetry.enabled
        for seq in sorted(state.unacked):
            if stamping:
                # Replays restamp their queue_wait from the re-send, so
                # the stitched trace reflects the run that produced the
                # surviving ack.
                state.sent_at[seq] = time.monotonic()
            state.inbox.put(("batch", seq, state.unacked[seq]))
            self.metrics.messages_sent += 1


@dataclass(frozen=True)
class SpeedupReport:
    """Wall-clock comparison of 1-worker vs N-worker batch execution."""

    num_queries: int
    workers: int
    serial_seconds: float
    parallel_seconds: float

    @property
    def speedup(self) -> float:
        if self.parallel_seconds <= 0:
            return float("inf")
        return self.serial_seconds / self.parallel_seconds


def run_batch_speedup(
    solution: KNNSolution,
    objects: Mapping[int, int],
    query_locations: Sequence[int],
    k: int = 10,
    workers: int = 4,
    start_method: str = "fork",
    batch_size: int = 16,
) -> SpeedupReport:
    """Execute a query batch on 1 process vs ``workers`` processes.

    Uses an F-Rep arrangement (x = 1, y = workers): each process holds
    the full object set, queries round-robin across processes — the
    configuration MPR picks for a pure-query load.  Demonstrates that
    process-level replication achieves the speedup the GIL denies to
    threads (bench_motivation's counterpart, with real parallelism).
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    from ..objects.tasks import QueryTask

    tasks = [
        QueryTask(float(position), position, location, k)
        for position, location in enumerate(query_locations)
    ]

    def timed_run(num_workers: int) -> float:
        config = MPRConfig(1, num_workers, 1)
        with ProcessPoolService(
            solution, config, dict(objects),
            batch_size=batch_size, start_method=start_method,
        ) as pool:
            start = time.perf_counter()
            pool.run(tasks)
            return time.perf_counter() - start

    serial = timed_run(1)
    parallel = timed_run(workers)
    return SpeedupReport(
        num_queries=len(query_locations),
        workers=workers,
        serial_seconds=serial,
        parallel_seconds=parallel,
    )

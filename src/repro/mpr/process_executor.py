"""A multiprocessing executor: real parallelism, no GIL.

The threaded executor (:mod:`repro.mpr.executor`) proves functional
correctness but cannot show wall-clock speedup under CPython's GIL.
This executor runs each w-core as an OS *process* — the literal
"multi-processing" of the paper's title — so query work genuinely
parallelizes across CPU cores.

Trade-offs that shape its design:

* the road network and each worker's object partition are pickled to
  the child once at start-up (mirroring MPR's one-time replica
  construction);
* task dispatch goes over ``multiprocessing`` queues, whose per-message
  cost (~tens of μs) dwarfs the paper's τ'; this executor is therefore
  a *demonstration and batch* tool, not the performance model — the
  calibrated DES remains the instrument for queueing behaviour
  (DESIGN.md substitution #1);
* results are aggregated in the parent, exactly like the a-core.

Use :func:`run_batch_speedup` for the headline demonstration: a batch
of kNN queries executed on 1 vs N worker processes.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..knn.base import KNNSolution, Neighbor, merge_partial_results
from ..objects.tasks import Task, TaskKind
from .config import MPRConfig
from .core_matrix import MPRRouter, QueryRoute, WorkerId

_STOP = ("stop",)


def _worker_main(solution: KNNSolution, inbox, outbox) -> None:
    """Child process: drain the inbox into the solution."""
    while True:
        message = inbox.get()
        kind = message[0]
        if kind == "stop":
            outbox.put(("stopped", os.getpid()))
            return
        if kind == "query":
            _, query_id, location, k = message
            partial = solution.query(location, k)
            outbox.put(("partial", query_id, partial))
        elif kind == "insert":
            _, object_id, location = message
            solution.insert(object_id, location)
        elif kind == "delete":
            _, object_id = message
            solution.delete(object_id)
        else:  # pragma: no cover - protocol guard
            outbox.put(("error", f"unknown message {kind!r}"))
            return


class ProcessMPRExecutor:
    """Run a task stream through worker *processes*.

    Functionally identical to :class:`ThreadedMPRExecutor`; each worker
    is an OS process fed over a queue.  Per-worker FCFS order is
    preserved (one queue per worker), so the serial-equivalence
    guarantee carries over unchanged.
    """

    def __init__(
        self,
        solution: KNNSolution,
        config: MPRConfig,
        objects: Mapping[int, int],
        start_method: str = "fork",
    ) -> None:
        self._config = config
        self._router = MPRRouter(config)
        context = mp.get_context(start_method)
        contents = self._router.preload_objects(objects)
        self._outbox: mp.Queue = context.Queue()
        self._inboxes: dict[WorkerId, mp.Queue] = {}
        self._processes: dict[WorkerId, mp.process.BaseProcess] = {}
        for worker_id, cell in contents.items():
            inbox = context.Queue()
            process = context.Process(
                target=_worker_main,
                args=(solution.spawn(cell), inbox, self._outbox),
                daemon=True,
            )
            self._inboxes[worker_id] = inbox
            self._processes[worker_id] = process

    def run(self, tasks: Sequence[Task]) -> dict[int, list[Neighbor]]:
        expected: dict[int, int] = {}
        ks: dict[int, int] = {}
        for process in self._processes.values():
            process.start()
        try:
            for task in tasks:
                route = self._router.route(task)
                if task.kind is TaskKind.QUERY:
                    assert isinstance(route, QueryRoute)
                    expected[task.query_id] = len(route.workers)
                    ks[task.query_id] = task.k
                    message = ("query", task.query_id, task.location, task.k)
                elif task.kind is TaskKind.INSERT:
                    message = ("insert", task.object_id, task.location)
                else:
                    message = ("delete", task.object_id)
                for worker_id in route.workers:
                    self._inboxes[worker_id].put(message)

            partials: dict[int, list[list[Neighbor]]] = {}
            outstanding = sum(expected.values())
            while outstanding > 0:
                kind, *payload = self._outbox.get()
                if kind == "error":  # pragma: no cover - protocol guard
                    raise RuntimeError(payload[0])
                if kind == "partial":
                    query_id, partial = payload
                    partials.setdefault(query_id, []).append(partial)
                    outstanding -= 1
        finally:
            for inbox in self._inboxes.values():
                inbox.put(_STOP)
            stopped = 0
            while stopped < len(self._processes):
                kind, *_ = self._outbox.get()
                if kind == "stopped":
                    stopped += 1
            for process in self._processes.values():
                process.join(timeout=10.0)

        answers: dict[int, list[Neighbor]] = {}
        for query_id, parts in partials.items():
            if len(parts) != expected[query_id]:
                raise RuntimeError(
                    f"query {query_id}: {len(parts)} partials, expected "
                    f"{expected[query_id]}"
                )
            answers[query_id] = merge_partial_results(parts, ks[query_id])
        return answers


@dataclass(frozen=True)
class SpeedupReport:
    """Wall-clock comparison of 1-worker vs N-worker batch execution."""

    num_queries: int
    workers: int
    serial_seconds: float
    parallel_seconds: float

    @property
    def speedup(self) -> float:
        if self.parallel_seconds <= 0:
            return float("inf")
        return self.serial_seconds / self.parallel_seconds


def run_batch_speedup(
    solution: KNNSolution,
    objects: Mapping[int, int],
    query_locations: Sequence[int],
    k: int = 10,
    workers: int = 4,
    start_method: str = "fork",
) -> SpeedupReport:
    """Execute a query batch on 1 process vs ``workers`` processes.

    Uses an F-Rep arrangement (x = 1, y = workers): each process holds
    the full object set, queries round-robin across processes — the
    configuration MPR picks for a pure-query load.  Demonstrates that
    process-level replication achieves the speedup the GIL denies to
    threads (bench_motivation's counterpart, with real parallelism).
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    context = mp.get_context(start_method)

    def timed_run(num_workers: int) -> float:
        outbox = context.Queue()
        inboxes = []
        processes = []
        for _ in range(num_workers):
            inbox = context.Queue()
            process = context.Process(
                target=_worker_main,
                args=(solution.spawn(dict(objects)), inbox, outbox),
                daemon=True,
            )
            process.start()
            inboxes.append(inbox)
            processes.append(process)
        start = time.perf_counter()
        for position, location in enumerate(query_locations):
            inboxes[position % num_workers].put(
                ("query", position, location, k)
            )
        for _ in query_locations:
            outbox.get()
        elapsed = time.perf_counter() - start
        for inbox in inboxes:
            inbox.put(_STOP)
        for _ in processes:
            outbox.get()
        for process in processes:
            process.join(timeout=10.0)
        return elapsed

    serial = timed_run(1)
    parallel = timed_run(workers)
    return SpeedupReport(
        num_queries=len(query_locations),
        workers=workers,
        serial_seconds=serial,
        parallel_seconds=parallel,
    )

"""Update-load balancing across partition columns (Section III).

"The partitioning can be done in a number of ways.  For example,
objects in M can be distributed to the cores in a round robin fashion.
This balances the update loads across the cores if objects generate
updates at a similar rate [...].  If objects are updated at different
rates, we can distribute the 'updates' instead of the 'objects' over
the w-cores to balance the update loads."

Three placement strategies for the *initial* object partition:

* :func:`round_robin_columns` — the paper's default (uniform rates);
* :func:`hashed_columns` — stateless deterministic placement (what a
  sharded deployment would do);
* :func:`balance_by_update_rate` — LPT greedy on per-object update
  rates (the "distribute the updates" variant for heterogeneous
  fleets, e.g. taxis that report at different cadences).

Steady-state balancing of *arriving* inserts is already round-robin in
the scheduler (Algorithm 1); these strategies govern the preloaded set.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Mapping


def round_robin_columns(objects: Iterable[int], num_columns: int) -> dict[int, int]:
    """Deterministic round-robin placement over sorted object ids."""
    _check_columns(num_columns)
    return {
        object_id: position % num_columns
        for position, object_id in enumerate(sorted(objects))
    }


def hashed_columns(objects: Iterable[int], num_columns: int) -> dict[int, int]:
    """Stateless placement by a deterministic integer mix.

    Uses a Knuth multiplicative hash rather than ``hash()`` (which is
    salted per process) so placements are reproducible across runs.
    """
    _check_columns(num_columns)
    return {
        object_id: ((object_id * 2654435761) >> 7) % num_columns
        for object_id in objects
    }


def balance_by_update_rate(
    update_rates: Mapping[int, float], num_columns: int
) -> dict[int, int]:
    """LPT greedy: heaviest updaters first, each to the lightest column.

    Guarantees the classic LPT bound — the heaviest column carries at
    most ``4/3 - 1/(3·num_columns)`` of the optimal makespan — which is
    ample for queueing balance.
    """
    _check_columns(num_columns)
    for object_id, rate in update_rates.items():
        if rate < 0:
            raise ValueError(f"object {object_id} has negative rate {rate}")
    # Heap of (column load, column id); ties to the lowest column id.
    columns = [(0.0, column) for column in range(num_columns)]
    heapq.heapify(columns)
    assignment: dict[int, int] = {}
    ordered = sorted(
        update_rates.items(), key=lambda item: (-item[1], item[0])
    )
    for object_id, rate in ordered:
        load, column = heapq.heappop(columns)
        assignment[object_id] = column
        heapq.heappush(columns, (load + rate, column))
    return assignment


def column_loads(
    assignment: Mapping[int, int],
    num_columns: int,
    update_rates: Mapping[int, float] | None = None,
) -> list[float]:
    """Per-column update load (object count when rates are uniform)."""
    _check_columns(num_columns)
    loads = [0.0] * num_columns
    for object_id, column in assignment.items():
        if not 0 <= column < num_columns:
            raise ValueError(f"column {column} out of range")
        loads[column] += (
            update_rates[object_id] if update_rates is not None else 1.0
        )
    return loads


def imbalance(loads: list[float]) -> float:
    """Max/mean load ratio (1.0 = perfectly balanced)."""
    if not loads:
        return 1.0
    mean = sum(loads) / len(loads)
    if mean == 0:
        return 1.0
    return max(loads) / mean


def _check_columns(num_columns: int) -> None:
    if num_columns < 1:
        raise ValueError("num_columns must be positive")

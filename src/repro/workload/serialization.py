"""Workload persistence: save/load generated streams as JSON.

Experiments become comparable across machines and languages when the
exact task stream is an artifact.  The format is a single JSON object:

.. code-block:: json

    {
      "format": "repro-workload-v1",
      "lambda_q": 100.0, "lambda_u": 200.0, "duration": 1.0,
      "initial_objects": {"0": 17, "1": 523},
      "tasks": [
        {"t": 0.01, "kind": "query", "id": 0, "location": 42, "k": 10},
        {"t": 0.02, "kind": "insert", "object": 5, "location": 9},
        {"t": 0.03, "kind": "delete", "object": 5, "movement": 0}
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..objects.tasks import DeleteTask, InsertTask, QueryTask, Task
from .generator import GeneratedWorkload

FORMAT_TAG = "repro-workload-v1"


def _task_to_dict(task: Task) -> dict[str, Any]:
    if isinstance(task, QueryTask):
        payload: dict[str, Any] = {
            "t": task.arrival_time, "kind": "query", "id": task.query_id,
            "location": task.location, "k": task.k,
        }
        if task.deadline is not None:
            payload["deadline"] = task.deadline
        if task.tenant is not None:
            payload["tenant"] = task.tenant
        return payload
    if isinstance(task, InsertTask):
        payload: dict[str, Any] = {
            "t": task.arrival_time, "kind": "insert",
            "object": task.object_id, "location": task.location,
        }
        if task.movement_id is not None:
            payload["movement"] = task.movement_id
        return payload
    if isinstance(task, DeleteTask):
        payload = {
            "t": task.arrival_time, "kind": "delete", "object": task.object_id,
        }
        if task.movement_id is not None:
            payload["movement"] = task.movement_id
        return payload
    raise TypeError(f"unknown task type {type(task).__name__}")


def _task_from_dict(payload: dict[str, Any]) -> Task:
    kind = payload.get("kind")
    if kind == "query":
        return QueryTask(
            float(payload["t"]), int(payload["id"]),
            int(payload["location"]), int(payload["k"]),
            deadline=(
                float(payload["deadline"]) if "deadline" in payload else None
            ),
            tenant=payload.get("tenant"),
        )
    if kind == "insert":
        return InsertTask(
            float(payload["t"]), int(payload["object"]),
            int(payload["location"]),
            movement_id=(
                int(payload["movement"]) if "movement" in payload else None
            ),
        )
    if kind == "delete":
        return DeleteTask(
            float(payload["t"]), int(payload["object"]),
            movement_id=(
                int(payload["movement"]) if "movement" in payload else None
            ),
        )
    raise ValueError(f"unknown task kind {kind!r}")


def save_workload(workload: GeneratedWorkload, path: str | Path) -> None:
    """Write a workload (initial objects + stream) to a JSON file."""
    payload = {
        "format": FORMAT_TAG,
        "lambda_q": workload.lambda_q,
        "lambda_u": workload.lambda_u,
        "duration": workload.duration,
        "initial_objects": {
            str(object_id): node
            for object_id, node in sorted(workload.initial_objects.items())
        },
        "tasks": [_task_to_dict(task) for task in workload.tasks],
    }
    Path(path).write_text(json.dumps(payload) + "\n")


def load_workload(path: str | Path) -> GeneratedWorkload:
    """Read a workload written by :func:`save_workload`."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or payload.get("format") != FORMAT_TAG:
        raise ValueError(f"{path}: not a {FORMAT_TAG} file")
    return GeneratedWorkload(
        initial_objects={
            int(object_id): int(node)
            for object_id, node in payload["initial_objects"].items()
        },
        tasks=[_task_from_dict(item) for item in payload["tasks"]],
        lambda_q=float(payload["lambda_q"]),
        lambda_u=float(payload["lambda_u"]),
        duration=float(payload["duration"]),
    )

"""Continuous (subscription) kNN: standing queries re-evaluated on update.

A continuous kNN query registers once and must always reflect the
current object set — the moving-objects literature (PAPERS.md) calls
these *subscriptions*.  Two execution strategies must agree:

* **Lowering** (:meth:`ContinuousWorkload.lower`): compile the
  subscription set into an ordinary task stream by re-issuing every
  subscription as a fresh :class:`~repro.objects.tasks.QueryTask`
  after every ``every`` update events.  This runs unchanged through
  both executors and the serial reference — it is the oracle.
* **Incremental** (:class:`IncrementalKNNMonitor`): pay one SSSP per
  subscription *once*, then maintain each subscription's candidate set
  in O(#subscriptions) per insert/delete with no graph search at all.
  Distances come from the same delta-stepping kernel the query path
  uses (:meth:`repro.graph.kernels.CSRKernels.sssp`), so results are
  bit-identical to a fresh query — ``tests/test_continuous_knn.py``
  pins that equivalence.

The monitor exploits that a subscription's origin is fixed: d(q, o)
depends only on o's node, so a precomputed distance field turns every
update into a dictionary write per subscription.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..graph.road_network import RoadNetwork
from ..knn.base import Neighbor, canonical_knn
from ..objects.tasks import (
    DeleteTask,
    InsertTask,
    QueryTask,
    Task,
    TaskKind,
)
from .generator import GeneratedWorkload, UpdateMode, generate_workload
from .processes import ArrivalProcess

__all__ = [
    "ContinuousWorkload",
    "IncrementalKNNMonitor",
    "Subscription",
    "generate_continuous_workload",
]


@dataclass(frozen=True)
class Subscription:
    """A standing kNN query: fixed origin, fixed k, always current."""

    subscription_id: int
    location: int
    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be positive")


@dataclass(frozen=True)
class ContinuousWorkload:
    """Subscriptions plus the update stream they monitor.

    ``updates`` holds only insert/delete tasks (arrival-time ordered);
    the subscriptions are standing, not part of the stream.
    """

    initial_objects: dict[int, int]
    updates: list[Task]
    subscriptions: tuple[Subscription, ...]
    duration: float

    def __post_init__(self) -> None:
        for task in self.updates:
            if task.kind is TaskKind.QUERY:
                raise ValueError("updates stream must not contain queries")
        ids = [s.subscription_id for s in self.subscriptions]
        if len(set(ids)) != len(ids):
            raise ValueError("subscription ids must be unique")

    def lower(
        self, every: int = 1
    ) -> tuple[list[Task], dict[int, tuple[int, int]]]:
        """Compile to an ordinary task stream (the oracle strategy).

        Emits one epoch of fresh queries — one per subscription, at the
        same arrival time — before any updates (epoch 0) and after
        every ``every`` subsequent update events.  A TH-style
        delete/insert movement pair is never split by an epoch, so every
        epoch observes a consistent object set.

        Returns ``(tasks, origin)`` where ``origin`` maps each emitted
        ``query_id`` back to ``(subscription_id, epoch)`` — query id
        ``epoch * len(subscriptions) + index`` keeps ids dense and
        collision-free for the executors.
        """
        if every < 1:
            raise ValueError("every must be >= 1")
        tasks: list[Task] = []
        origin: dict[int, tuple[int, int]] = {}
        epoch = 0

        def emit(time: float) -> None:
            nonlocal epoch
            for index, sub in enumerate(self.subscriptions):
                query_id = epoch * len(self.subscriptions) + index
                tasks.append(QueryTask(time, query_id, sub.location, sub.k))
                origin[query_id] = (sub.subscription_id, epoch)
            epoch += 1

        emit(0.0 if not self.updates else min(0.0, self.updates[0].arrival_time))
        due = False
        for position, task in enumerate(self.updates):
            tasks.append(task)
            if (position + 1) % every == 0:
                due = True
            mid_movement = (
                task.kind is TaskKind.DELETE
                and task.movement_id is not None
                and position + 1 < len(self.updates)
                and self.updates[position + 1].kind is TaskKind.INSERT
                and self.updates[position + 1].movement_id == task.movement_id
            )
            if due and not mid_movement:
                emit(task.arrival_time)
                due = False
        return tasks, origin

    @property
    def num_epochs_hint(self) -> int:
        """Upper bound on epochs produced by ``lower(every=1)``."""
        return len(self.updates) + 1


def generate_continuous_workload(
    network: RoadNetwork,
    num_objects: int,
    num_subscriptions: int,
    lambda_u: float,
    duration: float,
    mode: UpdateMode = UpdateMode.RANDOM,
    k: int = 10,
    seed: int = 0,
    update_process: ArrivalProcess | None = None,
) -> ContinuousWorkload:
    """A subscription workload over a generated update stream.

    The update stream reuses :func:`~.generator.generate_workload`
    with ``lambda_q = 0`` (optionally driven by a non-stationary
    ``update_process``); subscription origins are uniform nodes drawn
    from an independent deterministic RNG stream.
    """
    if num_subscriptions < 1:
        raise ValueError("need at least one subscription")
    generated = generate_workload(
        network,
        num_objects=num_objects,
        lambda_q=0.0,
        lambda_u=lambda_u,
        duration=duration,
        mode=mode,
        k=k,
        seed=seed,
        update_process=update_process,
    )
    sub_rng = random.Random((seed + 1) * 0x9E3779B9 % (2**63))
    subscriptions = tuple(
        Subscription(i, sub_rng.randrange(network.num_nodes), k)
        for i in range(num_subscriptions)
    )
    return ContinuousWorkload(
        initial_objects=generated.initial_objects,
        updates=generated.tasks,
        subscriptions=subscriptions,
        duration=duration,
    )


@dataclass
class _SubscriptionState:
    """Precomputed distance field + live candidate distances."""

    subscription: Subscription
    #: node -> distance from the subscription origin (settled nodes only;
    #: absent means unreachable).
    field: dict[int, float]
    #: live object -> distance (reachable objects only).
    candidates: dict[int, float] = field(default_factory=dict)


class IncrementalKNNMonitor:
    """Maintain every subscription's kNN answer without re-querying.

    Construction runs one single-source shortest-path sweep per
    subscription (the same kernel arithmetic as the query path).  After
    that, :meth:`insert`/:meth:`delete` are O(#subscriptions) dictionary
    updates, and :meth:`result` is a sort of the candidate pool — no
    Dijkstra on the hot path.  ``searches_saved`` counts the fresh
    queries a lowered stream would have executed instead.
    """

    def __init__(
        self,
        network: RoadNetwork,
        initial_objects: Mapping[int, int],
        subscriptions: Iterable[Subscription],
    ) -> None:
        self._network = network
        self._objects: dict[int, int] = dict(initial_objects)
        self._states: dict[int, _SubscriptionState] = {}
        for sub in subscriptions:
            nodes, dists = network.kernels.sssp(sub.location)
            distance_field = dict(zip(nodes.tolist(), dists.tolist()))
            state = _SubscriptionState(sub, distance_field)
            for object_id, node in self._objects.items():
                distance = distance_field.get(node)
                if distance is not None and math.isfinite(distance):
                    state.candidates[object_id] = distance
            self._states[sub.subscription_id] = state
        #: One sweep per subscription, paid once at construction.
        self.searches_performed = len(self._states)
        #: Fresh queries avoided by incremental maintenance.
        self.searches_saved = 0

    # ------------------------------------------------------------------
    # Update interface (mirrors KNNSolution's I/D)
    # ------------------------------------------------------------------
    def insert(self, object_id: int, location: int) -> None:
        if object_id in self._objects:
            raise ValueError(f"object {object_id} already live")
        self._objects[object_id] = location
        for state in self._states.values():
            distance = state.field.get(location)
            if distance is not None and math.isfinite(distance):
                state.candidates[object_id] = distance
        self.searches_saved += len(self._states)

    def delete(self, object_id: int) -> None:
        if object_id not in self._objects:
            raise ValueError(f"object {object_id} not live")
        del self._objects[object_id]
        for state in self._states.values():
            state.candidates.pop(object_id, None)
        self.searches_saved += len(self._states)

    def apply(self, task: Task) -> None:
        """Apply one update task from a stream."""
        if isinstance(task, InsertTask):
            self.insert(task.object_id, task.location)
        elif isinstance(task, DeleteTask):
            self.delete(task.object_id)
        else:
            raise TypeError(f"monitor cannot apply {task!r}")

    # ------------------------------------------------------------------
    # Answers
    # ------------------------------------------------------------------
    def result(self, subscription_id: int) -> list[Neighbor]:
        """The subscription's current answer, canonical order."""
        state = self._states[subscription_id]
        return canonical_knn(state.candidates, state.subscription.k)

    def results(self) -> dict[int, list[Neighbor]]:
        """All current answers, keyed by subscription id."""
        return {sid: self.result(sid) for sid in self._states}

    def object_locations(self) -> dict[int, int]:
        return dict(self._objects)

"""Non-stationary arrival processes and fitted phase distributions.

The paper (and the seed of this repo) assumes stationary Poisson
arrivals; real location-based services see rush hours, flash crowds,
and heavy-tailed service times.  This module supplies the stochastic
machinery for those workloads:

* :class:`ArrivalProcess` — a time-varying intensity ``λ(t)`` plus a
  sampler.  The default sampler is Lewis–Shedler thinning against the
  process's own peak-rate envelope, so any subclass that can state
  ``rate(t)`` and a window upper bound gets a correct non-homogeneous
  Poisson sampler for free.
* :class:`ConstantRate` — the stationary special case (equivalent to
  :func:`repro.workload.arrivals.poisson_arrivals`).
* :class:`SinusoidRate` — the rush-hour model: a day-cycle sinusoid
  ``λ(t) = λ₀·(1 + a·sin(2π(t+φ)/T))`` with a closed-form integrated
  intensity.
* :class:`SpikeTrain` — flash crowds: a base rate multiplied inside
  declared spike windows (a stadium emptying, an incident).
* :class:`PiecewiseRate` — an arbitrary piecewise-constant schedule
  (e.g. a rate table fitted from a real trace, hour by hour).
* :class:`Hyperexponential` + :func:`fit_hyperexponential` — fitted
  phase-type distributions for overdispersed (SCV > 1) inter-arrival
  or service times, via the standard balanced-means two-phase moment
  fit; :class:`RenewalProcess` turns any such distribution into an
  arrival stream, and :func:`profile_from_distributions` turns a pair
  of them into an :class:`~repro.knn.calibration.AlgorithmProfile` the
  analytical model and the DES can consume.

Every sampler is a pure function of its ``random.Random`` instance:
same seed, same stream (pinned by ``tests/test_workload_processes.py``
alongside the rate-convergence properties).
"""

from __future__ import annotations

import math
import random
import statistics
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Sequence

__all__ = [
    "ArrivalProcess",
    "ConstantRate",
    "Hyperexponential",
    "PiecewiseRate",
    "RenewalProcess",
    "SinusoidRate",
    "Spike",
    "SpikeTrain",
    "fit_hyperexponential",
    "hyperexponential_from_moments",
    "profile_from_distributions",
]

_TWO_PI = 2.0 * math.pi


class ArrivalProcess(ABC):
    """A (possibly non-stationary) arrival process on ``[0, ∞)``.

    Subclasses declare the instantaneous intensity :meth:`rate` and a
    window upper bound :meth:`peak_rate`; :meth:`sample` then draws
    arrival times by thinning.  :meth:`integrated_rate` is the expected
    event count ``Λ(t₀,t₁) = ∫ λ(t) dt`` — the quantity empirical
    counts converge to, which is what the property tests check.
    """

    @abstractmethod
    def rate(self, t: float) -> float:
        """Instantaneous intensity ``λ(t)`` in events per second."""

    @abstractmethod
    def peak_rate(self, start: float, end: float) -> float:
        """An upper bound of ``rate`` on ``[start, end)`` (the thinning
        envelope); tight bounds waste fewer candidate draws."""

    @abstractmethod
    def scaled(self, factor: float) -> "ArrivalProcess":
        """The same process with every rate multiplied by ``factor``
        (how :meth:`repro.workload.Scenario.scaled` shrinks load)."""

    def integrated_rate(self, start: float, end: float, steps: int = 1024) -> float:
        """``∫ λ(t) dt`` over ``[start, end)``.

        The default is trapezoidal quadrature; subclasses with closed
        forms override it exactly.
        """
        if end <= start:
            return 0.0
        width = (end - start) / steps
        total = 0.5 * (self.rate(start) + self.rate(end))
        for i in range(1, steps):
            total += self.rate(start + i * width)
        return total * width

    def mean_rate(self, start: float, end: float) -> float:
        """Average intensity over a window (0 for an empty window)."""
        if end <= start:
            return 0.0
        return self.integrated_rate(start, end) / (end - start)

    def sample(
        self, duration: float, rng: random.Random, start: float = 0.0
    ) -> list[float]:
        """Arrival times on ``[start, start+duration)``.

        Lewis–Shedler thinning: candidates arrive as a homogeneous
        Poisson stream at the envelope rate and are kept with
        probability ``λ(t)/envelope``.  Deterministic given ``rng``.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        end = start + duration
        envelope = self.peak_rate(start, end)
        if envelope < 0:
            raise ValueError("peak_rate must be non-negative")
        times: list[float] = []
        if envelope == 0:
            return times
        clock = start
        while True:
            clock += rng.expovariate(envelope)
            if clock >= end:
                return times
            if rng.random() * envelope < self.rate(clock):
                times.append(clock)


@dataclass(frozen=True)
class ConstantRate(ArrivalProcess):
    """Stationary Poisson arrivals at a fixed rate."""

    rate_per_second: float

    def __post_init__(self) -> None:
        if self.rate_per_second < 0:
            raise ValueError("rate must be non-negative")

    def rate(self, t: float) -> float:
        return self.rate_per_second

    def peak_rate(self, start: float, end: float) -> float:
        return self.rate_per_second

    def integrated_rate(self, start: float, end: float, steps: int = 1024) -> float:
        return self.rate_per_second * max(end - start, 0.0)

    def scaled(self, factor: float) -> "ConstantRate":
        return ConstantRate(self.rate_per_second * factor)


@dataclass(frozen=True)
class SinusoidRate(ArrivalProcess):
    """Rush-hour sinusoid: ``λ(t) = λ₀·(1 + a·sin(2π(t+φ)/T))``.

    ``amplitude`` is relative (``0 ≤ a ≤ 1``), so the intensity is
    never negative; ``period`` is the cycle length in seconds (86 400
    for a daily cycle, much shorter in tests) and ``phase`` shifts the
    peak.  The integrated intensity has the usual closed form.
    """

    base_rate: float
    amplitude: float
    period: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate < 0:
            raise ValueError("base_rate must be non-negative")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1] (relative)")
        if self.period <= 0:
            raise ValueError("period must be positive")

    def rate(self, t: float) -> float:
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(_TWO_PI * (t + self.phase) / self.period)
        )

    def peak_rate(self, start: float, end: float) -> float:
        return self.base_rate * (1.0 + self.amplitude)

    def integrated_rate(self, start: float, end: float, steps: int = 1024) -> float:
        if end <= start:
            return 0.0
        omega = _TWO_PI / self.period

        def antiderivative(t: float) -> float:
            return self.base_rate * (
                t - self.amplitude / omega * math.cos(omega * (t + self.phase))
            )

        return antiderivative(end) - antiderivative(start)

    def scaled(self, factor: float) -> "SinusoidRate":
        return replace(self, base_rate=self.base_rate * factor)


@dataclass(frozen=True)
class Spike:
    """One flash-crowd window: the base rate times ``multiplier`` on
    ``[start, start + duration)``."""

    start: float
    duration: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("spike duration must be positive")
        if self.multiplier < 0:
            raise ValueError("spike multiplier must be non-negative")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class SpikeTrain(ArrivalProcess):
    """Flash crowds: a base rate multiplied inside declared windows.

    Spikes must not overlap (so the integrated intensity stays exact);
    a multiplier below 1 models a lull instead of a spike.
    """

    base_rate: float
    spikes: tuple[Spike, ...]

    def __post_init__(self) -> None:
        if self.base_rate < 0:
            raise ValueError("base_rate must be non-negative")
        ordered = sorted(self.spikes, key=lambda s: s.start)
        for before, after in zip(ordered, ordered[1:]):
            if after.start < before.end:
                raise ValueError(
                    f"spikes overlap at t={after.start} (previous ends at "
                    f"{before.end})"
                )
        object.__setattr__(self, "spikes", tuple(ordered))

    def rate(self, t: float) -> float:
        for spike in self.spikes:
            if spike.start <= t < spike.end:
                return self.base_rate * spike.multiplier
        return self.base_rate

    def peak_rate(self, start: float, end: float) -> float:
        peak = 1.0
        for spike in self.spikes:
            if spike.start < end and spike.end > start:
                peak = max(peak, spike.multiplier)
        return self.base_rate * peak

    def integrated_rate(self, start: float, end: float, steps: int = 1024) -> float:
        if end <= start:
            return 0.0
        total = self.base_rate * (end - start)
        for spike in self.spikes:
            overlap = min(end, spike.end) - max(start, spike.start)
            if overlap > 0:
                total += self.base_rate * (spike.multiplier - 1.0) * overlap
        return total

    def scaled(self, factor: float) -> "SpikeTrain":
        return replace(self, base_rate=self.base_rate * factor)


@dataclass(frozen=True)
class PiecewiseRate(ArrivalProcess):
    """A piecewise-constant rate schedule (e.g. fitted hour-by-hour).

    ``segments`` is a sequence of ``(start_time, rate)`` breakpoints in
    strictly increasing time order; the rate of the last breakpoint at
    or before ``t`` applies (the first rate applies before the first
    breakpoint too, so a schedule starting at 0 behaves as expected).
    """

    segments: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("need at least one (time, rate) segment")
        times = [t for t, _ in self.segments]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("segment times must be strictly increasing")
        if any(rate < 0 for _, rate in self.segments):
            raise ValueError("segment rates must be non-negative")
        object.__setattr__(
            self, "segments", tuple((float(t), float(r)) for t, r in self.segments)
        )

    def rate(self, t: float) -> float:
        current = self.segments[0][1]
        for start, rate in self.segments:
            if start > t:
                break
            current = rate
        return current

    def peak_rate(self, start: float, end: float) -> float:
        peak = self.rate(start)
        for seg_start, rate in self.segments:
            if start <= seg_start < end:
                peak = max(peak, rate)
        return peak

    def integrated_rate(self, start: float, end: float, steps: int = 1024) -> float:
        if end <= start:
            return 0.0
        # Walk the boundary list, accumulating rate * overlap per piece.
        boundaries = [t for t, _ in self.segments]
        edges = sorted({start, end, *[t for t in boundaries if start < t < end]})
        total = 0.0
        for a, b in zip(edges, edges[1:]):
            total += self.rate(a) * (b - a)
        return total

    def scaled(self, factor: float) -> "PiecewiseRate":
        return PiecewiseRate(
            tuple((t, r * factor) for t, r in self.segments)
        )


# ----------------------------------------------------------------------
# Phase-type distributions and renewal arrivals
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Hyperexponential:
    """A k-phase hyperexponential distribution (mixture of exponentials).

    With probability ``weights[i]`` a sample is exponential with rate
    ``rates[i]``.  SCV (squared coefficient of variation) is ≥ 1, which
    is why this is the standard fit for overdispersed inter-arrival and
    service times; a single phase degenerates to the exponential.
    """

    rates: tuple[float, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.rates) != len(self.weights) or not self.rates:
            raise ValueError("need equally many rates and weights (≥ 1)")
        if any(rate <= 0 for rate in self.rates):
            raise ValueError("phase rates must be positive")
        if any(weight < 0 for weight in self.weights):
            raise ValueError("phase weights must be non-negative")
        total = sum(self.weights)
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-12):
            raise ValueError(f"weights must sum to 1 (got {total})")

    @property
    def mean(self) -> float:
        return sum(w / r for w, r in zip(self.weights, self.rates))

    @property
    def second_moment(self) -> float:
        return sum(2.0 * w / (r * r) for w, r in zip(self.weights, self.rates))

    @property
    def variance(self) -> float:
        return self.second_moment - self.mean**2

    @property
    def scv(self) -> float:
        """Squared coefficient of variation (1 for the exponential)."""
        return self.variance / (self.mean * self.mean)

    def sample_one(self, rng: random.Random) -> float:
        """Draw one value (phase choice, then an exponential draw)."""
        pick = rng.random()
        cumulative = 0.0
        rate = self.rates[-1]
        for weight, phase_rate in zip(self.weights, self.rates):
            cumulative += weight
            if pick < cumulative:
                rate = phase_rate
                break
        return rng.expovariate(rate)

    def scaled(self, factor: float) -> "Hyperexponential":
        """Means divided by ``factor`` (rates multiplied), SCV kept."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return Hyperexponential(
            tuple(rate * factor for rate in self.rates), self.weights
        )


def hyperexponential_from_moments(mean: float, scv: float) -> Hyperexponential:
    """Fit a distribution to a mean and an SCV (balanced-means H2).

    For ``scv > 1`` this is the classic two-phase balanced-means fit:
    ``p = (1 + sqrt((scv-1)/(scv+1))) / 2``, rates ``2p/mean`` and
    ``2(1-p)/mean`` — both the mean and the SCV are matched exactly.
    ``scv ≤ 1`` collapses to a single exponential phase (which has
    SCV 1; phase-type fits cannot go below that without Erlang stages).
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    if scv < 0:
        raise ValueError("scv must be non-negative")
    if scv <= 1.0:
        return Hyperexponential((1.0 / mean,), (1.0,))
    p = 0.5 * (1.0 + math.sqrt((scv - 1.0) / (scv + 1.0)))
    return Hyperexponential(
        (2.0 * p / mean, 2.0 * (1.0 - p) / mean), (p, 1.0 - p)
    )


def fit_hyperexponential(samples: Sequence[float]) -> Hyperexponential:
    """Fit a phase distribution to observed gaps or service times.

    Moment-matching on the sample mean and SCV (see
    :func:`hyperexponential_from_moments`); needs at least two samples
    with a positive mean.
    """
    if len(samples) < 2:
        raise ValueError("need at least two samples to fit")
    mean = statistics.fmean(samples)
    if mean <= 0:
        raise ValueError("sample mean must be positive")
    variance = statistics.pvariance(samples)
    return hyperexponential_from_moments(mean, variance / (mean * mean))


@dataclass(frozen=True)
class RenewalProcess(ArrivalProcess):
    """Arrivals with i.i.d. gaps from a fitted distribution.

    Stationary in rate (``λ = 1/E[gap]``) but *not* Poisson: a
    hyperexponential gap distribution produces bursts and lulls at the
    same average rate, which is exactly the overdispersion the M/G/1
    model's γ terms are about.
    """

    gap_distribution: Hyperexponential

    def rate(self, t: float) -> float:
        return 1.0 / self.gap_distribution.mean

    def peak_rate(self, start: float, end: float) -> float:
        return 1.0 / self.gap_distribution.mean

    def integrated_rate(self, start: float, end: float, steps: int = 1024) -> float:
        return max(end - start, 0.0) / self.gap_distribution.mean

    def sample(
        self, duration: float, rng: random.Random, start: float = 0.0
    ) -> list[float]:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        end = start + duration
        times: list[float] = []
        clock = start
        while True:
            clock += self.gap_distribution.sample_one(rng)
            if clock >= end:
                return times
            times.append(clock)

    def scaled(self, factor: float) -> "RenewalProcess":
        return RenewalProcess(self.gap_distribution.scaled(factor))


def profile_from_distributions(
    name: str,
    query_service: Hyperexponential,
    update_service: Hyperexponential,
):
    """An :class:`~repro.knn.calibration.AlgorithmProfile` from fitted
    service distributions.

    Bridges trace fitting to the analytical model: fit
    :class:`Hyperexponential` service distributions from measured
    samples (:func:`fit_hyperexponential`), then feed the resulting
    ``(tq, Vq, tu, Vu)`` to Equation 5/7 or the DES — heavy-tailed
    service times enter the model through the γ terms.
    """
    from ..knn.calibration import AlgorithmProfile

    return AlgorithmProfile(
        name=name,
        tq=query_service.mean,
        vq=query_service.variance,
        tu=update_service.mean,
        vu=update_service.variance,
    )

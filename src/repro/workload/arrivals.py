"""Stochastic arrival processes.

Section IV-B: "We assume query (update) arrivals form a Poisson
process."  This module generates the arrival timestamps; what happens
at each arrival is the generator's business (:mod:`.generator`).
"""

from __future__ import annotations

import math
import random
from typing import Iterator


def poisson_arrivals(
    rate: float, duration: float, rng: random.Random, start: float = 0.0
) -> list[float]:
    """Arrival times of a Poisson process on ``[start, start+duration)``.

    ``rate`` is in events per second; a rate of 0 yields no events.
    """
    if rate < 0:
        raise ValueError("rate must be non-negative")
    if duration < 0:
        raise ValueError("duration must be non-negative")
    times: list[float] = []
    if rate == 0:
        return times
    clock = start
    end = start + duration
    while True:
        clock += rng.expovariate(rate)
        if clock >= end:
            return times
        times.append(clock)


def merge_labelled(*streams: tuple[str, list[float]]) -> list[tuple[float, str]]:
    """Merge labelled timestamp lists into one time-ordered stream.

    Ties are broken by label order of the arguments, deterministically.
    """
    merged: list[tuple[float, int, str]] = []
    for priority, (label, times) in enumerate(streams):
        merged.extend((t, priority, label) for t in times)
    merged.sort()
    return [(t, label) for t, _, label in merged]


def thin(times: list[float], keep_probability: float, rng: random.Random) -> list[float]:
    """Independent thinning of a Poisson stream (still Poisson)."""
    if not 0.0 <= keep_probability <= 1.0:
        raise ValueError("keep_probability must be in [0, 1]")
    return [t for t in times if rng.random() < keep_probability]


def interarrival_stats(times: list[float]) -> tuple[float, float]:
    """(mean, variance) of inter-arrival gaps — workload diagnostics.

    Streams with fewer than two events have no gaps; they return
    ``(inf, 0.0)`` — an infinite mean gap is the defined limit of "no
    observed rate" (``1/mean`` is then 0), never a NaN and never an
    exception, so diagnostics over sparse windows stay total.
    """
    if len(times) < 2:
        return (math.inf, 0.0)
    gaps = [b - a for a, b in zip(times, times[1:])]
    mean = sum(gaps) / len(gaps)
    variance = sum((g - mean) ** 2 for g in gaps) / len(gaps)
    return (mean, variance)


def deterministic_arrivals(rate: float, duration: float, start: float = 0.0) -> Iterator[float]:
    """Evenly spaced arrivals (used by ablation benches as a contrast
    to Poisson arrivals)."""
    if rate <= 0:
        return
    period = 1.0 / rate
    clock = start + period
    end = start + duration
    while clock < end:
        yield clock
        clock += period

"""Trajectory replay: synthetic UCAR-style taxi streams.

The paper's BJ-TH scenario replays 8.74 million location updates from
~3,000 real UCAR taxis, where "each Didi vehicle reports its location
to the system every 3 to 5 seconds" (Section I).  The real trajectories
are proprietary, so this module synthesizes the closest equivalent
(DESIGN.md substitution #2): each taxi performs a random walk along the
road network and reports its position on its own periodic clock with
jitter.  A report is the paper's delete-at-u + insert-at-v pair.

Unlike the Poisson TH generator in :mod:`.generator`, replayed streams
have *per-object periodic* update processes — the superposition across
thousands of taxis is Poisson-like, but individual objects update at
fixed cadence, which is what real fleets do.
"""

from __future__ import annotations

import random
import time as _time
from dataclasses import dataclass
from typing import Sequence

from ..graph.road_network import RoadNetwork
from ..objects.object_set import ObjectSet
from ..objects.tasks import DeleteTask, InsertTask, QueryTask, Task
from .generator import GeneratedWorkload


@dataclass(frozen=True)
class FleetSpec:
    """A reporting fleet: taxis walking and phoning home periodically."""

    num_taxis: int
    #: Uniform range of per-taxi reporting periods, seconds (Didi: 3-5 s).
    report_period: tuple[float, float] = (3.0, 5.0)
    #: Nodes traversed per report on average (walk speed in hops).
    hops_per_report: float = 1.5

    def __post_init__(self) -> None:
        if self.num_taxis < 1:
            raise ValueError("need at least one taxi")
        low, high = self.report_period
        if low <= 0 or high < low:
            raise ValueError("report_period must be a positive range")
        if self.hops_per_report < 0:
            raise ValueError("hops_per_report must be non-negative")


def replay_fleet(
    network: RoadNetwork,
    fleet: FleetSpec,
    lambda_q: float,
    duration: float,
    k: int = 10,
    seed: int = 0,
) -> GeneratedWorkload:
    """Generate a trajectory-replay workload.

    Taxis start at random junctions.  Each taxi reports on its own
    period (with 10% jitter); each report moves it a geometric number
    of hops along a random walk and emits the delete/insert pair at the
    report time.  Queries are a Poisson stream, as in the paper.

    The effective update rate is ``2 * num_taxis / mean(report_period)``
    operations per second (two per report).
    """
    rng = random.Random(seed)
    objects = ObjectSet.random_on_network(
        network, fleet.num_taxis, seed=rng.randrange(2**31)
    )
    initial = objects.snapshot()

    # Per-taxi report clocks.
    events: list[tuple[float, int, str, int]] = []  # (time, tiebreak, kind, id)
    tiebreak = 0
    low, high = fleet.report_period
    for taxi in range(fleet.num_taxis):
        period = rng.uniform(low, high)
        clock = rng.uniform(0.0, period)  # desynchronised fleet
        while clock < duration:
            events.append((clock, tiebreak, "report", taxi))
            tiebreak += 1
            clock += period * rng.uniform(0.9, 1.1)

    clock = 0.0
    if lambda_q > 0:
        next_query = 0
        while True:
            clock += rng.expovariate(lambda_q)
            if clock >= duration:
                break
            events.append((clock, tiebreak, "query", next_query))
            tiebreak += 1
            next_query += 1
    events.sort()

    # Walk state per taxi.
    position = dict(initial)
    move_probability = min(fleet.hops_per_report / (fleet.hops_per_report + 1.0), 0.95)

    tasks: list[Task] = []
    next_movement = 0
    for time, _, kind, ident in events:
        if kind == "query":
            tasks.append(
                QueryTask(time, ident, rng.randrange(network.num_nodes), k)
            )
            continue
        # Advance the taxi a geometric number of hops.
        node = position[ident]
        while rng.random() < move_probability:
            neighbors = [v for v, _ in network.neighbors(node)]
            if not neighbors:
                break
            node = rng.choice(neighbors)
        tasks.append(DeleteTask(time, ident, movement_id=next_movement))
        tasks.append(InsertTask(time, ident, node, movement_id=next_movement))
        position[ident] = node
        next_movement += 1

    reports = next_movement
    lambda_u = 2.0 * reports / duration if duration > 0 else 0.0
    return GeneratedWorkload(
        initial_objects=initial,
        tasks=tasks,
        lambda_q=lambda_q,
        lambda_u=lambda_u,
        duration=duration,
    )


def replay_timed(executor, tasks: Sequence[Task], speed: float = 1.0):
    """Replay a stream against an executor at its real arrival times.

    ``MPRExecutor.run`` submits as fast as the loop spins, so the pool
    never experiences the stream's λq/λu — fine for equivalence tests,
    wrong for measuring queueing behaviour.  This helper paces
    submission on the wall clock: task ``t`` is submitted no earlier
    than ``t.arrival_time / speed`` seconds after the replay starts
    (``speed > 1`` plays faster, ``< 1`` slower).  Buffered dispatch is
    flushed before every sleep so pacing gaps never add batcher fill
    latency to the measurement.

    Returns the executor's drained ``query_id -> answer`` map.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    executor.start()
    origin = _time.monotonic()
    for task in tasks:
        due = origin + task.arrival_time / speed
        remaining = due - _time.monotonic()
        if remaining > 0:
            executor.flush()
            _time.sleep(remaining)
        executor.submit(task)
    executor.flush()
    return executor.drain()


def fleet_update_rate(fleet: FleetSpec) -> float:
    """Expected update operations per second for a fleet (2 per report)."""
    low, high = fleet.report_period
    mean_period = (low + high) / 2.0
    return 2.0 * fleet.num_taxis / mean_period

"""Workload generation: arrivals, RU/TH streams, named scenarios.

Beyond the paper's stationary Poisson streams, this package now covers
non-stationary arrival processes (:mod:`.processes`), mobility-driven
correlated update streams (:mod:`.mobility`), and continuous
subscription kNN with incremental re-evaluation (:mod:`.continuous`).
"""

from .arrivals import (
    deterministic_arrivals,
    interarrival_stats,
    merge_labelled,
    poisson_arrivals,
    thin,
)
from .continuous import (
    ContinuousWorkload,
    IncrementalKNNMonitor,
    Subscription,
    generate_continuous_workload,
)
from .generator import GeneratedWorkload, UpdateMode, generate_workload
from .mobility import MobilitySpec, mobility_workload, rush_hour_fleet
from .processes import (
    ArrivalProcess,
    ConstantRate,
    Hyperexponential,
    PiecewiseRate,
    RenewalProcess,
    SinusoidRate,
    Spike,
    SpikeTrain,
    fit_hyperexponential,
    hyperexponential_from_moments,
    profile_from_distributions,
)
from .replay import FleetSpec, fleet_update_rate, replay_fleet, replay_timed
from .serialization import load_workload, save_workload
from .scenarios import (
    BJ_RU_QUERY_HEAVY,
    CASE_STUDY,
    FIGURE6_SCENARIOS,
    FIGURE10_NETWORKS,
    FIGURE10_SCENARIO_TEMPLATE,
    NY_RU_UPDATE_HEAVY,
    MaterializedScenario,
    Scenario,
    materialize,
)

__all__ = [
    "deterministic_arrivals",
    "interarrival_stats",
    "merge_labelled",
    "poisson_arrivals",
    "thin",
    "ArrivalProcess",
    "ConstantRate",
    "Hyperexponential",
    "PiecewiseRate",
    "RenewalProcess",
    "SinusoidRate",
    "Spike",
    "SpikeTrain",
    "fit_hyperexponential",
    "hyperexponential_from_moments",
    "profile_from_distributions",
    "ContinuousWorkload",
    "IncrementalKNNMonitor",
    "Subscription",
    "generate_continuous_workload",
    "MobilitySpec",
    "mobility_workload",
    "rush_hour_fleet",
    "GeneratedWorkload",
    "UpdateMode",
    "generate_workload",
    "FleetSpec",
    "load_workload",
    "save_workload",
    "fleet_update_rate",
    "replay_fleet",
    "replay_timed",
    "BJ_RU_QUERY_HEAVY",
    "CASE_STUDY",
    "FIGURE6_SCENARIOS",
    "FIGURE10_NETWORKS",
    "FIGURE10_SCENARIO_TEMPLATE",
    "NY_RU_UPDATE_HEAVY",
    "MaterializedScenario",
    "Scenario",
    "materialize",
]

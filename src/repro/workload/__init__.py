"""Workload generation: arrivals, RU/TH streams, named scenarios."""

from .arrivals import (
    deterministic_arrivals,
    interarrival_stats,
    merge_labelled,
    poisson_arrivals,
    thin,
)
from .generator import GeneratedWorkload, UpdateMode, generate_workload
from .replay import FleetSpec, fleet_update_rate, replay_fleet
from .serialization import load_workload, save_workload
from .scenarios import (
    BJ_RU_QUERY_HEAVY,
    CASE_STUDY,
    FIGURE6_SCENARIOS,
    FIGURE10_NETWORKS,
    FIGURE10_SCENARIO_TEMPLATE,
    NY_RU_UPDATE_HEAVY,
    MaterializedScenario,
    Scenario,
    materialize,
)

__all__ = [
    "deterministic_arrivals",
    "interarrival_stats",
    "merge_labelled",
    "poisson_arrivals",
    "thin",
    "GeneratedWorkload",
    "UpdateMode",
    "generate_workload",
    "FleetSpec",
    "load_workload",
    "save_workload",
    "fleet_update_rate",
    "replay_fleet",
    "BJ_RU_QUERY_HEAVY",
    "CASE_STUDY",
    "FIGURE6_SCENARIOS",
    "FIGURE10_NETWORKS",
    "FIGURE10_SCENARIO_TEMPLATE",
    "NY_RU_UPDATE_HEAVY",
    "MaterializedScenario",
    "Scenario",
    "materialize",
]
